"""Experiment configuration and clean-model preparation.

Every accuracy figure in the paper starts from the same ingredients: a
workload (MNIST or Fashion-MNIST, here their synthetic substitutes), a
network size, and a trained clean model.  :class:`ExperimentRunner` prepares
those ingredients once and caches them, so a sweep over five fault rates and
five techniques does not retrain the network twenty-five times.

The default experiment sizes are deliberately scaled down from the paper's
(N400…N3600 neurons, 60 k training images) so the full benchmark suite runs
on a laptop in minutes; the scaling is recorded in EXPERIMENTS.md and every
size is configurable for users who want to run closer to the paper's scale.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.data.datasets import Dataset, load_workload, train_test_split
from repro.snn.encoding import DEFAULT_ENCODING, get_encoder
from repro.snn.models import DEFAULT_NEURON_MODEL, get_model
from repro.snn.network import NetworkConfig
from repro.snn.neuron import LIFParameters
from repro.snn.training import TrainedModel, TrainingConfig, TrainingRunner
from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "PreparedExperiment",
    "prepare_datasets",
]

_LOGGER = get_logger("eval.experiment")


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one accuracy experiment.

    Attributes
    ----------
    workload:
        ``"mnist"`` or ``"fashion-mnist"`` (synthetic substitutes).
    n_neurons:
        Excitatory population size of the evaluated network.
    n_train / n_test:
        Number of training / test images to generate.
    timesteps:
        Presentation duration per sample.
    epochs:
        Training epochs.
    learning_mode / label_assignment_mode:
        Forwarded to :class:`~repro.snn.training.TrainingConfig`; the
        benchmark harness uses the fast modes.
    seed:
        Root seed; all randomness of the experiment derives from it.
    paper_network_size:
        The paper network size this configuration stands in for (e.g. the
        scaled-down N400 proxy); purely documentation carried into reports.
    eval_batch_size:
        Number of test samples the batched inference engine classifies
        together; forward it to :class:`~repro.eval.sweep.FaultRateSweep`
        or :meth:`MitigationTechnique.evaluate` calls built from this
        configuration.
    model:
        Registered neuron-model name (:mod:`repro.snn.models`) the network
        simulates; the default LIF keeps every pre-existing label, seed
        stream and serialised form byte-identical.
    encoding:
        Registered input-encoding name (:mod:`repro.snn.encoding`); same
        byte-stability contract as ``model``.
    """

    workload: str = "mnist"
    n_neurons: int = 100
    n_train: int = 240
    n_test: int = 60
    timesteps: int = 150
    epochs: int = 2
    learning_mode: str = "fast_wta"
    label_assignment_mode: str = "fast"
    seed: int = 0
    paper_network_size: Optional[int] = None
    neuron_params: LIFParameters = field(default_factory=LIFParameters)
    eval_batch_size: int = 64
    model: str = DEFAULT_NEURON_MODEL
    encoding: str = DEFAULT_ENCODING

    def __post_init__(self) -> None:
        if self.n_neurons <= 0:
            raise ValueError(f"n_neurons must be positive, got {self.n_neurons}")
        if self.n_train <= 0 or self.n_test <= 0:
            raise ValueError("n_train and n_test must be positive")
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        if self.eval_batch_size <= 0:
            raise ValueError(
                f"eval_batch_size must be positive, got {self.eval_batch_size}"
            )
        # Fail at configuration time on unknown registry names, exactly as
        # NetworkConfig does.
        get_model(self.model)
        get_encoder(self.encoding)

    # ------------------------------------------------------------------ #
    def network_config(self) -> NetworkConfig:
        """Network configuration described by this experiment."""
        return NetworkConfig(
            n_inputs=784,
            n_neurons=self.n_neurons,
            timesteps=self.timesteps,
            neuron_params=self.neuron_params,
            neuron_model=self.model,
            encoding=self.encoding,
        )

    def training_config(self) -> TrainingConfig:
        """Training configuration described by this experiment."""
        return TrainingConfig(
            epochs=self.epochs,
            learning_mode=self.learning_mode,
            label_assignment_mode=self.label_assignment_mode,
        )

    def with_network_size(
        self, n_neurons: int, paper_network_size: Optional[int] = None
    ) -> "ExperimentConfig":
        """Copy of this configuration with a different population size."""
        return replace(
            self, n_neurons=n_neurons, paper_network_size=paper_network_size
        )

    def label(self) -> str:
        """Compact identifier used in reports (e.g. ``mnist/N100``).

        Non-default neuron models and encodings are appended (e.g.
        ``mnist/N100/cuba_lif+ttfs``); the default LIF/Poisson combination
        keeps the historical two-part label, so pre-existing seed streams,
        campaign fingerprints and store records are byte-identical.
        """
        size = (
            f"N{self.paper_network_size}(scaled to {self.n_neurons})"
            if self.paper_network_size
            else f"N{self.n_neurons}"
        )
        base = f"{self.workload}/{size}"
        variant = [
            part
            for part, default in (
                (self.model, DEFAULT_NEURON_MODEL),
                (self.encoding, DEFAULT_ENCODING),
            )
            if part != default
        ]
        if variant:
            return f"{base}/{'+'.join(variant)}"
        return base

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (nested parameter dataclasses included).

        The ``model`` and ``encoding`` keys are omitted at their defaults,
        so serialised configurations predating the neuron-model zoo —
        and their fingerprints — are reproduced byte for byte.
        """
        data = asdict(self)
        if self.model == DEFAULT_NEURON_MODEL:
            del data["model"]
        if self.encoding == DEFAULT_ENCODING:
            del data["encoding"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        This is the hand-over format between a campaign orchestrator and
        its worker processes, which regenerate the (cheap, synthetic)
        datasets locally instead of receiving them over the pipe.
        """
        payload = dict(data)
        payload["neuron_params"] = LIFParameters(**payload["neuron_params"])
        return cls(**payload)


def prepare_datasets(
    config: ExperimentConfig, seeds: SeedSequenceFactory
) -> Tuple[Dataset, Dataset]:
    """Generate and split the datasets of *config*, deterministically.

    The generation and split streams are keyed by the experiment label and
    seed through *seeds*, so any process holding the same root seed — the
    runner that trains the model, or a campaign worker that only evaluates
    it — reconstructs bit-identical train and test sets.
    """
    data_rng = seeds.rng_for(f"data/{config.label()}/{config.seed}")
    dataset = load_workload(
        config.workload, n_samples=config.n_train + config.n_test, rng=data_rng
    )
    split_rng = seeds.rng_for(f"split/{config.label()}/{config.seed}")
    return train_test_split(
        dataset,
        test_fraction=config.n_test / (config.n_train + config.n_test),
        rng=split_rng,
    )


@dataclass
class PreparedExperiment:
    """A trained model plus the datasets it was trained and evaluated on.

    ``clean_accuracy`` starts out ``None`` and is filled in by
    :meth:`ExperimentRunner.clean_accuracy` the first time the fault-free
    reference accuracy is measured.
    """

    config: ExperimentConfig
    model: TrainedModel
    train_set: Dataset
    test_set: Dataset
    clean_accuracy: Optional[float] = None

    @property
    def clean_accuracy_hint(self) -> Optional[float]:
        """Clean accuracy if it has been measured and attached by the runner."""
        return self.clean_accuracy


class ExperimentRunner:
    """Prepares (and caches) the clean models behind the accuracy figures.

    Parameters
    ----------
    root_seed:
        Root seed of the deterministic per-experiment seed factory.
    vectorized_training:
        Whether :meth:`prepare` trains clean models through the vectorized
        engine (the default).  Either setting produces bit-identical
        models — this is an escape hatch for timing comparisons and for
        distrusting the engine, not a semantic switch.
    """

    def __init__(self, root_seed: int = 0, vectorized_training: bool = True) -> None:
        self.seeds = SeedSequenceFactory(root_seed=root_seed)
        self.vectorized_training = bool(vectorized_training)
        self._cache: Dict[ExperimentConfig, PreparedExperiment] = {}

    # ------------------------------------------------------------------ #
    def prepare(self, config: ExperimentConfig) -> PreparedExperiment:
        """Generate data and train the clean model for *config* (cached).

        The frozen configuration itself is the cache key: every field —
        including ``paper_network_size``, which participates in the
        seed-stream label, and the neuron parameters — distinguishes the
        prepared assets, so two configurations that differ anywhere never
        alias each other's model or datasets.
        """
        key = config
        if key in self._cache:
            return self._cache[key]

        train_set, test_set = prepare_datasets(config, self.seeds)

        _LOGGER.info(
            "training clean model for %s (%d train / %d test samples)",
            config.label(),
            len(train_set),
            len(test_set),
        )
        trainer = TrainingRunner(config.network_config(), config.training_config())
        train_rng = self.seeds.rng_for(f"train/{config.label()}/{config.seed}")
        model = trainer.train(
            train_set, rng=train_rng, vectorized=self.vectorized_training
        )

        prepared = PreparedExperiment(
            config=config, model=model, train_set=train_set, test_set=test_set
        )
        self._cache[key] = prepared
        return prepared

    def clean_accuracy(self, prepared: PreparedExperiment) -> float:
        """Batched clean-network accuracy (percent) on the test set (cached).

        Classification runs through the batched inference engine in chunks
        of ``config.eval_batch_size``; the result is attached to the
        prepared experiment so repeated figure benches reuse it.
        """
        cached = prepared.clean_accuracy_hint
        if cached is not None:
            return cached
        from repro.snn.inference import InferenceEngine

        config = prepared.config
        network = prepared.model.build_network(
            rng=self.seeds.rng_for(f"clean-eval/{config.label()}/{config.seed}")
        )
        engine = InferenceEngine(network, prepared.model.neuron_labels)
        result = engine.evaluate(
            prepared.test_set,
            rng=self.seeds.rng_for(f"clean-eval-enc/{config.label()}/{config.seed}"),
            batch_size=config.eval_batch_size,
        )
        prepared.clean_accuracy = result.accuracy_percent
        return result.accuracy_percent

    def clear_cache(self) -> None:
        """Drop all cached prepared experiments."""
        self._cache.clear()
