"""Parallel campaign orchestration: spec → cells → executors → store.

Every accuracy figure of the paper (Fig. 3a, 10, 13) is a grid of
independent simulations — workload × network size × fault rate × trial ×
technique.  This module turns that grid into explicit, schedulable work:

* :class:`CampaignSpec` declares the grid (experiments, fault rates,
  trials, techniques, injection targets) and expands it into
  :class:`SweepCell` units — one cell per ``(experiment, fault rate,
  trial)`` coordinate, plus one fault-free reference cell per experiment.
* Each cell is deterministically seeded from its grid coordinates
  (:func:`repro.utils.rng.derive_cell_seed`), so executing cells serially,
  across a process pool, or in any order produces bit-identical
  accuracies.  Within a cell the paper's pairing is preserved and extended
  to the inputs: one fault map is drawn per trial, the test set is Poisson
  encoded once, and every technique replays the same map against the same
  encoded presentations.  Cells at the same (experiment, fault rate)
  coordinate execute as one fused :class:`~repro.snn.engine.MapParallelEngine`
  unit (see :func:`execute_cell_group`), with cell-at-a-time execution as
  the bit-identical fallback (``map_parallel=False``).
* :func:`run_campaign` executes the pending cells — serially or across a
  pool of warm persistent worker processes
  (:mod:`repro.eval.pool`) — streaming every finished cell into an
  append-only :class:`~repro.eval.store.ResultStore` so an interrupted
  campaign resumes where it stopped, and finally aggregates the records
  back into per-experiment :class:`~repro.eval.sweep.SweepResult` objects.

Workers never retrain and never regenerate data: the orchestrator trains
each clean model once, snapshots it with
:meth:`~repro.snn.training.TrainedModel.save`, publishes the test set (and
each unit's pre-encoded presentations) in shared memory, and long-lived
workers load the snapshot once and attach zero-copy views — so a unit's
marginal cost in a worker is the simulation itself, which is what lets the
pool approach linear scaling on multi-core machines.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mitigation import (
    MitigationTechnique,
    build_technique,
    evaluate_techniques_mapped,
)
from repro.data.datasets import Dataset
from repro.eval.experiment import (
    ExperimentConfig,
    ExperimentRunner,
)
from repro.eval.store import ResultStore
from repro.eval.sweep import SweepResult, TechniqueAccuracy
from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.models import ComputeEngineFaultConfig
from repro.hardware.enhancements import MitigationKind
from repro.obs import metrics as _obs
from repro.obs.trace import span
from repro.snn.training import TrainedModel
from repro.utils.logging import get_logger
from repro.utils.rng import derive_cell_seed, derive_clean_seed
from repro.utils.serialization import numpy_to_native

__all__ = [
    "TechniqueSpec",
    "SweepCell",
    "CellResult",
    "CampaignSpec",
    "CampaignResult",
    "UnitInputs",
    "build_experiment_cells",
    "execute_cell",
    "execute_cell_group",
    "prepare_unit_inputs",
    "group_cells",
    "collect_sweep_result",
    "resolve_worker_count",
    "run_campaign",
]

_LOGGER = get_logger("eval.campaign")

#: Key under which a fault-free reference cell stores its accuracy.
CLEAN_KEY = "clean"

# Campaign telemetry (docs/observability.md).  The cells counter ticks in
# the orchestrator's result callback, so serially recovered cells count
# exactly once; unit wall times and worker gauges live in the pool module.
_CAMPAIGN_CELLS = _obs.get_registry().counter(
    "softsnn_campaign_cells_total",
    "Campaign cells completed (streamed into the result callback).",
)


# ---------------------------------------------------------------------- #
# grid elements
# ---------------------------------------------------------------------- #
@dataclass
class TechniqueSpec:
    """Declarative identity of one mitigation technique in a campaign.

    Campaign workers rebuild the concrete
    :class:`~repro.core.mitigation.MitigationTechnique` object from this
    spec (kind + constructor options) in their own process, so technique
    instances never travel across the pool pipe.
    """

    kind: MitigationKind
    options: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, MitigationKind):
            self.kind = MitigationKind(self.kind)
        self.options = dict(self.options)

    def build(self) -> MitigationTechnique:
        """Instantiate the technique this spec describes."""
        return build_technique(self.kind, **self.options)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind.value, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TechniqueSpec":
        return cls(kind=MitigationKind(data["kind"]), options=dict(data.get("options", {})))


@dataclass(frozen=True)
class SweepCell:
    """One independent, deterministically seeded unit of campaign work.

    A cell covers a single ``(experiment, fault rate, trial)`` coordinate
    and evaluates *every* technique of the campaign against the same fault
    map, preserving the paper's paired-comparison protocol.  The fault-free
    reference measurement of an experiment is the special *clean* cell
    (``rate_index == trial_index == -1``).
    """

    experiment_key: str
    fault_rate: Optional[float]
    rate_index: int
    trial_index: int
    seed: int
    inject_synapses: bool = True
    inject_neurons: bool = True
    batch_size: Optional[int] = None

    @property
    def is_clean(self) -> bool:
        """True for the fault-free reference cell of an experiment."""
        return self.fault_rate is None

    @property
    def cell_id(self) -> str:
        """Stable identifier used for store-based resume bookkeeping."""
        if self.is_clean:
            return f"{self.experiment_key}::clean"
        return (
            f"{self.experiment_key}::rate[{self.rate_index}]={self.fault_rate:g}"
            f"::trial[{self.trial_index}]"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_key": self.experiment_key,
            "fault_rate": self.fault_rate,
            "rate_index": self.rate_index,
            "trial_index": self.trial_index,
            "seed": self.seed,
            "inject_synapses": self.inject_synapses,
            "inject_neurons": self.inject_neurons,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepCell":
        return cls(
            experiment_key=str(data["experiment_key"]),
            fault_rate=(
                None if data["fault_rate"] is None else float(data["fault_rate"])
            ),
            rate_index=int(data["rate_index"]),
            trial_index=int(data["trial_index"]),
            seed=int(data["seed"]),
            inject_synapses=bool(data["inject_synapses"]),
            inject_neurons=bool(data["inject_neurons"]),
            batch_size=(
                None if data["batch_size"] is None else int(data["batch_size"])
            ),
        )


@dataclass
class CellResult:
    """Outcome of executing one :class:`SweepCell`.

    ``accuracies`` maps technique identity (``MitigationKind.value``) to
    accuracy percent; a clean cell stores a single entry under
    :data:`CLEAN_KEY`.
    """

    cell_id: str
    experiment_key: str
    fault_rate: Optional[float]
    rate_index: int
    trial_index: int
    accuracies: Dict[str, float]
    n_faults: int = 0
    duration_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell_id": self.cell_id,
            "experiment_key": self.experiment_key,
            "fault_rate": self.fault_rate,
            "rate_index": self.rate_index,
            "trial_index": self.trial_index,
            "accuracies": {k: float(v) for k, v in self.accuracies.items()},
            "n_faults": int(self.n_faults),
            "duration_seconds": float(self.duration_seconds),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellResult":
        return cls(
            cell_id=str(data["cell_id"]),
            experiment_key=str(data["experiment_key"]),
            fault_rate=(
                None if data["fault_rate"] is None else float(data["fault_rate"])
            ),
            rate_index=int(data["rate_index"]),
            trial_index=int(data["trial_index"]),
            accuracies={str(k): float(v) for k, v in data["accuracies"].items()},
            n_faults=int(data.get("n_faults", 0)),
            duration_seconds=float(data.get("duration_seconds", 0.0)),
        )


# ---------------------------------------------------------------------- #
# cell construction and execution
# ---------------------------------------------------------------------- #
def build_experiment_cells(
    experiment_key: str,
    fault_rates: Sequence[float],
    n_trials: int,
    root_seed: int,
    inject_synapses: bool = True,
    inject_neurons: bool = True,
    batch_size: Optional[int] = None,
    include_clean: bool = True,
) -> List[SweepCell]:
    """Expand one experiment's sweep into its independent cells.

    The cell seeds depend only on ``(root_seed, experiment_key, rate index,
    trial index)``, never on construction or execution order, which is what
    makes serial and parallel campaign runs bit-identical.
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    if not fault_rates:
        raise ValueError("at least one fault rate is required")
    cells: List[SweepCell] = []
    if include_clean:
        cells.append(
            SweepCell(
                experiment_key=experiment_key,
                fault_rate=None,
                rate_index=-1,
                trial_index=-1,
                seed=derive_clean_seed(root_seed, experiment_key),
                inject_synapses=inject_synapses,
                inject_neurons=inject_neurons,
                batch_size=batch_size,
            )
        )
    for rate_index, fault_rate in enumerate(fault_rates):
        for trial_index in range(n_trials):
            cells.append(
                SweepCell(
                    experiment_key=experiment_key,
                    fault_rate=float(fault_rate),
                    rate_index=rate_index,
                    trial_index=trial_index,
                    seed=derive_cell_seed(
                        root_seed, experiment_key, rate_index, trial_index
                    ),
                    inject_synapses=inject_synapses,
                    inject_neurons=inject_neurons,
                    batch_size=batch_size,
                )
            )
    return cells


def _clean_reference_key(techniques: Sequence[MitigationTechnique]) -> str:
    """Which technique's clean accuracy doubles as the legacy baseline.

    The unmitigated engine is the natural fault-free reference; campaigns
    that do not include it fall back to the first technique.
    """
    for technique in techniques:
        if technique.kind == MitigationKind.NO_MITIGATION:
            return technique.kind.value
    return techniques[0].kind.value


@dataclass
class UnitInputs:
    """Precomputed per-cell randomness of one execution unit.

    Everything :func:`execute_cell_group` derives from the cell seeds
    before the engine pass: the drawn fault maps (``None`` for the clean
    unit), one pre-encoded presentation raster per cell, and the per-cell
    generators advanced past map drawing and encoding (techniques that
    draw extra randomness consume them next).  Preparing these inputs in
    the orchestrator is what lets warm pool workers receive presentations
    as zero-copy shared-memory views instead of re-encoding — the records
    are bit-identical either way because the same streams are consumed in
    the same order.
    """

    fault_maps: Optional[List["FaultMap"]]
    rasters: List[np.ndarray]
    generators: List[np.random.Generator]


def _validate_unit(
    cells: Sequence[SweepCell], techniques: Optional[Sequence[MitigationTechnique]]
) -> None:
    """Shared sanity checks of one execution unit's cells."""
    if not cells:
        raise ValueError("at least one cell is required")
    if techniques is not None and not techniques:
        raise ValueError("at least one technique is required")
    keys = {cell.experiment_key for cell in cells}
    if len(keys) != 1:
        raise ValueError(f"cells of one unit must share an experiment, got {keys}")
    coordinates = {
        (cell.rate_index, cell.fault_rate, cell.inject_synapses,
         cell.inject_neurons, cell.batch_size)
        for cell in cells
    }
    if len(coordinates) != 1:
        raise ValueError(
            "cells of one unit must share their (fault rate, injection, "
            "batch size) coordinate"
        )
    if any(cell.is_clean for cell in cells) and len(cells) != 1:
        raise ValueError("the clean reference cell must form its own unit")


def _unit_fault_config(cell: SweepCell) -> Optional[ComputeEngineFaultConfig]:
    """The injection configuration shared by a unit's fault maps."""
    if cell.is_clean:
        return None
    return ComputeEngineFaultConfig(
        fault_rate=cell.fault_rate,
        inject_synapses=cell.inject_synapses,
        inject_neurons=cell.inject_neurons,
    )


def prepare_unit_inputs(
    cells: Sequence[SweepCell],
    model: TrainedModel,
    dataset: Dataset,
) -> UnitInputs:
    """Draw one unit's fault maps and encode its presentations.

    Per-cell randomness protocol (all from ``cell.seed``): the fault map is
    drawn first, then the test set is Poisson-encoded once, and every
    technique later evaluates against that same fault map *and* the same
    encoded presentations — the paired-comparison protocol of the paper
    applied to presentations as well as maps.  The returned generators are
    left exactly where techniques that draw extra randomness (re-execution
    with ``reexposure_fraction > 0``) expect to resume them.
    """
    cells = list(cells)
    _validate_unit(cells, techniques=None)
    generators = [np.random.default_rng(cell.seed) for cell in cells]

    config = _unit_fault_config(cells[0])
    if config is None:
        fault_maps = None
    else:
        map_generator = FaultMapGenerator(
            crossbar_shape=(model.network_config.n_inputs, model.n_neurons),
            quantizer=model.network_config.make_quantizer(model.clean_max_weight),
        )
        fault_maps = [
            map_generator.generate(config, rng=generator)
            for generator in generators
        ]

    encoder = model.network_config.make_encoder()
    flat = np.asarray(dataset.images, dtype=np.float64).reshape(len(dataset), -1)
    rasters = [
        encoder.encode_batch(flat[:, np.newaxis, :], rng=generator)
        for generator in generators
    ]
    return UnitInputs(fault_maps=fault_maps, rasters=rasters, generators=generators)


def execute_cell_group(
    cells: Sequence[SweepCell],
    model: TrainedModel,
    dataset: Dataset,
    techniques: Sequence[MitigationTechnique],
    inputs: Optional[UnitInputs] = None,
) -> List[CellResult]:
    """Execute cells at one (experiment, fault rate) coordinate as a unit.

    This is the campaign hot path: every cell's fault map is drawn from its
    own seed exactly as in per-cell execution
    (:func:`prepare_unit_inputs`), all maps and all techniques are stacked
    into one map-parallel engine pass
    (:func:`repro.core.mitigation.evaluate_techniques_mapped`), and one
    :class:`CellResult` per cell comes back out.  Because the per-row
    engine arithmetic is bit-identical to stand-alone evaluation, grouping
    is purely an execution-strategy choice: the records equal the ones
    :func:`execute_cell` produces for each cell alone (only the measured
    ``duration_seconds`` differs — the unit's wall clock is split evenly
    across its cells).

    A clean cell (one per experiment) must form its own unit; it evaluates
    every technique against the fault-free engine, so weight-modifying
    techniques (BnP bounds weights even at fault rate 0) report their true
    clean baseline instead of inheriting the unmitigated one.

    Parameters
    ----------
    cells / model / dataset / techniques:
        The unit and the assets it evaluates against.
    inputs:
        Optional pre-drawn :class:`UnitInputs` — the warm-pool path, where
        the orchestrator prepared maps and presentations and shipped the
        rasters through shared memory.  ``None`` (the serial path) prepares
        them here from the cell seeds; the streams consumed are identical,
        so the records match bit for bit.
    """
    cells = list(cells)
    _validate_unit(cells, techniques)

    started = time.perf_counter()
    if inputs is None:
        inputs = prepare_unit_inputs(cells, model, dataset)
    config = _unit_fault_config(cells[0])
    fault_maps = inputs.fault_maps

    with span(
        "campaign.unit",
        experiment=cells[0].experiment_key,
        fault_rate=cells[0].fault_rate,
        n_cells=len(cells),
    ):
        outcomes = evaluate_techniques_mapped(
            model,
            dataset,
            techniques,
            fault_config=config,
            fault_maps=fault_maps,
            generators=inputs.generators,
            rasters=inputs.rasters,
            batch_size=cells[0].batch_size,
        )

    duration = (time.perf_counter() - started) / len(cells)
    results: List[CellResult] = []
    for index, cell in enumerate(cells):
        accuracies: Dict[str, float] = {
            technique.kind.value: outcomes[technique.kind][index].accuracy_percent
            for technique in techniques
        }
        if cell.is_clean:
            # Legacy single-baseline entry, kept for old stores/consumers;
            # the per-technique entries above are the authoritative fix.
            accuracies[CLEAN_KEY] = accuracies[_clean_reference_key(techniques)]
        results.append(
            CellResult(
                cell_id=cell.cell_id,
                experiment_key=cell.experiment_key,
                fault_rate=cell.fault_rate,
                rate_index=cell.rate_index,
                trial_index=cell.trial_index,
                accuracies=accuracies,
                n_faults=0 if fault_maps is None else fault_maps[index].n_faults,
                duration_seconds=duration,
            )
        )
    return results


def execute_cell(
    cell: SweepCell,
    model: TrainedModel,
    dataset: Dataset,
    techniques: Sequence[MitigationTechnique],
) -> CellResult:
    """Run one cell: draw its fault map, evaluate every technique against it.

    Single-cell front end of :func:`execute_cell_group` (see there for the
    randomness protocol).  Every technique — including the clean reference
    cell, which historically inherited ``techniques[0]``'s accuracy — is
    evaluated explicitly, and all techniques see the same fault map and the
    same encoded presentations.
    """
    return execute_cell_group([cell], model, dataset, techniques)[0]


def group_cells(cells: Sequence[SweepCell]) -> List[List[SweepCell]]:
    """Partition cells into map-parallel execution units.

    All faulty cells at the same ``(experiment, fault rate)`` coordinate —
    i.e. the trials that differ only in their fault map — form one unit, in
    first-seen order; every clean reference cell forms its own unit.  The
    partition only changes how cells are *scheduled*: their records are
    bit-identical either way (see :func:`execute_cell_group`).
    """
    units: Dict[Tuple[str, int], List[SweepCell]] = {}
    order: List[List[SweepCell]] = []
    for cell in cells:
        if cell.is_clean:
            order.append([cell])
            continue
        key = (cell.experiment_key, cell.rate_index)
        if key not in units:
            units[key] = []
            order.append(units[key])
        units[key].append(cell)
    return order


def collect_sweep_result(
    label: str,
    fault_rates: Sequence[float],
    technique_kinds: Sequence[MitigationKind],
    n_trials: int,
    records: Dict[str, CellResult],
    experiment_key: Optional[str] = None,
) -> SweepResult:
    """Aggregate an experiment's cell records back into a :class:`SweepResult`.

    Raises ``KeyError`` naming the first missing cell when the record set is
    incomplete (i.e. the campaign has not finished).
    """
    key = experiment_key if experiment_key is not None else label
    cells = build_experiment_cells(
        key, fault_rates, n_trials, root_seed=0  # seeds unused, ids only
    )
    missing = [cell.cell_id for cell in cells if cell.cell_id not in records]
    if missing:
        raise KeyError(
            f"campaign records for {key!r} are incomplete: missing "
            f"{len(missing)} cell(s), first {missing[0]!r}"
        )

    clean_record = records[f"{key}::clean"]
    # Per-technique clean baselines; legacy records (written before the
    # clean cell evaluated every technique) only carry the shared entry.
    clean_accuracies = {
        kind: float(
            clean_record.accuracies.get(
                kind.value, clean_record.accuracies[CLEAN_KEY]
            )
        )
        for kind in technique_kinds
    }
    result = SweepResult(
        label=label,
        clean_accuracy=clean_record.accuracies[CLEAN_KEY],
        fault_rates=[float(rate) for rate in fault_rates],
        techniques={
            kind: TechniqueAccuracy(kind=kind) for kind in technique_kinds
        },
        clean_accuracies=clean_accuracies,
    )
    for rate_index, fault_rate in enumerate(fault_rates):
        per_kind_trials: Dict[MitigationKind, List[float]] = {
            kind: [] for kind in technique_kinds
        }
        for trial_index in range(n_trials):
            cell_id = (
                f"{key}::rate[{rate_index}]={float(fault_rate):g}"
                f"::trial[{trial_index}]"
            )
            record = records[cell_id]
            for kind in technique_kinds:
                per_kind_trials[kind].append(record.accuracies[kind.value])
        for kind in technique_kinds:
            trials = per_kind_trials[kind]
            series = result.techniques[kind]
            series.fault_rates.append(float(fault_rate))
            series.per_trial.append(trials)
            series.accuracies.append(sum(trials) / len(trials))
    return result


# ---------------------------------------------------------------------- #
# campaign specification
# ---------------------------------------------------------------------- #
@dataclass
class CampaignSpec:
    """Declarative description of one evaluation campaign.

    Attributes
    ----------
    name:
        Campaign identifier (store metadata, report titles).
    experiments:
        The experiment grid, one :class:`ExperimentConfig` per (workload,
        network size) point; labels must be unique, they key everything.
    fault_rates:
        Fault rates swept for every experiment, in report order.
    techniques:
        Techniques compared at every grid point (paired per trial).
    n_trials:
        Independent fault maps per fault rate.
    inject_synapses / inject_neurons:
        Which compute-engine parts receive faults (Fig. 3a: synapses only,
        Fig. 10: neurons only / both, Fig. 13: both).
    seed:
        Root seed of the per-cell seed derivation.
    runner_seed:
        Root seed of the :class:`ExperimentRunner` that trains (and of the
        workers that regenerate) each experiment's data and model.
    """

    name: str
    experiments: List[ExperimentConfig]
    fault_rates: List[float]
    techniques: List[TechniqueSpec]
    n_trials: int = 1
    inject_synapses: bool = True
    inject_neurons: bool = True
    seed: int = 0
    runner_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.experiments:
            raise ValueError("at least one experiment is required")
        if not self.fault_rates:
            raise ValueError("at least one fault rate is required")
        if not self.techniques:
            raise ValueError("at least one technique is required")
        if self.n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {self.n_trials}")
        if not self.inject_synapses and not self.inject_neurons:
            raise ValueError(
                "at least one of inject_synapses / inject_neurons must be True"
            )
        keys = [config.label() for config in self.experiments]
        duplicates = {key for key in keys if keys.count(key) > 1}
        if duplicates:
            raise ValueError(
                f"experiment labels must be unique, duplicated: {sorted(duplicates)}"
            )
        kinds = [spec.kind for spec in self.techniques]
        if len(set(kinds)) != len(kinds):
            raise ValueError("technique kinds must be unique within a campaign")

    # ------------------------------------------------------------------ #
    @classmethod
    def grid(
        cls,
        name: str,
        workloads: Sequence[str],
        network_sizes: Sequence[int],
        fault_rates: Sequence[float],
        technique_kinds: Sequence[MitigationKind],
        base: Optional[ExperimentConfig] = None,
        paper_sizes: Optional[Dict[int, int]] = None,
        models: Optional[Sequence[str]] = None,
        encodings: Optional[Sequence[str]] = None,
        **campaign_kwargs: object,
    ) -> "CampaignSpec":
        """Build a spec from a workload × size × model × encoding grid.

        *base* supplies the shared experiment settings (sample counts,
        timesteps, epochs…); *paper_sizes* optionally maps a scaled size to
        the paper network size it stands in for.  *models* / *encodings*
        (registered neuron-model and input-encoding names) extend the grid
        across the model zoo; omitted, the grid keeps the template's single
        model and encoding and every pre-existing spec — and its
        fingerprint — is unchanged.
        """
        template = base if base is not None else ExperimentConfig()
        model_axis = list(models) if models else [template.model]
        encoding_axis = list(encodings) if encodings else [template.encoding]
        experiments = []
        for workload in workloads:
            for n_neurons in network_sizes:
                for model in model_axis:
                    for encoding in encoding_axis:
                        experiments.append(
                            replace(
                                template,
                                workload=workload,
                                n_neurons=int(n_neurons),
                                paper_network_size=(
                                    paper_sizes.get(int(n_neurons))
                                    if paper_sizes
                                    else None
                                ),
                                model=model,
                                encoding=encoding,
                            )
                        )
        return cls(
            name=name,
            experiments=experiments,
            fault_rates=[float(rate) for rate in fault_rates],
            techniques=[TechniqueSpec(kind) for kind in technique_kinds],
            **campaign_kwargs,
        )

    # ------------------------------------------------------------------ #
    @property
    def experiment_keys(self) -> List[str]:
        """Unique per-experiment keys, in grid order."""
        return [config.label() for config in self.experiments]

    @property
    def technique_kinds(self) -> List[MitigationKind]:
        return [spec.kind for spec in self.techniques]

    def experiment_by_key(self, key: str) -> ExperimentConfig:
        for config in self.experiments:
            if config.label() == key:
                return config
        raise KeyError(f"no experiment with key {key!r} in campaign {self.name!r}")

    def expand(self) -> List[SweepCell]:
        """Expand the full grid into independent cells (clean cells first)."""
        cells: List[SweepCell] = []
        for config in self.experiments:
            cells.extend(
                build_experiment_cells(
                    config.label(),
                    self.fault_rates,
                    self.n_trials,
                    root_seed=self.seed,
                    inject_synapses=self.inject_synapses,
                    inject_neurons=self.inject_neurons,
                    batch_size=config.eval_batch_size,
                )
            )
        return cells

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "experiments": [config.to_dict() for config in self.experiments],
            "fault_rates": [float(rate) for rate in self.fault_rates],
            "techniques": [spec.to_dict() for spec in self.techniques],
            "n_trials": self.n_trials,
            "inject_synapses": self.inject_synapses,
            "inject_neurons": self.inject_neurons,
            "seed": self.seed,
            "runner_seed": self.runner_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        return cls(
            name=str(data["name"]),
            experiments=[
                ExperimentConfig.from_dict(item) for item in data["experiments"]
            ],
            fault_rates=[float(rate) for rate in data["fault_rates"]],
            techniques=[TechniqueSpec.from_dict(item) for item in data["techniques"]],
            n_trials=int(data["n_trials"]),
            inject_synapses=bool(data["inject_synapses"]),
            inject_neurons=bool(data["inject_neurons"]),
            seed=int(data["seed"]),
            runner_seed=int(data["runner_seed"]),
        )

    def fingerprint(self) -> str:
        """Content hash used to guard store resume against spec drift."""
        canonical = json.dumps(
            numpy_to_native(self.to_dict()), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# campaign execution
# ---------------------------------------------------------------------- #
@dataclass
class CampaignResult:
    """Aggregated outcome of one (possibly resumed) campaign run."""

    spec: CampaignSpec
    sweeps: Dict[str, SweepResult]
    n_cells: int
    n_executed: int
    n_skipped: int
    duration_seconds: float
    store_path: Optional[Path] = None
    #: Every cell record of the run (stored + freshly executed), by id.
    records: Dict[str, "CellResult"] = field(default_factory=dict)
    #: Pool statistics from :func:`repro.eval.pool.execute_units_pooled`
    #: (``None`` for serial runs).
    pool_stats: Optional[Dict[str, object]] = None

    def run_report(self) -> Dict[str, object]:
        """Self-contained end-of-run observability artifact.

        The JSON the CLI's ``--run-report`` flag writes (schema in
        ``docs/observability.md``): campaign identity and counts, one
        timing entry per cell, per-experiment accuracy-vs-fault-rate
        curves labelled with their neuron model and input encoding, the
        pool's per-worker utilization, and a full metrics-registry
        snapshot — enough to diagnose a slow or skewed run without
        re-executing anything.
        """
        curves = []
        for key, sweep in self.sweeps.items():
            config = self.spec.experiment_by_key(key)
            curves.append(
                {
                    "experiment": key,
                    "model": config.model,
                    "encoding": config.encoding,
                    "clean_accuracy": sweep.clean_accuracy,
                    "fault_rates": [float(rate) for rate in sweep.fault_rates],
                    "techniques": {
                        kind.value: [float(a) for a in series.accuracies]
                        for kind, series in sweep.techniques.items()
                    },
                }
            )
        return {
            "campaign": self.spec.name,
            "n_cells": self.n_cells,
            "n_executed": self.n_executed,
            "n_skipped": self.n_skipped,
            "duration_seconds": self.duration_seconds,
            "store_path": (
                str(self.store_path) if self.store_path is not None else None
            ),
            "cells": [
                {
                    "cell_id": record.cell_id,
                    "experiment": record.experiment_key,
                    "fault_rate": record.fault_rate,
                    "trial": record.trial_index,
                    "duration_seconds": record.duration_seconds,
                    "n_faults": record.n_faults,
                }
                for record in sorted(
                    self.records.values(), key=lambda r: r.cell_id
                )
            ],
            "accuracy_curves": curves,
            "pool": self.pool_stats,
            "metrics": _obs.get_registry().snapshot(),
        }

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary (full per-trial data retained)."""
        return {
            "campaign": self.spec.name,
            "n_cells": self.n_cells,
            "n_executed": self.n_executed,
            "n_skipped": self.n_skipped,
            "duration_seconds": self.duration_seconds,
            "experiments": {
                key: sweep.summary() for key, sweep in self.sweeps.items()
            },
        }

    def render_tables(self) -> str:
        """Plain-text accuracy tables, one per experiment."""
        from repro.eval.reporting import format_table

        blocks = []
        for key, sweep in self.sweeps.items():
            headers = ["technique"] + [f"{rate:g}" for rate in sweep.fault_rates]
            blocks.append(
                format_table(
                    headers,
                    sweep.accuracy_table(),
                    title=(
                        f"{self.spec.name} — {key} — accuracy [%], "
                        f"clean {sweep.clean_accuracy:.1f}%"
                    ),
                )
            )
        return "\n\n".join(blocks)


class _CampaignProgress:
    """Live campaign progress: completed/total cells, ETA, workers busy.

    On a TTY the line is rewritten in place on stderr (stdout stays clean
    for the CLI's tables); without one it degrades to an INFO log line at
    every ~10 % of the grid, so CI logs show progress without a scrollback
    flood.  ETA extrapolates from the cells completed *this* run — resumed
    cells are excluded from the rate.  Workers-busy is read back from the
    pool's live gauge, so the line needs no extra plumbing.
    """

    _MIN_REDRAW_SECONDS = 0.1

    def __init__(self, name: str, total: int, already_done: int) -> None:
        self._name = name
        self._total = total
        self._initial = already_done
        self._done = already_done
        self._started = time.perf_counter()
        self._tty = sys.stderr.isatty()
        self._last_redraw = 0.0
        self._next_log_fraction = 0.1
        self._line_open = False

    def advance(self) -> None:
        """Account one completed cell and redraw/log when due."""
        self._done += 1
        now = time.perf_counter()
        remaining = self._total - self._done
        if self._tty:
            if remaining and now - self._last_redraw < self._MIN_REDRAW_SECONDS:
                return
            self._last_redraw = now
            busy = int(
                _obs.get_registry().value("softsnn_campaign_workers_busy")
            )
            line = (
                f"{self._name}: {self._done}/{self._total} cells"
                f" | ETA {self._eta_text(now)}"
                f" | {busy} worker(s) busy"
            )
            sys.stderr.write("\r" + line.ljust(79))
            sys.stderr.flush()
            self._line_open = True
        elif self._total and (
            self._done / self._total >= self._next_log_fraction
            or not remaining
        ):
            self._next_log_fraction = self._done / self._total + 0.1
            _LOGGER.info(
                "campaign %s: %d/%d cells done, ETA %s",
                self._name,
                self._done,
                self._total,
                self._eta_text(now),
            )

    def close(self) -> None:
        """Terminate the rewritten line so later output starts clean."""
        if self._line_open:
            sys.stderr.write("\n")
            sys.stderr.flush()
            self._line_open = False

    def _eta_text(self, now: float) -> str:
        executed = self._done - self._initial
        elapsed = now - self._started
        if executed <= 0 or elapsed <= 0:
            return "?"
        remaining = (self._total - self._done) * (elapsed / executed)
        if remaining >= 3600:
            return f"{remaining / 3600:.1f}h"
        if remaining >= 60:
            return f"{remaining / 60:.1f}m"
        return f"{remaining:.0f}s"


def resolve_worker_count(n_workers: Optional[int]) -> int:
    """Resolve a worker-count request to a concrete positive count.

    ``None`` (the CLI's ``--workers auto``) means "use the machine":
    :func:`os.cpu_count` workers, with a floor of one when the count is
    unknown.  Explicit counts must be positive.
    """
    if n_workers is None:
        return max(1, os.cpu_count() or 1)
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    return int(n_workers)


def _schedule_units(
    cells: Sequence[SweepCell], map_parallel: bool
) -> List[List[SweepCell]]:
    """Partition pending cells into execution units per the execution mode."""
    if map_parallel:
        return group_cells(cells)
    return [[cell] for cell in cells]


def _execute_serial(
    cells: Sequence[SweepCell],
    assets: Dict[str, Tuple[TrainedModel, Dataset, List[MitigationTechnique]]],
    on_result: Callable[[CellResult], None],
    map_parallel: bool = True,
) -> None:
    for unit in _schedule_units(cells, map_parallel):
        model, dataset, techniques = assets[unit[0].experiment_key]
        for result in execute_cell_group(unit, model, dataset, techniques):
            on_result(result)


def _execute_pool(
    cells: Sequence[SweepCell],
    assets: Dict[str, Tuple[TrainedModel, Dataset, List[MitigationTechnique]]],
    model_paths: Dict[str, str],
    technique_specs: Sequence[TechniqueSpec],
    n_workers: int,
    on_result: Callable[[CellResult], None],
    map_parallel: bool = True,
) -> Optional[Dict[str, object]]:
    """Distribute units over the warm persistent worker pool.

    The orchestrator keeps the prepared assets (it draws the fault maps and
    encodes the presentations itself, see
    :func:`repro.eval.pool.execute_units_pooled`); workers receive the
    model snapshot path once per experiment and the encoded rasters through
    shared memory per unit.  Returns the pool-statistics dict for the run
    report.
    """
    from repro.eval.pool import execute_units_pooled

    return execute_units_pooled(
        units=_schedule_units(cells, map_parallel),
        assets=assets,
        model_paths=model_paths,
        technique_specs=technique_specs,
        n_workers=n_workers,
        on_result=on_result,
    )


def run_campaign(
    spec: CampaignSpec,
    store_path: Optional[Union[str, Path]] = None,
    n_workers: Optional[int] = 1,
    resume: bool = True,
    workdir: Optional[Union[str, Path]] = None,
    runner: Optional[ExperimentRunner] = None,
    vectorized_training: bool = True,
    map_parallel: bool = True,
) -> CampaignResult:
    """Run (or resume) a campaign and return the aggregated results.

    Parameters
    ----------
    spec:
        The campaign grid to execute.
    store_path:
        JSON-lines result store.  When given, finished cells are appended
        as they complete and cells already present are skipped, making the
        run resumable; when ``None`` results live only in memory.
    n_workers:
        ``1`` executes cells serially in-process; ``>1`` distributes
        execution units over the warm persistent worker pool
        (:mod:`repro.eval.pool`), falling back to the serial executor if
        the platform cannot spawn processes.  ``None`` means "use the
        machine": one worker per CPU (:func:`resolve_worker_count`).
    resume:
        When false an existing store is truncated instead of resumed.
    workdir:
        Directory for trained-model snapshots handed to pool workers.
        Defaults to a sibling of the store (or a temporary directory).
    runner:
        Experiment runner to prepare (train) the clean models with.  Pass
        one to share its model cache across several campaign runs; its
        root seed must equal ``spec.runner_seed``, otherwise the workers'
        regenerated datasets would not match the orchestrator's.
    vectorized_training:
        Train clean models through the vectorized engine (default).  The
        models are bit-identical either way (see
        :mod:`repro.snn.train_engine`), so cell results and resume
        fingerprints are unaffected; disabling it only makes
        training-heavy presets slower.  Ignored when *runner* is given.
    map_parallel:
        Schedule the trials of each (experiment, fault rate) coordinate as
        one map-parallel execution unit (default) instead of one unit per
        cell.  The records — and therefore stores, resume fingerprints and
        aggregated sweeps — are bit-identical either way (see
        :func:`execute_cell_group`); cell-at-a-time execution only spreads
        the grid into smaller work items.
    """
    n_workers = resolve_worker_count(n_workers)
    started = time.perf_counter()

    store: Optional[ResultStore] = None
    if store_path is not None:
        store = ResultStore(store_path)
        store.initialize(spec, reset=not resume)

    cells = spec.expand()
    completed: Dict[str, CellResult] = dict(store.cell_records()) if store else {}
    pending = [cell for cell in cells if cell.cell_id not in completed]
    n_skipped = len(cells) - len(pending)
    if n_skipped:
        _LOGGER.info(
            "campaign %s: resuming, %d/%d cells already in store",
            spec.name,
            n_skipped,
            len(cells),
        )

    # Train (or fetch cached) clean models once, in the orchestrator.
    if runner is None:
        runner = ExperimentRunner(
            root_seed=spec.runner_seed, vectorized_training=vectorized_training
        )
    elif runner.seeds.root_seed != spec.runner_seed:
        raise ValueError(
            f"runner root seed {runner.seeds.root_seed} does not match "
            f"spec.runner_seed {spec.runner_seed}; workers would regenerate "
            "different datasets than the orchestrator prepared"
        )
    needed_keys = {cell.experiment_key for cell in pending}
    assets: Dict[str, Tuple[TrainedModel, Dataset, List[MitigationTechnique]]] = {}
    for config in spec.experiments:
        key = config.label()
        if key not in needed_keys:
            continue
        prepared = runner.prepare(config)
        assets[key] = (
            prepared.model,
            prepared.test_set,
            [tspec.build() for tspec in spec.techniques],
        )

    progress = _CampaignProgress(
        spec.name, total=len(cells), already_done=n_skipped
    )

    def record(result: CellResult) -> None:
        completed[result.cell_id] = result
        if store is not None:
            store.append_cell(result)
        _CAMPAIGN_CELLS.inc()
        _LOGGER.info(
            "campaign %s: cell %s done in %.2fs (%s)",
            spec.name,
            result.cell_id,
            result.duration_seconds,
            ", ".join(f"{k}={v:.1f}%" for k, v in result.accuracies.items()),
        )
        progress.advance()

    pool_stats: Optional[Dict[str, object]] = None
    if pending:
        if n_workers == 1:
            _execute_serial(pending, assets, record, map_parallel=map_parallel)
        else:
            # Snapshots are consumed only while the pool is alive, so they
            # live in a temporary directory (cleaned up below) unless the
            # caller pins an explicit workdir.
            temp_dir: Optional[tempfile.TemporaryDirectory] = None
            try:
                if workdir is not None:
                    models_dir = Path(workdir)
                else:
                    temp_dir = tempfile.TemporaryDirectory(prefix="softsnn-campaign-")
                    models_dir = Path(temp_dir.name)
                models_dir.mkdir(parents=True, exist_ok=True)

                model_paths: Dict[str, str] = {}
                for config in spec.experiments:
                    key = config.label()
                    if key not in assets:
                        continue
                    safe = key.replace("/", "_").replace(" ", "_")
                    model_paths[key] = str(assets[key][0].save(models_dir / safe))
                try:
                    pool_stats = _execute_pool(
                        pending,
                        assets,
                        model_paths,
                        spec.techniques,
                        n_workers,
                        record,
                        map_parallel=map_parallel,
                    )
                except (OSError, ImportError) as error:
                    # Sandboxed or exotic platforms may not allow process
                    # pools at all; the grid still completes serially.
                    _LOGGER.warning(
                        "campaign %s: process pool unavailable (%s), "
                        "falling back to serial execution",
                        spec.name,
                        error,
                    )
                    remaining = [
                        cell for cell in pending if cell.cell_id not in completed
                    ]
                    _execute_serial(
                        remaining, assets, record, map_parallel=map_parallel
                    )
            finally:
                if temp_dir is not None:
                    temp_dir.cleanup()
    progress.close()

    # `completed` already holds every store record plus everything executed
    # this run, so aggregation needs no second pass over the store file.
    records = completed
    sweeps: Dict[str, SweepResult] = {}
    for config in spec.experiments:
        key = config.label()
        sweeps[key] = collect_sweep_result(
            label=key,
            fault_rates=spec.fault_rates,
            technique_kinds=spec.technique_kinds,
            n_trials=spec.n_trials,
            records=records,
            experiment_key=key,
        )

    return CampaignResult(
        spec=spec,
        sweeps=sweeps,
        n_cells=len(cells),
        n_executed=len(pending),
        n_skipped=n_skipped,
        duration_seconds=time.perf_counter() - started,
        store_path=store.path if store else None,
        records=records,
        pool_stats=pool_stats,
    )
