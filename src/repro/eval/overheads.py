"""Latency / energy / area overhead tables (Fig. 3b and Fig. 14).

These tables come entirely from the analytical hardware model; they do not
require any SNN simulation.  The paper normalises Fig. 14(a) and (b) to the
N400 / no-mitigation case and Fig. 14(c) to the unmodified engine, and the
helpers here produce exactly those normalisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import HardwareCostParameters, MitigationKind

__all__ = ["OverheadTable", "overhead_tables_for_sizes"]

#: Network sizes swept by the paper's overhead figures.
PAPER_NETWORK_SIZES = (400, 900, 1600, 2500, 3600)


@dataclass
class OverheadTable:
    """One normalised overhead table (latency, energy or area).

    Attributes
    ----------
    metric:
        ``"latency"``, ``"energy"`` or ``"area"``.
    network_sizes:
        Network sizes covered (columns of the paper's bar groups).
    values:
        ``values[kind][i]`` is the normalised value of technique *kind* at
        ``network_sizes[i]``.
    """

    metric: str
    network_sizes: List[int]
    values: Dict[MitigationKind, List[float]] = field(default_factory=dict)

    def row(self, kind: MitigationKind) -> List[float]:
        """Normalised series of one technique across the network sizes."""
        return list(self.values[kind])

    def savings_versus(
        self, kind: MitigationKind, reference: MitigationKind
    ) -> List[float]:
        """Ratio ``reference / kind`` per network size (e.g. 3x latency saved)."""
        return [
            ref / val if val > 0 else float("inf")
            for ref, val in zip(self.values[reference], self.values[kind])
        ]

    def as_rows(self) -> List[List[object]]:
        """Rows of ``[technique, v@N1, v@N2, ...]`` for text reporting."""
        return [
            [kind.value] + [round(v, 2) for v in series]
            for kind, series in self.values.items()
        ]


def overhead_tables_for_sizes(
    network_sizes: Optional[Sequence[int]] = None,
    n_inputs: int = 784,
    timesteps: int = 150,
    params: Optional[HardwareCostParameters] = None,
) -> Dict[str, OverheadTable]:
    """Build the three Fig. 14 tables for the given network sizes.

    Latency and energy are normalised to the smallest network size with no
    mitigation (the paper normalises to N400); area is normalised to the
    unmodified engine and does not depend on the network size.
    """
    sizes = list(network_sizes) if network_sizes is not None else list(
        PAPER_NETWORK_SIZES
    )
    if not sizes:
        raise ValueError("network_sizes must not be empty")
    if any(size <= 0 for size in sizes):
        raise ValueError("network sizes must be positive")

    reference = AcceleratorModel(
        ComputeEngineConfig(
            n_inputs=n_inputs, n_neurons=sizes[0], timesteps=timesteps
        ),
        params=params,
    )

    latency = OverheadTable(metric="latency", network_sizes=sizes)
    energy = OverheadTable(metric="energy", network_sizes=sizes)
    area = OverheadTable(metric="area", network_sizes=sizes)
    for kind in MitigationKind.all_kinds():
        latency.values[kind] = []
        energy.values[kind] = []
        area.values[kind] = []

    for size in sizes:
        model = AcceleratorModel(
            ComputeEngineConfig(
                n_inputs=n_inputs, n_neurons=size, timesteps=timesteps
            ),
            params=params,
        )
        latency_table = model.normalized_latency(reference=reference)
        energy_table = model.normalized_energy(reference=reference)
        area_table = model.normalized_area()
        for kind in MitigationKind.all_kinds():
            latency.values[kind].append(latency_table[kind])
            energy.values[kind].append(energy_table[kind])
            area.values[kind].append(area_table[kind])

    return {"latency": latency, "energy": energy, "area": area}
