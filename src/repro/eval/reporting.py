"""Plain-text rendering of result tables and series.

The benchmark harness prints the regenerated figure data as text tables so
the "same rows/series the paper reports" are visible in the pytest output
and in the committed bench logs, without requiring any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row values; each row must have the same length as *headers*.
    title:
        Optional title printed above the table.
    """
    headers = [str(h) for h in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        row = [_format_cell(cell) for cell in row]
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers"
            )
        text_rows.append(row)

    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x"
) -> str:
    """Render one named series as ``name: x=y`` pairs on a single line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    pairs = ", ".join(
        f"{_format_cell(x)}={_format_cell(y)}" for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label}]: {pairs}"


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
