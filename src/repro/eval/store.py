"""Append-only, resumable on-disk store for campaign cell results.

The store is a JSON-lines file: the first record describes the campaign
(spec snapshot + content fingerprint), every following record is one
finished :class:`~repro.eval.campaign.CellResult`.  Appends are flushed and
fsynced per record, so a campaign killed at any point leaves a store whose
intact lines are exactly the cells that finished; re-running the same
campaign against the same store skips those cells and computes only the
remainder — the resume protocol of :func:`repro.eval.campaign.run_campaign`.

A truncated final line (writer killed mid-append) is tolerated on read and
simply re-executed on resume.  Resuming with a *different* spec is refused
via the fingerprint check, because mixing records of two grids would
corrupt the aggregation silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Union

from repro.utils.logging import get_logger
from repro.utils.serialization import append_jsonl, read_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.eval.campaign import CampaignSpec, CellResult

__all__ = ["ResultStore", "StoreMismatchError"]

_LOGGER = get_logger("eval.store")


class StoreMismatchError(RuntimeError):
    """Raised when a store belongs to a different campaign spec."""


class ResultStore:
    """JSON-lines persistence of campaign cell results with resume support.

    Parameters
    ----------
    path:
        Location of the store file; parent directories are created on the
        first write.  The conventional suffix is ``.jsonl``.
    """

    #: Format marker written into the meta record.
    FORMAT = "softsnn-campaign-store"
    #: v2: cells follow the paired-presentation protocol (one encoding per
    #: cell shared by all techniques; clean cells evaluated per technique).
    #: v1 records measure a different protocol, so resuming them into a v2
    #: campaign would silently mix incompatible samples — the version check
    #: turns that into a hard error.
    VERSION = 2

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def exists(self) -> bool:
        """True when the store file is present on disk."""
        return self.path.exists()

    def initialize(self, spec: "CampaignSpec", reset: bool = False) -> None:
        """Bind the store to *spec*, creating or validating the meta record.

        A fresh (or ``reset``) store gets a meta record carrying the spec
        snapshot and fingerprint.  An existing store is validated: its
        fingerprint must match *spec*, otherwise :class:`StoreMismatchError`
        is raised — resuming a campaign into another campaign's store would
        silently mix incompatible records.
        """
        if reset and self.exists():
            self.path.unlink()
        self._repair_tail()
        if not self.exists() or self.path.stat().st_size == 0:
            append_jsonl(
                {
                    "type": "meta",
                    "format": self.FORMAT,
                    "version": self.VERSION,
                    "campaign": spec.name,
                    "fingerprint": spec.fingerprint(),
                    "spec": spec.to_dict(),
                },
                self.path,
            )
            return
        meta = self._meta_record()
        if meta.get("fingerprint") != spec.fingerprint():
            raise StoreMismatchError(
                f"store {self.path} belongs to campaign "
                f"{meta.get('campaign')!r} with fingerprint "
                f"{meta.get('fingerprint')!r}; refusing to resume campaign "
                f"{spec.name!r} ({spec.fingerprint()!r}) into it"
            )

    def _repair_tail(self) -> None:
        """Truncate a torn final record left by a writer killed mid-append.

        Appending after a line that lacks its trailing newline would merge
        the two records into one corrupt line, so before the store accepts
        new appends the file is cut back to its longest prefix of complete,
        parseable lines.  The dropped cell (if any) is simply re-executed.
        An unparseable line *before* the tail is real corruption and raises.
        """
        if not self.exists():
            return
        raw = self.path.read_bytes()
        if not raw:
            return
        segments = raw.splitlines(keepends=True)
        valid_bytes = 0
        for index, segment in enumerate(segments):
            stripped = segment.strip()
            parseable = True
            if stripped:
                try:
                    json.loads(stripped)
                except json.JSONDecodeError:
                    parseable = False
            if parseable and segment.endswith(b"\n"):
                valid_bytes += len(segment)
                continue
            if not parseable and index != len(segments) - 1:
                raise ValueError(
                    f"corrupt store record at {self.path}:{index + 1}"
                )
            break
        if valid_bytes < len(raw):
            _LOGGER.warning(
                "store %s: dropping torn final record (%d bytes)",
                self.path,
                len(raw) - valid_bytes,
            )
            with self.path.open("r+b") as handle:
                handle.truncate(valid_bytes)

    def _meta_record(self) -> Dict[str, object]:
        # Only the first line is needed; avoid parsing the whole store.
        first_line = ""
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                first_line = line.strip()
                if first_line:
                    break
        if not first_line:
            raise ValueError(f"store {self.path} is empty")
        try:
            meta = json.loads(first_line)
        except json.JSONDecodeError:
            raise ValueError(f"store {self.path} has a corrupt meta record")
        if not isinstance(meta, dict) or meta.get("type") != "meta":
            raise ValueError(f"store {self.path} does not start with a meta record")
        if meta.get("format") != self.FORMAT or meta.get("version") != self.VERSION:
            raise ValueError(
                f"store {self.path} has unsupported format "
                f"{meta.get('format')!r} v{meta.get('version')!r} (expected "
                f"{self.FORMAT!r} v{self.VERSION}); its records were measured "
                "under a different cell-evaluation protocol — re-run into a "
                "fresh store (or pass resume=False) instead of mixing them"
            )
        return meta

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def meta(self) -> Dict[str, object]:
        """The campaign meta record (spec snapshot + fingerprint)."""
        return self._meta_record()

    def spec_dict(self) -> Dict[str, object]:
        """The stored campaign spec as a plain dictionary."""
        return dict(self._meta_record()["spec"])

    def cell_records(self) -> "Dict[str, CellResult]":
        """All cell results keyed by cell id (first record of an id wins).

        Duplicate ids — possible only if two runs raced the same store —
        are logged and ignored beyond the first occurrence, so the resume
        invariant "each cell exactly once" holds for consumers.
        """
        from repro.eval.campaign import CellResult

        if not self.exists():
            return {}
        results: Dict[str, CellResult] = {}
        for record in read_jsonl(self.path):
            if not isinstance(record, dict) or record.get("type") != "cell":
                continue
            result = CellResult.from_dict(record)
            if result.cell_id in results:
                _LOGGER.warning(
                    "store %s: duplicate record for cell %s ignored",
                    self.path,
                    result.cell_id,
                )
                continue
            results[result.cell_id] = result
        return results

    def completed_cell_ids(self) -> List[str]:
        """Ids of every cell present in the store, in append order."""
        return list(self.cell_records())

    def __len__(self) -> int:
        return len(self.cell_records())

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def append_cell(self, result: "CellResult") -> None:
        """Durably append one finished cell result."""
        record = {"type": "cell", **result.to_dict()}
        append_jsonl(record, self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(path={str(self.path)!r})"
