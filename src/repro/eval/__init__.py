"""Evaluation harness: experiments, sweeps and reporting.

This subpackage contains the machinery the examples and the benchmark
harness share to regenerate the paper's figures:

* :mod:`repro.eval.experiment` — experiment configuration and a runner that
  trains (and caches) the clean models the sweeps need.
* :mod:`repro.eval.sweep` — fault-rate sweeps across mitigation techniques
  (the accuracy figures: Fig. 3a, 10, 13).
* :mod:`repro.eval.overheads` — latency / energy / area tables from the
  hardware model (the cost figures: Fig. 3b, 14).
* :mod:`repro.eval.reporting` — plain-text table rendering used by the
  benches to print the same rows/series the paper reports.
"""

from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.overheads import OverheadTable, overhead_tables_for_sizes
from repro.eval.reporting import format_series, format_table
from repro.eval.sweep import FaultRateSweep, SweepResult, TechniqueAccuracy

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "FaultRateSweep",
    "OverheadTable",
    "SweepResult",
    "TechniqueAccuracy",
    "format_series",
    "format_table",
    "overhead_tables_for_sizes",
]
