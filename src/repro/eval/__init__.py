"""Evaluation harness: experiments, campaigns, sweeps and reporting.

This subpackage contains the machinery the examples and the benchmark
harness share to regenerate the paper's figures:

* :mod:`repro.eval.experiment` — experiment configuration and a runner that
  trains (and caches) the clean models the sweeps need.
* :mod:`repro.eval.campaign` — campaign orchestration: a declarative spec
  expands a workload × size × rate × trial grid into independent,
  deterministically seeded cells executed serially or across a process
  pool.
* :mod:`repro.eval.store` — the append-only JSON-lines result store that
  makes campaigns resumable.
* :mod:`repro.eval.sweep` — fault-rate sweeps across mitigation techniques
  (the accuracy figures: Fig. 3a, 10, 13), a single-experiment front end
  over the campaign machinery.
* :mod:`repro.eval.overheads` — latency / energy / area tables from the
  hardware model (the cost figures: Fig. 3b, 14).
* :mod:`repro.eval.reporting` — plain-text table rendering used by the
  benches to print the same rows/series the paper reports.
"""

from repro.eval.campaign import (
    CampaignResult,
    CampaignSpec,
    CellResult,
    SweepCell,
    TechniqueSpec,
    run_campaign,
)
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.overheads import OverheadTable, overhead_tables_for_sizes
from repro.eval.reporting import format_series, format_table
from repro.eval.store import ResultStore, StoreMismatchError
from repro.eval.sweep import FaultRateSweep, SweepResult, TechniqueAccuracy

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "ExperimentConfig",
    "ExperimentRunner",
    "FaultRateSweep",
    "OverheadTable",
    "ResultStore",
    "StoreMismatchError",
    "SweepCell",
    "SweepResult",
    "TechniqueAccuracy",
    "TechniqueSpec",
    "format_series",
    "format_table",
    "overhead_tables_for_sizes",
    "run_campaign",
]
