"""Fault-rate sweeps across mitigation techniques.

The accuracy figures of the paper (Fig. 3a, Fig. 10, Fig. 13) are all
sweeps of the same form: fix a trained model and a test set, vary the fault
rate, and measure the accuracy of one or more mitigation techniques, with
every technique seeing the *same* fault map at each rate so the comparison
is paired.  :class:`FaultRateSweep` exposes that loop as a single-experiment
front end over the campaign machinery of :mod:`repro.eval.campaign`: the
sweep grid is expanded into independent, deterministically seeded cells and
executed serially in-process, so the results are bit-identical to the same
grid distributed over a campaign's process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.mitigation import MitigationTechnique
from repro.data.datasets import Dataset
from repro.hardware.enhancements import MitigationKind
from repro.snn.training import TrainedModel
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, derive_root_seed

__all__ = ["TechniqueAccuracy", "SweepResult", "FaultRateSweep"]

_LOGGER = get_logger("eval.sweep")

#: Fault rates swept by the paper's compute-engine experiments (Fig. 13).
PAPER_FAULT_RATES = (1e-4, 1e-3, 1e-2, 1e-1)


@dataclass
class TechniqueAccuracy:
    """Accuracy series of one technique across the swept fault rates.

    Attributes
    ----------
    kind:
        The technique's hardware-model identity.
    fault_rates:
        Swept fault rates, in sweep order.
    accuracies:
        Mean accuracy (percent) at each fault rate, averaged over trials.
    per_trial:
        Raw per-trial accuracies at each fault rate.
    """

    kind: MitigationKind
    fault_rates: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    per_trial: List[List[float]] = field(default_factory=list)

    def accuracy_at(self, fault_rate: float) -> float:
        """Mean accuracy at the given fault rate (must have been swept).

        Rates are matched with :func:`math.isclose` rather than exact float
        equality so a rate recomputed elsewhere (e.g. ``10 ** -1`` versus
        the literal ``1e-1``) still resolves to its swept entry.
        """
        for rate, accuracy in zip(self.fault_rates, self.accuracies):
            if math.isclose(rate, fault_rate, rel_tol=1e-9, abs_tol=1e-12):
                return accuracy
        raise KeyError(f"fault rate {fault_rate} was not part of this sweep")

    @property
    def worst_accuracy(self) -> float:
        """Lowest mean accuracy across the swept rates."""
        return min(self.accuracies) if self.accuracies else 0.0


@dataclass
class SweepResult:
    """Complete result of one fault-rate sweep.

    Attributes
    ----------
    label:
        Human-readable description (workload / network size).
    clean_accuracy:
        Accuracy of the unmitigated, fault-free network (percent).
    fault_rates:
        The swept fault rates.
    techniques:
        Per-technique accuracy series, keyed by technique kind.
    clean_accuracies:
        Fault-free baseline of *each* technique (percent).  Techniques that
        modify behaviour even without faults — BnP bounds the clean maximum
        weights at fault rate 0 — have their own baseline here;
        ``clean_accuracy`` keeps the unmitigated reference.  Empty for
        results rehydrated from records predating the per-technique clean
        evaluation.
    """

    label: str
    clean_accuracy: float
    fault_rates: List[float]
    techniques: Dict[MitigationKind, TechniqueAccuracy] = field(default_factory=dict)
    clean_accuracies: Dict[MitigationKind, float] = field(default_factory=dict)

    def clean_accuracy_of(self, kind: MitigationKind) -> float:
        """Fault-free baseline of *kind* (falls back to the shared one)."""
        return self.clean_accuracies.get(kind, self.clean_accuracy)

    def accuracy_table(self) -> List[List[object]]:
        """Rows of ``[technique, acc@rate1, acc@rate2, ...]`` for reporting."""
        rows = []
        for kind, series in self.techniques.items():
            rows.append([kind.value] + [round(a, 2) for a in series.accuracies])
        return rows

    def improvement_over_no_mitigation(self, kind: MitigationKind) -> float:
        """Largest accuracy gain of *kind* over the unmitigated baseline."""
        if MitigationKind.NO_MITIGATION not in self.techniques:
            raise KeyError("sweep did not include the no-mitigation baseline")
        baseline = self.techniques[MitigationKind.NO_MITIGATION]
        target = self.techniques[kind]
        gains = [
            target_acc - base_acc
            for target_acc, base_acc in zip(target.accuracies, baseline.accuracies)
        ]
        return max(gains) if gains else 0.0

    @property
    def n_trials(self) -> int:
        """Number of trials per fault rate (0 when no series is populated)."""
        for series in self.techniques.values():
            if series.per_trial:
                return len(series.per_trial[0])
        return 0

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary of the sweep, raw per-trial data included.

        The ``techniques`` entries keep the legacy mean-accuracy list under
        ``accuracies`` and add ``per_trial`` (one list per fault rate) plus
        ``n_trials`` so persisted campaign results can be rehydrated
        losslessly via :meth:`from_summary`.
        """
        return {
            "label": self.label,
            "clean_accuracy": self.clean_accuracy,
            "clean_accuracies": {
                kind.value: accuracy
                for kind, accuracy in self.clean_accuracies.items()
            },
            "fault_rates": list(self.fault_rates),
            "n_trials": self.n_trials,
            "techniques": {
                kind.value: {
                    "accuracies": list(series.accuracies),
                    "per_trial": [list(trials) for trials in series.per_trial],
                }
                for kind, series in self.techniques.items()
            },
        }

    @classmethod
    def from_summary(cls, data: Dict[str, object]) -> "SweepResult":
        """Rebuild a sweep result from :meth:`summary` output.

        This is the round trip the campaign store and the CLI's summary
        files rely on; ``summary(from_summary(x)) == x`` for any summary
        produced by this class.
        """
        fault_rates = [float(rate) for rate in data["fault_rates"]]
        techniques: Dict[MitigationKind, TechniqueAccuracy] = {}
        for kind_value, series_data in dict(data["techniques"]).items():
            kind = MitigationKind(kind_value)
            techniques[kind] = TechniqueAccuracy(
                kind=kind,
                fault_rates=list(fault_rates),
                accuracies=[float(a) for a in series_data["accuracies"]],
                per_trial=[
                    [float(a) for a in trials]
                    for trials in series_data.get("per_trial", [])
                ],
            )
        return cls(
            label=str(data["label"]),
            clean_accuracy=float(data["clean_accuracy"]),
            fault_rates=fault_rates,
            techniques=techniques,
            clean_accuracies={
                MitigationKind(kind_value): float(accuracy)
                for kind_value, accuracy in dict(
                    data.get("clean_accuracies", {})
                ).items()
            },
        )


class FaultRateSweep:
    """Runs paired fault-rate sweeps over a set of mitigation techniques.

    This is the single-experiment front end of the campaign subsystem: the
    sweep is expanded into independent cells (one per fault rate × trial,
    plus the fault-free reference) and executed on the in-process serial
    path.  Because every cell is seeded from its grid coordinates, the
    results are bit-identical to running the same grid as a parallel
    campaign with the same seed and experiment key.

    Parameters
    ----------
    model:
        Trained clean model under test.
    dataset:
        Test set used for every accuracy measurement.
    techniques:
        The mitigation techniques to compare.
    inject_synapses / inject_neurons:
        Which parts of the compute engine receive faults (Fig. 3a uses
        synapses only, Fig. 10a neurons only, Fig. 13 both).
    n_trials:
        Number of independent fault maps per fault rate; accuracies are
        averaged across trials.
    batch_size:
        Chunk size forwarded to the batched inference engine for every
        accuracy measurement; ``None`` uses the engine default.
    """

    def __init__(
        self,
        model: TrainedModel,
        dataset: Dataset,
        techniques: Sequence[MitigationTechnique],
        inject_synapses: bool = True,
        inject_neurons: bool = True,
        n_trials: int = 1,
        batch_size: Optional[int] = None,
    ) -> None:
        if not techniques:
            raise ValueError("at least one technique is required")
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        self.dataset = dataset
        self.techniques = list(techniques)
        self.inject_synapses = bool(inject_synapses)
        self.inject_neurons = bool(inject_neurons)
        self.n_trials = int(n_trials)
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #
    def run(
        self,
        fault_rates: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        label: str = "sweep",
    ) -> SweepResult:
        """Run the sweep and return the per-technique accuracy series.

        ``rng`` collapses to a single root seed (an ``int`` is used as-is;
        ``None``/a generator draws one) from which every cell derives its
        own seed, so a campaign sharing the root seed and using *label* as
        its experiment key reproduces these exact accuracies.
        """
        from repro.eval.campaign import (
            build_experiment_cells,
            collect_sweep_result,
            execute_cell_group,
            group_cells,
        )

        if fault_rates is None:
            fault_rates = PAPER_FAULT_RATES
        fault_rates = [float(rate) for rate in fault_rates]
        root_seed = derive_root_seed(rng)

        cells = build_experiment_cells(
            label,
            fault_rates,
            self.n_trials,
            root_seed=root_seed,
            inject_synapses=self.inject_synapses,
            inject_neurons=self.inject_neurons,
            batch_size=self.batch_size,
        )
        records = {}
        # All trials of one fault rate execute as a single map-parallel
        # unit; the records are bit-identical to cell-at-a-time execution.
        for unit in group_cells(cells):
            results = execute_cell_group(
                unit, self.model, self.dataset, self.techniques
            )
            for result in results:
                records[result.cell_id] = result
            if unit[0].is_clean:
                continue
            means = {
                kind: sum(r.accuracies[kind] for r in results) / len(results)
                for kind in results[0].accuracies
            }
            _LOGGER.info(
                "%s: fault rate %.0e done (%s)",
                label,
                unit[0].fault_rate,
                ", ".join(f"{kind}={acc:.1f}%" for kind, acc in means.items()),
            )

        return collect_sweep_result(
            label=label,
            fault_rates=fault_rates,
            technique_kinds=[technique.kind for technique in self.techniques],
            n_trials=self.n_trials,
            records=records,
        )
