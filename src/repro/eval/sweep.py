"""Fault-rate sweeps across mitigation techniques.

The accuracy figures of the paper (Fig. 3a, Fig. 10, Fig. 13) are all
sweeps of the same form: fix a trained model and a test set, vary the fault
rate, and measure the accuracy of one or more mitigation techniques, with
every technique seeing the *same* fault map at each rate so the comparison
is paired.  :class:`FaultRateSweep` implements that loop once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.mitigation import MitigationTechnique
from repro.data.datasets import Dataset
from repro.faults.fault_map import FaultMapGenerator
from repro.faults.models import ComputeEngineFaultConfig
from repro.hardware.enhancements import MitigationKind
from repro.snn.training import TrainedModel
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, resolve_rng, spawn_rngs

__all__ = ["TechniqueAccuracy", "SweepResult", "FaultRateSweep"]

_LOGGER = get_logger("eval.sweep")

#: Fault rates swept by the paper's compute-engine experiments (Fig. 13).
PAPER_FAULT_RATES = (1e-4, 1e-3, 1e-2, 1e-1)


@dataclass
class TechniqueAccuracy:
    """Accuracy series of one technique across the swept fault rates.

    Attributes
    ----------
    kind:
        The technique's hardware-model identity.
    fault_rates:
        Swept fault rates, in sweep order.
    accuracies:
        Mean accuracy (percent) at each fault rate, averaged over trials.
    per_trial:
        Raw per-trial accuracies at each fault rate.
    """

    kind: MitigationKind
    fault_rates: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    per_trial: List[List[float]] = field(default_factory=list)

    def accuracy_at(self, fault_rate: float) -> float:
        """Mean accuracy at the given fault rate (must have been swept).

        Rates are matched with :func:`math.isclose` rather than exact float
        equality so a rate recomputed elsewhere (e.g. ``10 ** -1`` versus
        the literal ``1e-1``) still resolves to its swept entry.
        """
        for rate, accuracy in zip(self.fault_rates, self.accuracies):
            if math.isclose(rate, fault_rate, rel_tol=1e-9, abs_tol=1e-12):
                return accuracy
        raise KeyError(f"fault rate {fault_rate} was not part of this sweep")

    @property
    def worst_accuracy(self) -> float:
        """Lowest mean accuracy across the swept rates."""
        return min(self.accuracies) if self.accuracies else 0.0


@dataclass
class SweepResult:
    """Complete result of one fault-rate sweep.

    Attributes
    ----------
    label:
        Human-readable description (workload / network size).
    clean_accuracy:
        Accuracy of the unmitigated, fault-free network (percent).
    fault_rates:
        The swept fault rates.
    techniques:
        Per-technique accuracy series, keyed by technique kind.
    """

    label: str
    clean_accuracy: float
    fault_rates: List[float]
    techniques: Dict[MitigationKind, TechniqueAccuracy] = field(default_factory=dict)

    def accuracy_table(self) -> List[List[object]]:
        """Rows of ``[technique, acc@rate1, acc@rate2, ...]`` for reporting."""
        rows = []
        for kind, series in self.techniques.items():
            rows.append([kind.value] + [round(a, 2) for a in series.accuracies])
        return rows

    def improvement_over_no_mitigation(self, kind: MitigationKind) -> float:
        """Largest accuracy gain of *kind* over the unmitigated baseline."""
        if MitigationKind.NO_MITIGATION not in self.techniques:
            raise KeyError("sweep did not include the no-mitigation baseline")
        baseline = self.techniques[MitigationKind.NO_MITIGATION]
        target = self.techniques[kind]
        gains = [
            target_acc - base_acc
            for target_acc, base_acc in zip(target.accuracies, baseline.accuracies)
        ]
        return max(gains) if gains else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary of the sweep."""
        return {
            "label": self.label,
            "clean_accuracy": self.clean_accuracy,
            "fault_rates": list(self.fault_rates),
            "techniques": {
                kind.value: list(series.accuracies)
                for kind, series in self.techniques.items()
            },
        }


class FaultRateSweep:
    """Runs paired fault-rate sweeps over a set of mitigation techniques.

    Parameters
    ----------
    model:
        Trained clean model under test.
    dataset:
        Test set used for every accuracy measurement.
    techniques:
        The mitigation techniques to compare.
    inject_synapses / inject_neurons:
        Which parts of the compute engine receive faults (Fig. 3a uses
        synapses only, Fig. 10a neurons only, Fig. 13 both).
    n_trials:
        Number of independent fault maps per fault rate; accuracies are
        averaged across trials.
    batch_size:
        Chunk size forwarded to the batched inference engine for every
        accuracy measurement; ``None`` uses the engine default.
    """

    def __init__(
        self,
        model: TrainedModel,
        dataset: Dataset,
        techniques: Sequence[MitigationTechnique],
        inject_synapses: bool = True,
        inject_neurons: bool = True,
        n_trials: int = 1,
        batch_size: Optional[int] = None,
    ) -> None:
        if not techniques:
            raise ValueError("at least one technique is required")
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        self.dataset = dataset
        self.techniques = list(techniques)
        self.inject_synapses = bool(inject_synapses)
        self.inject_neurons = bool(inject_neurons)
        self.n_trials = int(n_trials)
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #
    def run(
        self,
        fault_rates: Optional[Sequence[float]] = None,
        rng: RNGLike = None,
        label: str = "sweep",
    ) -> SweepResult:
        """Run the sweep and return the per-technique accuracy series."""
        if fault_rates is None:
            fault_rates = PAPER_FAULT_RATES
        generator = resolve_rng(rng)

        # Clean reference accuracy (no faults, no mitigation).
        clean_accuracy = (
            self.techniques[0]
            .evaluate(
                self.model,
                self.dataset,
                fault_config=None,
                rng=generator,
                batch_size=self.batch_size,
            )
            .accuracy_percent
        )

        network = self.model.build_network(rng=generator)
        map_generator = FaultMapGenerator(
            crossbar_shape=network.synapses.shape,
            quantizer=network.synapses.quantizer,
        )

        result = SweepResult(
            label=label,
            clean_accuracy=clean_accuracy,
            fault_rates=list(fault_rates),
            techniques={
                technique.kind: TechniqueAccuracy(kind=technique.kind)
                for technique in self.techniques
            },
        )

        for fault_rate in fault_rates:
            config = ComputeEngineFaultConfig(
                fault_rate=fault_rate,
                inject_synapses=self.inject_synapses,
                inject_neurons=self.inject_neurons,
            )
            trial_rngs = spawn_rngs(generator, self.n_trials)
            per_technique_trials: Dict[MitigationKind, List[float]] = {
                technique.kind: [] for technique in self.techniques
            }
            for trial_rng in trial_rngs:
                fault_map = map_generator.generate(config, rng=trial_rng)
                for technique in self.techniques:
                    outcome = technique.evaluate(
                        self.model,
                        self.dataset,
                        fault_config=config,
                        rng=trial_rng,
                        fault_map=fault_map,
                        batch_size=self.batch_size,
                    )
                    per_technique_trials[technique.kind].append(
                        outcome.accuracy_percent
                    )
            for technique in self.techniques:
                trials = per_technique_trials[technique.kind]
                series = result.techniques[technique.kind]
                series.fault_rates.append(fault_rate)
                series.per_trial.append(trials)
                series.accuracies.append(sum(trials) / len(trials))
            _LOGGER.info(
                "%s: fault rate %.0e done (%s)",
                label,
                fault_rate,
                ", ".join(
                    f"{kind.value}={series.accuracies[-1]:.1f}%"
                    for kind, series in result.techniques.items()
                ),
            )
        return result
