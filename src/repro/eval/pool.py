"""Warm persistent worker pool for campaign execution.

The campaign's old process pool lost to serial execution (0.16x) because
every submitted unit paid model-snapshot loading, dataset regeneration and
test-set Poisson encoding *inside* the worker.  This module replaces it
with long-lived workers and a strict split of responsibilities:

Orchestrator (this process)
    Owns every heavy asset.  It trains/loads the clean models, publishes
    each experiment's test set once via ``multiprocessing.shared_memory``
    (:class:`repro.utils.serialization.SharedArrayPublisher`), and — right
    before dispatching a unit — draws that unit's fault maps and encodes
    its presentations (:func:`repro.eval.campaign.prepare_unit_inputs`),
    publishing the stacked rasters as one shared segment per cell.  The
    per-unit encode overlaps with worker simulation, so encoding cost is
    hidden behind the much larger engine pass.

Workers (long-lived child processes)
    Load the ``TrainedModel`` snapshot once per experiment key, attach
    zero-copy numpy views onto the published test set and rasters, rebuild
    techniques from their declarative specs, and run
    :func:`repro.eval.campaign.execute_cell_group` with the pre-drawn
    :class:`repro.eval.campaign.UnitInputs`.  Because the orchestrator
    consumed the very same per-cell random streams in the very same order
    the serial path does, the records coming back are bit-identical to
    serial execution.

Scheduling is group-aware: units are assigned largest-first (LPT) and
routed with affinity to a worker that already holds the unit's experiment
assets, unless that worker is overloaded relative to the least-loaded one.
Results stream back over a single queue, so the caller's ``on_result``
callback (and therefore ``ResultStore`` append/fsync and resume
fingerprints) behaves exactly as in serial execution.

Crash safety: the orchestrator owns all shared-memory segments and unlinks
them in a ``finally`` block, so neither worker crashes nor
``KeyboardInterrupt`` leak segments.  A worker that dies mid-unit is
detected by liveness polling; its in-flight unit is named (experiment key
plus cell ids) and re-executed serially once, and its queued units are
redistributed to the surviving workers.
"""

from __future__ import annotations

import logging
import os
import pickle
import queue as queue_module
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from repro.data.datasets import Dataset
from repro.eval.campaign import (
    CellResult,
    SweepCell,
    TechniqueSpec,
    UnitInputs,
    execute_cell_group,
    prepare_unit_inputs,
)
from repro.obs import metrics as _obs
from repro.snn.training import TrainedModel
from repro.utils.logging import env_log_level, get_logger
from repro.utils.serialization import (
    SharedArrayHandle,
    SharedArrayPublisher,
    SharedArrayView,
    reap_stale_segments,
)

__all__ = [
    "ExperimentContext",
    "UnitExecutionError",
    "execute_units_pooled",
]

_LOGGER = get_logger("eval.pool")

# Pool telemetry (docs/observability.md): orchestrator-observed unit wall
# times, live busy/queue gauges for the progress line, shared-memory byte
# accounting, and the crash/retry/scheduling counters that used to be
# invisible log lines at best.
_POOL_UNIT_SECONDS = _obs.get_registry().histogram(
    "softsnn_campaign_unit_seconds",
    "Per-unit wall time, start-to-done as observed by the orchestrator.",
)
_POOL_WORKERS_BUSY = _obs.get_registry().gauge(
    "softsnn_campaign_workers_busy",
    "Pool workers currently executing a unit.",
)
_POOL_QUEUE_DEPTH = _obs.get_registry().gauge(
    "softsnn_campaign_queue_depth",
    "Units queued or in flight across pool workers.",
)
_POOL_CRASHES = _obs.get_registry().counter(
    "softsnn_campaign_worker_crashes_total",
    "Pool worker processes that died mid-campaign.",
)
_POOL_RETRIES = _obs.get_registry().counter(
    "softsnn_campaign_unit_retries_total",
    "Units re-executed serially in the orchestrator after a worker crash.",
)
_POOL_SCHED = _obs.get_registry().counter(
    "softsnn_campaign_sched_decisions_total",
    "LPT unit-routing decisions by policy.",
    labels=("policy",),
)
_POOL_SHM_PUBLISHED = _obs.get_registry().counter(
    "softsnn_campaign_shm_bytes_published_total",
    "Bytes published as shared-memory segments by the orchestrator.",
)
_POOL_SHM_UNLINKED = _obs.get_registry().counter(
    "softsnn_campaign_shm_bytes_unlinked_total",
    "Bytes of shared-memory segments unlinked by the orchestrator.",
)

# Units a worker may have queued or running at once.  Two keeps a worker
# busy while the orchestrator encodes its next unit without letting
# shared-memory rasters for the whole campaign pile up.
_MAX_IN_FLIGHT = 2

# Environment hook for the crash-handling tests: a worker whose task's
# ``unit_id`` matches this value hard-exits right after acknowledging the
# unit, simulating a mid-unit crash (OOM kill, segfault).
_CRASH_UNIT_ENV = "_SOFTSNN_POOL_CRASH_UNIT"


class UnitExecutionError(RuntimeError):
    """A unit failed inside a pool worker (the exception, not a crash)."""


@dataclass(frozen=True)
class ExperimentContext:
    """Everything a worker needs to build one experiment's assets.

    The model travels as a snapshot path (loaded once per worker), the
    test set as shared-memory handles (attached zero-copy), techniques as
    declarative specs (rebuilt in-process).
    """

    experiment_key: str
    model_path: str
    images: SharedArrayHandle
    labels: SharedArrayHandle
    dataset_name: str
    dataset_metadata: Dict[str, object]
    technique_specs: Tuple[Dict[str, object], ...]


@dataclass(frozen=True)
class _UnitTask:
    """One dispatched execution unit as it crosses the queue."""

    unit_id: int
    experiment_key: str
    cells: Tuple[Dict[str, object], ...]
    fault_maps_blob: Optional[bytes]
    raster_handles: Tuple[SharedArrayHandle, ...]
    generators_blob: bytes


@dataclass
class _WorkerState:
    """Orchestrator-side bookkeeping for one worker process."""

    process: mp.process.BaseProcess
    task_queue: "mp.queues.Queue"
    backlog: List[int] = field(default_factory=list)
    in_flight: List[int] = field(default_factory=list)
    started_unit: Optional[int] = None
    sent_contexts: set = field(default_factory=set)
    load: int = 0
    alive: bool = True
    #: ``perf_counter`` when the current unit's "start" ack arrived;
    #: workers execute units strictly serially, so start/done pair up.
    started_at: Optional[float] = None
    busy_seconds: float = 0.0
    units_done: int = 0


class _QueueLogHandler(logging.Handler):
    """Forwards worker-side log records over the pool's result queue.

    A ``QueueHandler``-style relay: the worker serialises only what the
    orchestrator needs (logger name, level, rendered message) so records
    survive pickling regardless of their args, and a failing queue must
    never take down the worker — logging is diagnostic, units are the
    product.
    """

    def __init__(self, worker_id: int, result_queue: "mp.queues.Queue") -> None:
        super().__init__()
        self._worker_id = worker_id
        self._result_queue = result_queue

    def emit(self, record: logging.LogRecord) -> None:
        """Ship one record to the orchestrator (best-effort)."""
        try:
            self._result_queue.put(
                (
                    "log",
                    self._worker_id,
                    record.name,
                    record.levelno,
                    record.getMessage(),
                )
            )
        except Exception:  # noqa: BLE001 - logging must never kill a worker
            pass


def _install_log_relay(
    worker_id: int, result_queue: "mp.queues.Queue"
) -> None:
    """Route this worker's ``repro.*`` logging through the result queue.

    Fork-inherited console handlers are removed first — without this,
    worker records would print directly to the orchestrator's inherited
    stderr *and* arrive over the queue, duplicating every line.
    ``SOFTSNN_LOG_LEVEL`` is honored worker-side so debug records are
    produced at all before the relay forwards them.
    """
    root = get_logger()
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.addHandler(_QueueLogHandler(worker_id, result_queue))
    level = env_log_level()
    if level is not None:
        root.setLevel(level)
    root.propagate = False


def _worker_assets(
    context: ExperimentContext,
    cache: Dict[str, Tuple[TrainedModel, Dataset, List[object]]],
    views: List[SharedArrayView],
) -> Tuple[TrainedModel, Dataset, List[object]]:
    """Build (and cache) one experiment's worker-side assets."""
    if context.experiment_key not in cache:
        model = TrainedModel.load(context.model_path)
        image_view = SharedArrayView(context.images)
        label_view = SharedArrayView(context.labels)
        views.extend([image_view, label_view])
        dataset = Dataset(
            images=image_view.array,
            labels=label_view.array,
            name=context.dataset_name,
            metadata=dict(context.dataset_metadata),
        )
        techniques = [
            TechniqueSpec.from_dict(spec).build()
            for spec in context.technique_specs
        ]
        cache[context.experiment_key] = (model, dataset, techniques)
    return cache[context.experiment_key]


def _worker_main(
    worker_id: int,
    task_queue: "mp.queues.Queue",
    result_queue: "mp.queues.Queue",
) -> None:
    """Worker loop: receive contexts and units, stream results back.

    The worker ignores ``SIGINT`` so a ``KeyboardInterrupt`` in the
    orchestrator does not race its cleanup: the orchestrator keeps control
    and shuts the pool down through sentinels/terminate.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _install_log_relay(worker_id, result_queue)
    contexts: Dict[str, ExperimentContext] = {}
    cache: Dict[str, Tuple[TrainedModel, Dataset, List[object]]] = {}
    views: List[SharedArrayView] = []
    crash_unit = os.environ.get(_CRASH_UNIT_ENV)
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            kind, payload = message
            if kind == "context":
                contexts[payload.experiment_key] = payload
                continue
            task: _UnitTask = payload
            result_queue.put(("start", worker_id, task.unit_id))
            if crash_unit is not None and crash_unit == str(task.unit_id):
                # Flush the "start" ack before dying so the orchestrator
                # reliably learns which unit the crash interrupted.
                result_queue.close()
                result_queue.join_thread()
                os._exit(3)
            raster_views: List[SharedArrayView] = []
            _LOGGER.debug(
                "executing unit %d (%d cells, experiment %s)",
                task.unit_id,
                len(task.cells),
                task.experiment_key,
            )
            try:
                model, dataset, techniques = _worker_assets(
                    contexts[task.experiment_key], cache, views
                )
                raster_views = [
                    SharedArrayView(handle) for handle in task.raster_handles
                ]
                fault_maps = (
                    None
                    if task.fault_maps_blob is None
                    else pickle.loads(task.fault_maps_blob)
                )
                inputs = UnitInputs(
                    fault_maps=fault_maps,
                    rasters=[view.array for view in raster_views],
                    generators=pickle.loads(task.generators_blob),
                )
                cells = [SweepCell.from_dict(data) for data in task.cells]
                results = execute_cell_group(
                    cells, model, dataset, techniques, inputs=inputs
                )
                result_queue.put(
                    (
                        "done",
                        worker_id,
                        task.unit_id,
                        [result.to_dict() for result in results],
                    )
                )
            except Exception:  # noqa: BLE001 - forwarded to the orchestrator
                result_queue.put(
                    ("error", worker_id, task.unit_id, traceback.format_exc())
                )
            finally:
                for view in raster_views:
                    view.close()
    finally:
        for view in views:
            view.close()


def _describe_unit(unit: Sequence[SweepCell]) -> str:
    """Human-readable identity of a unit for error messages and logs."""
    cell_ids = ", ".join(cell.cell_id for cell in unit)
    return f"experiment {unit[0].experiment_key}: [{cell_ids}]"


def _assign_units(
    units: Sequence[Sequence[SweepCell]],
    n_workers: int,
    decisions: Optional[Dict[str, int]] = None,
) -> List[List[int]]:
    """Largest-first (LPT) assignment with experiment affinity.

    Returns per-worker lists of unit indices.  Each unit goes to the
    least-loaded worker, except that a worker already holding the unit's
    experiment assets is preferred as long as its load stays within one
    unit-cost of the minimum — re-using a loaded model beats perfect
    balance for anything but large imbalances.  When *decisions* is given,
    per-policy routing counts are accumulated into it (the same tallies
    feed the ``softsnn_campaign_sched_decisions_total`` counter).
    """
    order = sorted(range(len(units)), key=lambda i: -len(units[i]))
    loads = [0] * n_workers
    keys: List[set] = [set() for _ in range(n_workers)]
    backlog: List[List[int]] = [[] for _ in range(n_workers)]
    for index in order:
        unit = units[index]
        cost = len(unit)
        best = min(range(n_workers), key=lambda w: loads[w])
        with_key = [w for w in range(n_workers) if unit[0].experiment_key in keys[w]]
        policy = "least_loaded"
        if with_key:
            preferred = min(with_key, key=lambda w: loads[w])
            if loads[preferred] <= loads[best] + cost:
                best = preferred
                policy = "affinity"
        _POOL_SCHED.labels(policy=policy).inc()
        if decisions is not None:
            decisions[policy] = decisions.get(policy, 0) + 1
        backlog[best].append(index)
        loads[best] += cost
        keys[best].add(unit[0].experiment_key)
    return backlog


def execute_units_pooled(
    units: Sequence[Sequence[SweepCell]],
    assets: Dict[str, Tuple[TrainedModel, Dataset, List[object]]],
    model_paths: Dict[str, str],
    technique_specs: Sequence[TechniqueSpec],
    n_workers: int,
    on_result: Callable[[CellResult], None],
) -> Optional[Dict[str, object]]:
    """Execute units on warm persistent workers, streaming results back.

    Returns a pool-statistics dict (``None`` for an empty unit list):
    worker count, wall seconds, per-worker busy time / utilization / unit
    counts, crash and serial-retry totals, shared-memory bytes published
    and unlinked, and per-policy scheduling decisions.  The campaign
    embeds it in :meth:`repro.eval.campaign.CampaignResult.run_report`.

    Parameters
    ----------
    units:
        Execution units (lists of cells sharing one (experiment, rate)
        coordinate), typically from
        :func:`repro.eval.campaign.group_cells`.
    assets:
        Orchestrator-side ``{experiment_key: (model, test_set,
        techniques)}`` — used to publish test sets, prepare unit inputs
        and serially re-execute units of crashed workers.
    model_paths:
        ``{experiment_key: snapshot path}`` for worker-side model loading.
    technique_specs:
        Declarative technique specs workers rebuild in-process.
    n_workers:
        Number of persistent worker processes to spawn (capped at the
        number of units).
    on_result:
        Callback invoked with every finished :class:`CellResult`, in
        completion order.

    Raises
    ------
    UnitExecutionError
        When a unit raises inside a worker (deterministic failures would
        fail serially too, so no retry), or when a crashed worker's unit
        fails its one serial retry.
    """
    units = [list(unit) for unit in units]
    if not units:
        return None
    n_workers = max(1, min(n_workers, len(units)))
    began = time.perf_counter()
    stats: Dict[str, object] = {
        "n_workers": n_workers,
        "crashes": 0,
        "serial_retries": 0,
        "shm_bytes_published": 0,
        "shm_bytes_unlinked": 0,
        "sched_decisions": {"affinity": 0, "least_loaded": 0},
    }

    stale = reap_stale_segments("softsnn-pool")
    if stale:
        _LOGGER.warning(
            "reaped %d shared-memory segment(s) orphaned by a killed "
            "campaign run", len(stale)
        )

    ctx = mp.get_context()
    result_queue = ctx.Queue()
    publisher = SharedArrayPublisher(prefix="softsnn-pool")
    workers: List[_WorkerState] = []
    contexts: Dict[str, ExperimentContext] = {}
    unit_rasters: Dict[int, Tuple[SharedArrayHandle, ...]] = {}
    done: set = set()

    needed_keys = {unit[0].experiment_key for unit in units}
    context_shm_bytes = 0
    try:
        for key in sorted(needed_keys):
            dataset = assets[key][1]
            images = publisher.publish(dataset.images)
            labels = publisher.publish(dataset.labels)
            context_shm_bytes += images.nbytes + labels.nbytes
            contexts[key] = ExperimentContext(
                experiment_key=key,
                model_path=model_paths[key],
                images=images,
                labels=labels,
                dataset_name=dataset.name,
                dataset_metadata=dict(dataset.metadata),
                technique_specs=tuple(
                    spec.to_dict() for spec in technique_specs
                ),
            )
        stats["shm_bytes_published"] = context_shm_bytes
        _POOL_SHM_PUBLISHED.inc(context_shm_bytes)

        for backlog in _assign_units(
            units, n_workers, stats["sched_decisions"]
        ):
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(len(workers), task_queue, result_queue),
                daemon=True,
            )
            process.start()
            workers.append(
                _WorkerState(
                    process=process, task_queue=task_queue, backlog=backlog
                )
            )

        def update_gauges() -> None:
            """Refresh the live busy/queue gauges (progress line reads them)."""
            _POOL_QUEUE_DEPTH.set(
                sum(
                    len(w.backlog) + len(w.in_flight)
                    for w in workers
                    if w.alive
                )
            )
            _POOL_WORKERS_BUSY.set(
                sum(
                    1
                    for w in workers
                    if w.alive and w.started_unit is not None
                )
            )

        def dispatch(worker: _WorkerState) -> None:
            """Send the worker's next backlog unit (prepare inputs now)."""
            while worker.backlog and len(worker.in_flight) < _MAX_IN_FLIGHT:
                index = worker.backlog.pop(0)
                unit = units[index]
                key = unit[0].experiment_key
                if key not in worker.sent_contexts:
                    worker.task_queue.put(("context", contexts[key]))
                    worker.sent_contexts.add(key)
                model, dataset, _ = assets[key]
                inputs = prepare_unit_inputs(unit, model, dataset)
                handles = tuple(
                    publisher.publish(raster) for raster in inputs.rasters
                )
                unit_rasters[index] = handles
                nbytes = sum(handle.nbytes for handle in handles)
                stats["shm_bytes_published"] += nbytes
                _POOL_SHM_PUBLISHED.inc(nbytes)
                task = _UnitTask(
                    unit_id=index,
                    experiment_key=key,
                    cells=tuple(cell.to_dict() for cell in unit),
                    fault_maps_blob=(
                        None
                        if inputs.fault_maps is None
                        else pickle.dumps(inputs.fault_maps)
                    ),
                    raster_handles=handles,
                    generators_blob=pickle.dumps(inputs.generators),
                )
                worker.task_queue.put(("unit", task))
                worker.in_flight.append(index)

        def release_rasters(index: int) -> None:
            nbytes = 0
            for handle in unit_rasters.pop(index, ()):
                nbytes += handle.nbytes
                publisher.unlink(handle)
            if nbytes:
                stats["shm_bytes_unlinked"] += nbytes
                _POOL_SHM_UNLINKED.inc(nbytes)

        def run_serially(index: int, reason: str) -> None:
            """Serial (orchestrator-side) execution of one unit."""
            unit = units[index]
            stats["serial_retries"] += 1
            _POOL_RETRIES.inc()
            _LOGGER.warning(
                "campaign pool: executing %s serially (%s)",
                _describe_unit(unit),
                reason,
            )
            model, dataset, techniques = assets[unit[0].experiment_key]
            try:
                results = execute_cell_group(unit, model, dataset, techniques)
            except Exception as error:
                raise UnitExecutionError(
                    f"unit {_describe_unit(unit)} failed its serial retry "
                    f"after a worker crash: {error}"
                ) from error
            for result in results:
                on_result(result)
            done.add(index)

        def handle_dead_worker(worker: _WorkerState) -> None:
            """Recover a crashed worker's in-flight and queued units."""
            worker.alive = False
            stats["crashes"] += 1
            _POOL_CRASHES.inc()
            crashed = worker.started_unit
            survivors = [w for w in workers if w.alive]
            for index in worker.in_flight:
                release_rasters(index)
                if index in done:
                    continue
                if index == crashed:
                    # The unit the worker was executing when it died gets
                    # one serial retry, as promised in the module docs.
                    run_serially(
                        index,
                        f"worker {workers.index(worker)} died mid-unit "
                        f"(exit code {worker.process.exitcode})",
                    )
                elif survivors:
                    survivors[0].backlog.insert(0, index)
                else:
                    run_serially(index, "no surviving workers")
            worker.in_flight = []
            remaining = worker.backlog
            worker.backlog = []
            if survivors:
                for position, index in enumerate(remaining):
                    survivors[position % len(survivors)].backlog.append(index)
                for survivor in survivors:
                    dispatch(survivor)
            else:
                for index in remaining:
                    run_serially(index, "no surviving workers")

        for worker in workers:
            dispatch(worker)
        update_gauges()

        while len(done) < len(units):
            try:
                message = result_queue.get(timeout=0.25)
            except queue_module.Empty:
                for worker in workers:
                    if worker.alive and not worker.process.is_alive():
                        handle_dead_worker(worker)
                        update_gauges()
                continue
            if message[0] == "log":
                # A relayed worker-side log record: re-emit it on the
                # orchestrator's logger of the same name, tagged with the
                # worker id.  Handled before the positional unpack below —
                # log messages carry no unit index.
                _, log_worker_id, logger_name, levelno, text = message
                logging.getLogger(logger_name).log(
                    levelno, "[worker %d] %s", log_worker_id, text
                )
                continue
            kind, worker_id, index = message[0], message[1], message[2]
            worker = workers[worker_id]
            if kind == "start":
                worker.started_unit = index
                worker.started_at = time.perf_counter()
                update_gauges()
                continue
            if index in done:
                # A late message for a unit already recovered serially.
                continue
            if kind == "error":
                raise UnitExecutionError(
                    f"unit {_describe_unit(units[index])} failed in "
                    f"worker {worker_id}:\n{message[3]}"
                )
            for record in message[3]:
                on_result(CellResult.from_dict(record))
            done.add(index)
            release_rasters(index)
            if index in worker.in_flight:
                worker.in_flight.remove(index)
            if worker.started_unit == index:
                worker.started_unit = None
                if worker.started_at is not None:
                    elapsed = time.perf_counter() - worker.started_at
                    worker.started_at = None
                    worker.busy_seconds += elapsed
                    _POOL_UNIT_SECONDS.observe(elapsed)
            worker.units_done += 1
            dispatch(worker)
            update_gauges()
    finally:
        for worker in workers:
            if worker.alive and worker.process.is_alive():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        for worker in workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        for worker in workers:
            worker.task_queue.cancel_join_thread()
            worker.task_queue.close()
        result_queue.cancel_join_thread()
        result_queue.close()
        # publisher.close() unlinks every remaining segment: the shared
        # test sets plus any rasters not yet released (crash/error paths).
        leftover = context_shm_bytes + sum(
            handle.nbytes
            for handles in unit_rasters.values()
            for handle in handles
        )
        if leftover:
            stats["shm_bytes_unlinked"] += leftover
            _POOL_SHM_UNLINKED.inc(leftover)
        publisher.close()
        _POOL_WORKERS_BUSY.set(0)
        _POOL_QUEUE_DEPTH.set(0)

    wall = time.perf_counter() - began
    stats["wall_seconds"] = round(wall, 6)
    stats["workers"] = [
        {
            "units": worker.units_done,
            "busy_seconds": round(worker.busy_seconds, 6),
            "utilization": (
                round(worker.busy_seconds / wall, 4) if wall > 0 else 0.0
            ),
        }
        for worker in workers
    ]
    return stats
