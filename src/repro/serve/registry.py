"""Snapshot discovery, checksum validation, and warm-session caching.

The registry is the serving layer's view onto a directory of
:class:`~repro.snn.training.TrainedModel` snapshots (the ``.npz`` + ``.json``
pairs written by ``TrainedModel.save``, the same artefacts campaign workers
consume).  It adds three things a long-running service needs that the
offline loaders do not:

* **discovery** — ``refresh()`` scans the directory and indexes every
  well-formed snapshot by name, so models can be dropped in (or re-trained
  in place, atomically, thanks to the temp-file + rename writers) while the
  service runs;
* **integrity** — SHA-256 checksums of both snapshot files are recorded at
  registration (in a ``.registry.json`` sidecar) or at discovery, and
  re-verified on every cold load, so a torn or tampered snapshot is refused
  with :class:`SnapshotIntegrityError` instead of silently serving garbage;
* **warmth** — loaded models and built
  :class:`~repro.serve.modes.ServingSession` instances (network + batched
  inference engine + mitigation hooks) are kept in bounded LRU caches, so
  the steady-state request path never touches the filesystem or re-injects
  fault maps.

All public methods are thread-safe; HTTP handler threads and scheduler
workers share one registry.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.serve.modes import ServingMode, ServingSession, build_session
from repro.snn.encoding import DEFAULT_ENCODING
from repro.snn.models import DEFAULT_NEURON_MODEL
from repro.snn.training import TrainedModel, TrainingConfig, TrainingRunner
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json

__all__ = [
    "RegistryError",
    "SnapshotIntegrityError",
    "ModelNotFoundError",
    "SnapshotEntry",
    "ModelRegistry",
]

_LOGGER = get_logger("serve.registry")

#: Suffix of the registry sidecar carrying workload tags and checksums.
SIDECAR_SUFFIX = ".registry.json"


class RegistryError(RuntimeError):
    """Base class of registry failures."""


class SnapshotIntegrityError(RegistryError):
    """A snapshot's bytes no longer match its recorded checksums."""


class ModelNotFoundError(RegistryError, KeyError):
    """No registered model matches the requested name / filters."""

    # KeyError.__str__ returns repr(args[0]), which would wrap the message
    # in spurious quotes in HTTP error bodies.
    __str__ = RuntimeError.__str__


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class SnapshotEntry:
    """One discovered snapshot: identity, shape metadata, and checksums."""

    name: str
    npz_path: Path
    json_path: Path
    n_inputs: int
    n_neurons: int
    timesteps: int
    workload: Optional[str] = None
    checksums: Dict[str, str] = field(default_factory=dict)
    neuron_model: str = DEFAULT_NEURON_MODEL
    encoding: str = DEFAULT_ENCODING

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly entry description for ``GET /models``."""
        return {
            "name": self.name,
            "workload": self.workload,
            "n_inputs": self.n_inputs,
            "n_neurons": self.n_neurons,
            "timesteps": self.timesteps,
            "neuron_model": self.neuron_model,
            "encoding": self.encoding,
            "checksums": dict(self.checksums),
        }

    def verify(self) -> None:
        """Re-hash both snapshot files against the recorded checksums."""
        for key, path in (("npz", self.npz_path), ("json", self.json_path)):
            expected = self.checksums.get(key)
            if expected is None:
                continue
            if not path.exists():
                raise SnapshotIntegrityError(
                    f"model {self.name!r}: snapshot file {path} disappeared"
                )
            actual = _sha256(path)
            if actual != expected:
                raise SnapshotIntegrityError(
                    f"model {self.name!r}: {path.name} checksum mismatch "
                    f"(expected {expected[:12]}…, found {actual[:12]}…); "
                    "the snapshot was modified or torn after registration"
                )


class ModelRegistry:
    """Directory of trained-model snapshots with warm serving caches.

    Parameters
    ----------
    root:
        Directory holding the snapshots (created if missing).
    max_warm_models:
        Maximum number of decoded :class:`TrainedModel` objects kept in
        memory (LRU-evicted beyond that).
    max_warm_sessions:
        Maximum number of built serving sessions — fault-injected network
        plus warm :class:`~repro.snn.engine.BatchedInferenceEngine` — kept
        across all ``(model, mode)`` pairs.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_warm_models: int = 4,
        max_warm_sessions: int = 8,
    ) -> None:
        if max_warm_models < 1 or max_warm_sessions < 1:
            raise ValueError("warm-cache capacities must be at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_warm_models = int(max_warm_models)
        self.max_warm_sessions = int(max_warm_sessions)
        self._lock = threading.RLock()
        self._entries: Dict[str, SnapshotEntry] = {}
        self._models: "OrderedDict[str, TrainedModel]" = OrderedDict()
        self._sessions: "OrderedDict[Tuple[str, Tuple], ServingSession]" = (
            OrderedDict()
        )
        self.refresh()

    # ------------------------------------------------------------------ #
    # discovery & registration
    # ------------------------------------------------------------------ #
    def refresh(self) -> List[str]:
        """Re-scan the root directory; returns the sorted registered names.

        A snapshot is every ``<name>.npz`` with a parseable ``<name>.json``
        sidecar of the supported format.  Checksums are computed from the
        current file bytes, so a snapshot atomically re-written in place
        (a re-train) is adopted — with a warning when it no longer matches
        the checksums its ``.registry.json`` sidecar recorded at
        registration.  The sidecar contributes the workload tag; bare
        snapshots dropped in by hand get no tag.  Warm caches of entries
        whose checksums changed are invalidated.  The service re-scans on
        ``GET /models`` and when a requested name is unknown.
        """
        with self._lock:
            discovered: Dict[str, SnapshotEntry] = {}
            for npz_path in sorted(self.root.glob("*.npz")):
                entry = self._index_snapshot(npz_path)
                if entry is not None:
                    discovered[entry.name] = entry
            for name, entry in discovered.items():
                old = self._entries.get(name)
                if old is not None and old.checksums != entry.checksums:
                    self._evict(name)
            for name in list(self._entries):
                if name not in discovered:
                    self._evict(name)
            self._entries = discovered
            return sorted(discovered)

    def _index_snapshot(self, npz_path: Path) -> Optional[SnapshotEntry]:
        if "." in npz_path.stem:
            # TrainedModel.load resolves sidecars via Path.with_suffix,
            # which mis-resolves dotted stems ("model.v2" -> "model.json");
            # refuse to adopt such snapshots rather than load wrong files.
            _LOGGER.warning(
                "skipping snapshot %s: dotted name is not loadable", npz_path
            )
            return None
        json_path = npz_path.with_suffix(".json")
        if not json_path.exists():
            return None
        try:
            metadata = load_json(json_path)
        except ValueError:
            _LOGGER.warning("skipping unparseable snapshot sidecar %s", json_path)
            return None
        if (
            not isinstance(metadata, dict)
            or metadata.get("format") != TrainedModel.SNAPSHOT_FORMAT
            or "network_config" not in metadata
        ):
            return None
        config = metadata["network_config"]
        sidecar_path = npz_path.with_name(npz_path.stem + SIDECAR_SUFFIX)
        workload: Optional[str] = None
        checksums = {"npz": _sha256(npz_path), "json": _sha256(json_path)}
        if sidecar_path.exists():
            try:
                sidecar = load_json(sidecar_path)
                workload = sidecar.get("workload")
                recorded = sidecar.get("sha256")
                if isinstance(recorded, dict) and {
                    str(k): str(v) for k, v in recorded.items()
                } != checksums:
                    _LOGGER.warning(
                        "snapshot %s was re-written since registration; "
                        "adopting its current checksums",
                        npz_path,
                    )
            except ValueError:
                _LOGGER.warning(
                    "ignoring unparseable registry sidecar %s", sidecar_path
                )
        return SnapshotEntry(
            name=npz_path.stem,
            npz_path=npz_path,
            json_path=json_path,
            n_inputs=int(config["n_inputs"]),
            n_neurons=int(config["n_neurons"]),
            timesteps=int(config["timesteps"]),
            workload=workload,
            checksums=checksums,
            # Snapshots predating the neuron-model zoo carry no model or
            # encoding fields and serve as the default LIF/Poisson pair.
            neuron_model=str(config.get("neuron_model", DEFAULT_NEURON_MODEL)),
            encoding=str(config.get("encoding", DEFAULT_ENCODING)),
        )

    def register(
        self,
        model: TrainedModel,
        name: str,
        workload: Optional[str] = None,
    ) -> SnapshotEntry:
        """Persist *model* under *name* and index it.

        Writes the snapshot (atomically — see
        :func:`repro.utils.serialization.save_npz`), records SHA-256
        checksums plus the workload tag in the registry sidecar, and primes
        the warm-model cache so the first request does not pay a reload.
        """
        # Dots are rejected because the snapshot writers derive file names
        # via Path.with_suffix, which would truncate "model.v2" to
        # "model.npz" and silently overwrite another model's snapshot.
        if not name or any(sep in name for sep in ("/", "\\", ".")):
            raise ValueError(
                f"invalid model name: {name!r} "
                "(must be non-empty, without path separators or dots)"
            )
        base = self.root / name
        npz_path = model.save(base)
        json_path = base.with_suffix(".json")
        checksums = {"npz": _sha256(npz_path), "json": _sha256(json_path)}
        save_json(
            {"workload": workload, "sha256": checksums},
            base.with_name(name + SIDECAR_SUFFIX),
        )
        with self._lock:
            self._evict(name)
            entry = self._index_snapshot(npz_path)
            assert entry is not None  # we just wrote a well-formed snapshot
            self._entries[name] = entry
            self._models[name] = model
            self._trim_caches()
            return entry

    def retrain(
        self,
        name: str,
        train_set,
        training_config: TrainingConfig,
        rng=None,
        vectorized: bool = True,
    ) -> SnapshotEntry:
        """Retrain a registered model in place and republish it atomically.

        The hot-retraining path of a long-running service: the existing
        snapshot's network configuration is reused (read from the metadata
        sidecar — the stored model is neither decoded nor warm-cached, as
        it is about to be replaced), a fresh model is trained on
        *train_set* (through the vectorized engine by default, which is
        what makes in-place retrains cheap enough to do live), and the
        snapshot files are rewritten through the atomic temp-file + rename
        writers.  Concurrent requests keep being served from the warm
        caches until the re-registration swaps them out; readers never
        observe a torn snapshot.

        Parameters
        ----------
        name:
            Registered model to retrain.
        train_set:
            Labelled training dataset
            (:class:`~repro.data.datasets.Dataset`) matching the model's
            input dimension.
        training_config:
            Training hyper-parameters.  Required — snapshots do not record
            how they were trained, so silently falling back to stock
            hyper-parameters could swap the model's learning algorithm;
            the caller must state the rule a refresh uses.
        rng:
            Seed or generator for the training run.
        vectorized:
            Forwarded to :meth:`~repro.snn.training.TrainingRunner.train`.

        Returns
        -------
        SnapshotEntry
            The freshly registered entry (new checksums, same name and
            workload tag).

        Raises
        ------
        ModelNotFoundError
            If no model is registered under *name*.
        SnapshotIntegrityError
            If the snapshot bytes no longer match the recorded checksums —
            retraining from a tampered sidecar would launder the
            corruption into a freshly checksummed snapshot.
        ValueError
            If the dataset does not match the model's input dimension.
        """
        entry = self.entry(name)
        entry.verify()
        network_config = TrainedModel.load_network_config(entry.json_path)
        runner = TrainingRunner(network_config, training_config)
        retrained = runner.train(train_set, rng=rng, vectorized=vectorized)
        _LOGGER.info(
            "retrained model %r in place (%d samples, vectorized=%s)",
            name,
            len(train_set),
            vectorized,
        )
        return self.register(retrained, name, workload=entry.workload)

    def _evict(self, name: str) -> None:
        self._models.pop(name, None)
        for key in [k for k in self._sessions if k[0] == name]:
            del self._sessions[key]

    def _trim_caches(self) -> None:
        while len(self._models) > self.max_warm_models:
            evicted, _ = self._models.popitem(last=False)
            _LOGGER.info("evicting warm model %r (LRU)", evicted)
        while len(self._sessions) > self.max_warm_sessions:
            (evicted, mode_key), _ = self._sessions.popitem(last=False)
            _LOGGER.info(
                "evicting warm session %r / %s (LRU)", evicted, mode_key[0]
            )

    # ------------------------------------------------------------------ #
    # lookup & loading
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Sorted names of all registered models."""
        with self._lock:
            return sorted(self._entries)

    def entry(self, name: str) -> SnapshotEntry:
        """The snapshot entry registered under *name*."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise ModelNotFoundError(
                    f"no registered model named {name!r}; "
                    f"available: {sorted(self._entries)}"
                ) from None

    def find(
        self,
        workload: Optional[str] = None,
        n_neurons: Optional[int] = None,
    ) -> List[SnapshotEntry]:
        """Entries matching the given workload and/or network size."""
        with self._lock:
            entries = [
                entry
                for entry in self._entries.values()
                if (workload is None or entry.workload == workload)
                and (n_neurons is None or entry.n_neurons == int(n_neurons))
            ]
        return sorted(entries, key=lambda entry: entry.name)

    def resolve(
        self,
        name: Optional[str] = None,
        workload: Optional[str] = None,
        n_neurons: Optional[int] = None,
    ) -> SnapshotEntry:
        """Pick one model by name, or by ``workload`` / ``n_neurons`` filters.

        Without a name, exactly the filtered candidates are considered; a
        single registered model is returned unconditionally, and an
        ambiguous filter picks the first name in sorted order (documented,
        deterministic — the service echoes the resolved name back).
        """
        if name is not None:
            return self.entry(name)
        candidates = self.find(workload=workload, n_neurons=n_neurons)
        if not candidates:
            raise ModelNotFoundError(
                f"no registered model matches workload={workload!r}, "
                f"n_neurons={n_neurons!r}; available: {self.names()}"
            )
        return candidates[0]

    def load(self, name: str) -> TrainedModel:
        """Return the decoded model, verifying checksums on a cold load.

        The expensive work — re-hashing both files and decoding the arrays
        — happens outside the registry lock, so a cold load never stalls
        lookups or warm requests for other models.  Two threads racing the
        same cold load may both decode; the first insert wins and the loser
        adopts it, keeping the cached object unique per name.
        """
        with self._lock:
            cached = self._models.get(name)
            if cached is not None:
                self._models.move_to_end(name)
                return cached
            entry = self._entries.get(name)
        if entry is None:
            raise ModelNotFoundError(
                f"no registered model named {name!r}; available: {self.names()}"
            )
        entry.verify()
        model = TrainedModel.load(entry.npz_path)
        with self._lock:
            existing = self._models.get(name)
            if existing is not None:
                self._models.move_to_end(name)
                return existing
            self._models[name] = model
            self._trim_caches()
            return model

    def session(self, name: str, mode: ServingMode) -> ServingSession:
        """Warm serving session for ``(name, mode)`` (built on first use).

        Like :meth:`load`, session construction (fault injection, engine
        build) runs outside the lock; a racing build adopts the session
        another thread inserted first, so callers can rely on object
        identity to detect that a session was rebuilt.
        """
        key = (name, mode.cache_key)
        with self._lock:
            cached = self._sessions.get(key)
            if cached is not None:
                self._sessions.move_to_end(key)
                return cached
        model = self.load(name)
        session = build_session(model, mode)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                self._sessions.move_to_end(key)
                return existing
            self._sessions[key] = session
            self._trim_caches()
            return session

    # ------------------------------------------------------------------ #
    @property
    def warm_model_count(self) -> int:
        """Number of decoded models currently cached."""
        with self._lock:
            return len(self._models)

    @property
    def warm_session_count(self) -> int:
        """Number of built serving sessions currently cached."""
        with self._lock:
            return len(self._sessions)

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-friendly listing of all entries (for ``GET /models``)."""
        with self._lock:
            warm_models = set(self._models)
            warm_modes: Dict[str, List[Dict[str, Any]]] = {}
            for (name, _), session in self._sessions.items():
                warm_modes.setdefault(name, []).append(session.mode.to_dict())
            return [
                {
                    **entry.to_dict(),
                    "warm": entry.name in warm_models,
                    "warm_modes": warm_modes.get(entry.name, []),
                }
                for entry in sorted(
                    self._entries.values(), key=lambda item: item.name
                )
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry(root={str(self.root)!r}, models={len(self)})"
