"""Closed-loop multi-threaded load generation for the serving layer.

A *closed loop* means each generator thread issues its next request only
after the previous one completed — the standard way to measure a serving
stack without coordinated-omission artefacts from an open-loop arrival
process.  ``concurrency`` threads share one global request counter; every
request carries exactly one image and one deterministic seed, so the
predictions a load run produces are comparable bit-for-bit across serving
configurations (the perf bench uses this to assert that the micro-batched
and batch-size-1 configurations classify identically before comparing
their throughput).

The generator drives anything with the client interface of
:mod:`repro.serve.service` (``classify(images=…, model=…, mode=…,
seeds=…)``) — the in-process client for clean scheduler measurements, or
the HTTP client to include the socket path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["LoadReport", "run_closed_loop"]


@dataclass
class LoadReport:
    """Summary of one closed-loop load run.

    ``predictions`` is indexed by request number (request *i* classified
    ``images[i % len(images)]`` with ``seeds[i]``), so two runs over the
    same inputs can be compared prediction-for-prediction.
    ``mean_batch_size`` is filled from the service metrics snapshot when
    one is provided to :func:`run_closed_loop`.
    """

    label: str
    n_requests: int
    concurrency: int
    duration_seconds: float
    errors: int
    latencies_ms: List[float] = field(default_factory=list)
    predictions: List[Optional[int]] = field(default_factory=list)
    mean_batch_size: Optional[float] = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock."""
        completed = self.n_requests - self.errors
        if self.duration_seconds <= 0:
            return 0.0
        return completed / self.duration_seconds

    def latency_percentiles(self) -> Dict[str, float]:
        """Mean / p50 / p90 / p99 / max of the per-request latencies (ms)."""
        if not self.latencies_ms:
            return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        values = np.asarray(self.latencies_ms, dtype=np.float64)
        return {
            "mean": round(float(values.mean()), 3),
            "p50": round(float(np.percentile(values, 50)), 3),
            "p90": round(float(np.percentile(values, 90)), 3),
            "p99": round(float(np.percentile(values, 99)), 3),
            "max": round(float(values.max()), 3),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON summary (throughput, latency percentiles, batch occupancy)."""
        return {
            "label": self.label,
            "n_requests": self.n_requests,
            "concurrency": self.concurrency,
            "errors": self.errors,
            "duration_seconds": round(self.duration_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": self.latency_percentiles(),
            "mean_batch_size": self.mean_batch_size,
        }


def run_closed_loop(
    client: Any,
    images: Sequence[Any],
    seeds: Sequence[int],
    model: Optional[str] = None,
    mode: Any = None,
    concurrency: int = 8,
    label: str = "load",
    metrics_source: Optional[Callable[[], Dict[str, Any]]] = None,
) -> LoadReport:
    """Issue ``len(seeds)`` single-image requests from *concurrency* threads.

    Parameters
    ----------
    client:
        Anything with the serving client interface (``classify`` returning
        a dict with ``predictions``).
    images:
        Pool of images cycled through round-robin (request *i* sends
        ``images[i % len(images)]``).
    seeds:
        One deterministic encoding seed per request; the request count is
        ``len(seeds)``.
    model / mode:
        Forwarded to every classify call.
    concurrency:
        Number of closed-loop generator threads.
    label:
        Name recorded in the report.
    metrics_source:
        Optional callable returning a service metrics snapshot; when given,
        the report's ``mean_batch_size`` is read from it after the run.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be at least 1, got {concurrency}")
    if not images:
        raise ValueError("images must not be empty")
    n_requests = len(seeds)
    if n_requests == 0:
        raise ValueError("seeds must not be empty")

    counter_lock = threading.Lock()
    next_request = [0]
    latencies: List[Optional[float]] = [None] * n_requests
    predictions: List[Optional[int]] = [None] * n_requests
    errors = [0]

    def worker() -> None:
        while True:
            with counter_lock:
                index = next_request[0]
                if index >= n_requests:
                    return
                next_request[0] = index + 1
            image = images[index % len(images)]
            started = time.monotonic()
            try:
                response = client.classify(
                    [image], model=model, mode=mode, seeds=[int(seeds[index])]
                )
                predictions[index] = int(response["predictions"][0])
                latencies[index] = 1000.0 * (time.monotonic() - started)
            except Exception:  # noqa: BLE001 - counted, run continues
                with counter_lock:
                    errors[0] += 1

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{index}", daemon=True)
        for index in range(min(concurrency, n_requests))
    ]
    run_started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.monotonic() - run_started

    report = LoadReport(
        label=label,
        n_requests=n_requests,
        concurrency=concurrency,
        duration_seconds=duration,
        errors=errors[0],
        latencies_ms=[value for value in latencies if value is not None],
        predictions=predictions,
    )
    if metrics_source is not None:
        try:
            report.mean_batch_size = float(metrics_source().get("mean_batch_size", 0.0))
        except Exception:  # noqa: BLE001 - metrics are best-effort
            report.mean_batch_size = None
    return report
