"""Adaptive micro-batching: coalesce single requests into engine batches.

The batched inference engine (:mod:`repro.snn.engine`) gets its throughput
from amortising the weight matrix across the sample dimension — but an
online service receives samples one request at a time.  This module closes
that gap with the classic serving pattern: requests enter a thread-safe
queue, a single worker thread drains it into micro-batches under a

    *flush when ``max_batch_size`` requests are waiting, or when the oldest
    waiting request has been queued for ``max_delay``* — whichever happens
    first —

policy, runs the whole batch through the engine at once, and resolves one
:class:`concurrent.futures.Future` per request.  Small batches under light
load keep latency bounded by ``max_delay``; under heavy load the queue
fills to ``max_batch_size`` before the deadline and the scheduler converges
to full engine batches, which is where the ≥2x throughput over
one-request-one-call serving (``benchmarks/test_perf_serving.py``) comes
from.

A third, *adaptive* flush condition makes the policy efficient for
closed-loop clients: when the arrival stream has been idle for
``idle_grace`` (default ``max_delay / 4``), the waiting batch is flushed
early.  A fixed population of synchronous clients resubmits in a burst the
moment its previous batch resolves and then goes quiet until the next one —
without the idle flush every such cycle would sleep out the full
``max_delay`` deadline after the burst, capping throughput far below what
the engine can do.  ``idle_grace >= max_delay`` disables the heuristic and
restores the pure two-condition policy.

The scheduler is generic: it moves opaque payloads to a ``run_batch``
callable that must return one result per payload, in order.  Because every
batch is executed by the single worker thread, the callable needs no
internal locking — the serving layer exploits this by handing it a
:class:`~repro.serve.modes.ServingSession` bound method.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.snn.kernels import DEFAULT_BATCH_SIZE
from repro.utils.logging import get_logger

__all__ = ["SchedulerStats", "MicroBatchScheduler"]

_LOGGER = get_logger("serve.scheduler")

#: Signature of the batch executor: payloads in, one result per payload out.
BatchRunner = Callable[[List[Any]], Sequence[Any]]


@dataclass
class SchedulerStats:
    """Counters describing a scheduler's batching behaviour.

    ``batch_size_histogram`` maps flushed batch size to occurrence count;
    ``flush_full`` / ``flush_deadline`` / ``flush_idle`` / ``flush_close``
    split the flushes by the event that *actually* triggered them: a batch
    counts as ``flush_full`` only when it filled while the scheduler was
    open and its deadline had not yet expired — a full batch drained by
    :meth:`MicroBatchScheduler.close` counts as ``flush_close``, and one
    whose deadline expired during the final wait counts as
    ``flush_deadline`` even if arrivals filled it meanwhile.
    ``mean_batch_size`` is the mean occupancy of the flushed batches — the
    single number that tells you whether micro-batching is actually
    engaging under the offered load.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    flush_full: int = 0
    flush_deadline: int = 0
    flush_idle: int = 0
    flush_close: int = 0
    max_queue_depth: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def n_batches(self) -> int:
        """Total number of flushed batches."""
        return (
            self.flush_full
            + self.flush_deadline
            + self.flush_idle
            + self.flush_close
        )

    @property
    def mean_batch_size(self) -> float:
        """Mean occupancy of the flushed batches (0.0 before any flush)."""
        total = sum(size * count for size, count in self.batch_size_histogram.items())
        batches = sum(self.batch_size_histogram.values())
        return total / batches if batches else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot for the metrics endpoint."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "n_batches": self.n_batches,
            "flush_full": self.flush_full,
            "flush_deadline": self.flush_deadline,
            "flush_idle": self.flush_idle,
            "flush_close": self.flush_close,
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            },
        }


@dataclass
class _Pending:
    payload: Any
    future: "Future[Any]"
    enqueued_at: float


class MicroBatchScheduler:
    """Thread-safe request queue with max-batch / max-delay flushing.

    Parameters
    ----------
    run_batch:
        Callable executing one micro-batch; receives the payload list and
        must return one result per payload, in order.  Called only from
        the scheduler's own worker thread.
    max_batch_size:
        Flush as soon as this many requests are waiting.  The scheduler is
        model-agnostic, so ``None`` falls back to
        :data:`repro.snn.kernels.DEFAULT_BATCH_SIZE`; the serving layer
        resolves ``None`` *before* construction instead, through
        :func:`repro.snn.kernels.autotune_batch_size` for the served
        model's geometry (see ``SoftSNNService._resolve_max_batch_size``),
        and an explicit value always wins over both.
    max_delay:
        Flush when the oldest waiting request has been queued this long
        (seconds).  This bounds the latency cost a lightly loaded request
        pays for batching.
    idle_grace:
        Flush early when no new request has arrived for this long
        (seconds) while a batch is waiting — the adaptive heuristic for
        closed-loop clients (see the module docstring).  ``None`` defaults
        to ``max_delay / 4``; any value ``>= max_delay`` disables it.
    name:
        Label used in logs and metrics.
    """

    def __init__(
        self,
        run_batch: BatchRunner,
        max_batch_size: Optional[int] = None,
        max_delay: float = 0.005,
        idle_grace: Optional[float] = None,
        name: str = "scheduler",
    ) -> None:
        if max_batch_size is None:
            max_batch_size = DEFAULT_BATCH_SIZE
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if idle_grace is None:
            idle_grace = max_delay / 4.0
        if idle_grace < 0:
            raise ValueError(f"idle_grace must be >= 0, got {idle_grace}")
        self._run_batch = run_batch
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self.idle_grace = float(idle_grace)
        self.name = name
        self.stats = SchedulerStats()
        self._queue: Deque[_Pending] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._last_enqueue = time.monotonic()
        self._worker = threading.Thread(
            target=self._loop, name=f"microbatch-{name}", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    def submit(self, payload: Any) -> "Future[Any]":
        """Enqueue one request; the returned future resolves to its result.

        Parameters
        ----------
        payload:
            Opaque request object handed (inside a list, with its
            co-batched company) to the scheduler's ``run_batch`` callable.

        Returns
        -------
        concurrent.futures.Future
            Resolves to this request's entry of the batch result, or
            raises the batch's exception.

        Raises
        ------
        RuntimeError
            If the scheduler has been closed.
        """
        future: "Future[Any]" = Future()
        with self._wakeup:
            if self._closed:
                raise RuntimeError(f"scheduler {self.name!r} is closed")
            now = time.monotonic()
            self._queue.append(
                _Pending(payload=payload, future=future, enqueued_at=now)
            )
            self._last_enqueue = now
            self.stats.submitted += 1
            depth = len(self._queue)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            self._wakeup.notify()
        return future

    @property
    def queue_depth(self) -> int:
        """Number of requests currently waiting (excludes the running batch)."""
        with self._lock:
            return len(self._queue)

    def stats_snapshot(self) -> SchedulerStats:
        """Consistent copy of the counters, safe to read while serving.

        The live :attr:`stats` object is mutated by the worker thread under
        the scheduler lock; reading its histogram without that lock (as a
        metrics endpoint would) can observe a dict mid-insert.  The
        snapshot copies everything under the lock.
        """
        with self._lock:
            return replace(
                self.stats,
                batch_size_histogram=dict(self.stats.batch_size_histogram),
            )

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting requests, drain the queue, and join the worker.

        Parameters
        ----------
        timeout:
            Seconds to wait for the worker thread to finish draining;
            a warning is logged (and the thread abandoned) on expiry.
        """
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            self._wakeup.notify()
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():  # pragma: no cover - drain stuck in engine
            _LOGGER.warning("scheduler %r worker did not drain in time", self.name)

    def __enter__(self) -> "MicroBatchScheduler":
        """Context-manager entry: the scheduler itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: drain and close the scheduler."""
        self.close()

    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if not self._queue:
                    return  # closed and drained
                # Gather until the batch fills, the oldest request's
                # deadline passes, or the arrival stream goes idle for the
                # grace period; a close flushes whatever is waiting.
                deadline = self._queue[0].enqueued_at + self.max_delay
                grace = self.idle_grace
                reason = None
                while len(self._queue) < self.max_batch_size and not self._closed:
                    now = time.monotonic()
                    if now >= deadline:
                        reason = "deadline"
                        break
                    if grace > 0 and now - self._last_enqueue >= grace:
                        reason = "idle"
                        break
                    timeout = deadline - now
                    if grace > 0:
                        timeout = min(
                            timeout, self._last_enqueue + grace - now
                        )
                    self._wakeup.wait(timeout=max(timeout, 1e-4))
                if reason is None:
                    # The gather loop ended on its own condition: attribute
                    # the flush to what actually triggered it.  A close
                    # drains whatever is queued (even full batches), and a
                    # deadline that expired during the last wait takes
                    # precedence over the queue having filled meanwhile —
                    # the batch would have flushed at that instant
                    # regardless of further arrivals.
                    if self._closed:
                        reason = "close"
                    elif time.monotonic() >= deadline:
                        reason = "deadline"
                    else:
                        reason = "full"
                count = min(len(self._queue), self.max_batch_size)
                batch = [self._queue.popleft() for _ in range(count)]
                if reason == "full":
                    self.stats.flush_full += 1
                elif reason == "deadline":
                    self.stats.flush_deadline += 1
                elif reason == "idle":
                    self.stats.flush_idle += 1
                else:
                    self.stats.flush_close += 1
                self.stats.batch_size_histogram[count] = (
                    self.stats.batch_size_histogram.get(count, 0) + 1
                )
            self._execute(batch)

    def _execute(self, batch: List[_Pending]) -> None:
        """Run one flushed batch outside the lock and resolve its futures."""
        try:
            results = self._run_batch([item.payload for item in batch])
        except Exception as exc:  # noqa: BLE001 - forwarded to every caller
            with self._lock:
                self.stats.failed += len(batch)
            for item in batch:
                item.future.set_exception(exc)
            return
        if len(results) != len(batch):
            error = RuntimeError(
                f"batch runner returned {len(results)} results "
                f"for {len(batch)} requests"
            )
            with self._lock:
                self.stats.failed += len(batch)
            for item in batch:
                item.future.set_exception(error)
            return
        with self._lock:
            self.stats.completed += len(batch)
        for item, result in zip(batch, results):
            item.future.set_result(result)
