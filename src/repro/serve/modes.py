"""Fault-aware serving modes: clean, faulty, protected.

The paper's story is a *live* contrast: the same accelerator delivers full
accuracy when healthy, degrades badly under soft errors, and recovers almost
completely once Bound-and-Protect is switched on.  The serving layer makes
that contrast observable from a single running service — every registered
model can be queried in three modes:

``clean``
    The trained network exactly as deployed; no faults, no mitigation.
``faulty``
    A fault map drawn at a configurable rate (reusing the
    :mod:`repro.faults` model, weight-register bit flips and/or faulty
    neuron operations) is injected into the serving network.  The map is
    drawn from a fixed seed so the served "damaged accelerator" is a
    reproducible object, exactly like a campaign trial.
``protected``
    The same fault injection, but served through SoftSNN's mitigation: BnP
    weight bounding as the crossbar's effective-weight rule plus the neuron
    protection monitor gating faulty-reset bursts
    (:mod:`repro.core.bound_and_protect`).

A :class:`ServingSession` is the executable form of one ``(model, mode)``
pair: the fault-injected network, its batched engine, and the mitigation
hooks.  Serving is **stateless per request**: every request is classified as
if presented to the freshly loaded accelerator (the faulty-reset latch is
cleared between requests, and requests coalesced into one micro-batch are
simulated independently via ``carry_reset_latch=False``), and every request
carries its own Poisson-encoding seed.  Both properties together make the
served prediction a pure function of ``(model, mode, image, seed)`` — the
contract the scheduler-parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.faults.injector import FaultInjectionReport, FaultInjector
from repro.faults.models import ComputeEngineFaultConfig
from repro.snn.engine import BatchedInferenceEngine, BatchResult
from repro.snn.inference import InferenceEngine
from repro.snn.network import DiehlCookNetwork
from repro.snn.training import TrainedModel
from repro.utils.validation import check_probability

__all__ = ["MODE_KINDS", "ServingMode", "ServingSession", "build_session"]

#: The three serving modes, in degraded-vs-mitigated story order.
MODE_KINDS = ("clean", "faulty", "protected")


@dataclass(frozen=True)
class ServingMode:
    """Declarative description of how a model is served.

    Attributes
    ----------
    kind:
        ``"clean"``, ``"faulty"`` or ``"protected"``.
    fault_rate:
        Probability that any potential fault location of the compute engine
        is struck (ignored for ``clean``, which forces it to 0).
    fault_seed:
        Seed of the fault-map draw — the served fault pattern is a
        reproducible object, so restarting the service (or building a
        reference session in a test) recreates the identical damage.
    inject_synapses / inject_neurons:
        Which parts of the compute engine the fault map may strike.
    variant:
        BnP variant used by ``protected`` mode.
    protection_trigger_cycles:
        Consecutive above-threshold cycles that flag a faulty reset (2 in
        the paper).
    build_seed:
        Seed of the network construction RNG.
    """

    kind: str
    fault_rate: float = 0.0
    fault_seed: int = 2022
    inject_synapses: bool = True
    inject_neurons: bool = True
    variant: BnPVariant = BnPVariant.BNP3
    protection_trigger_cycles: int = 2
    build_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MODE_KINDS:
            raise ValueError(
                f"mode kind must be one of {MODE_KINDS}, got {self.kind!r}"
            )
        check_probability(self.fault_rate, "fault_rate")
        if self.kind == "clean" and self.fault_rate != 0.0:
            raise ValueError("clean mode must not carry a fault rate")
        if self.kind != "clean" and self.fault_rate == 0.0:
            raise ValueError(
                f"{self.kind} mode needs a positive fault_rate "
                "(otherwise it serves the clean network)"
            )
        if not isinstance(self.variant, BnPVariant):
            raise TypeError(
                f"variant must be a BnPVariant, got {type(self.variant).__name__}"
            )
        if self.protection_trigger_cycles < 1:
            raise ValueError("protection_trigger_cycles must be at least 1")

    # ------------------------------------------------------------------ #
    @classmethod
    def clean(cls) -> "ServingMode":
        """The unfaulted, unmitigated serving mode."""
        return cls(kind="clean")

    @classmethod
    def faulty(cls, fault_rate: float, fault_seed: int = 2022) -> "ServingMode":
        """Fault injection at *fault_rate* with no mitigation."""
        return cls(kind="faulty", fault_rate=fault_rate, fault_seed=fault_seed)

    @classmethod
    def protected(
        cls,
        fault_rate: float,
        fault_seed: int = 2022,
        variant: BnPVariant = BnPVariant.BNP3,
    ) -> "ServingMode":
        """Fault injection at *fault_rate* served through BnP mitigation."""
        return cls(
            kind="protected",
            fault_rate=fault_rate,
            fault_seed=fault_seed,
            variant=variant,
        )

    @classmethod
    def from_request(
        cls,
        spec: Any,
        default_fault_rate: float = 0.05,
        default_fault_seed: int = 2022,
    ) -> "ServingMode":
        """Build a mode from a request payload (a kind string or a dict).

        Accepted forms::

            "faulty"
            {"kind": "protected", "fault_rate": 0.1, "variant": "bnp1"}

        Missing fault parameters fall back to the service defaults, so a
        client can simply ask for ``"faulty"`` and get the service's
        configured damage level.
        """
        if spec is None:
            spec = "clean"
        if isinstance(spec, ServingMode):
            return spec
        if isinstance(spec, str):
            spec = {"kind": spec}
        if not isinstance(spec, dict):
            raise ValueError(
                f"mode must be a string, dict or ServingMode, got {type(spec).__name__}"
            )
        payload = dict(spec)
        kind = str(payload.pop("kind", "clean")).strip().lower()
        kwargs: Dict[str, Any] = {"kind": kind}
        if kind != "clean":
            kwargs["fault_rate"] = float(
                payload.pop("fault_rate", default_fault_rate)
            )
            kwargs["fault_seed"] = int(payload.pop("fault_seed", default_fault_seed))
        else:
            payload.pop("fault_rate", None)
            payload.pop("fault_seed", None)
        if "variant" in payload:
            variant = payload.pop("variant")
            kwargs["variant"] = (
                variant
                if isinstance(variant, BnPVariant)
                else BnPVariant(str(variant).strip().lower())
            )
        for key in ("inject_synapses", "inject_neurons"):
            if key in payload:
                kwargs[key] = bool(payload.pop(key))
        if "protection_trigger_cycles" in payload:
            kwargs["protection_trigger_cycles"] = int(
                payload.pop("protection_trigger_cycles")
            )
        if "build_seed" in payload:
            kwargs["build_seed"] = int(payload.pop("build_seed"))
        if payload:
            raise ValueError(f"unknown mode fields: {sorted(payload)}")
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    @property
    def cache_key(self) -> Tuple:
        """Hashable identity used by the registry's warm-session LRU."""
        return (
            self.kind,
            self.fault_rate,
            self.fault_seed,
            self.inject_synapses,
            self.inject_neurons,
            self.variant.value,
            self.protection_trigger_cycles,
            self.build_seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly description echoed back in service responses."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind != "clean":
            payload["fault_rate"] = self.fault_rate
            payload["fault_seed"] = self.fault_seed
            payload["inject_synapses"] = self.inject_synapses
            payload["inject_neurons"] = self.inject_neurons
        if self.kind == "protected":
            payload["variant"] = self.variant.value
            payload["protection_trigger_cycles"] = self.protection_trigger_cycles
        return payload

    def fault_config(self) -> Optional[ComputeEngineFaultConfig]:
        """The fault-injection configuration of this mode (``None`` for clean)."""
        if self.kind == "clean":
            return None
        return ComputeEngineFaultConfig(
            fault_rate=self.fault_rate,
            inject_synapses=self.inject_synapses,
            inject_neurons=self.inject_neurons,
        )


@dataclass
class ServingSession:
    """One ``(model, mode)`` pair, ready to classify micro-batches.

    Sessions are built by :func:`build_session`, cached warm by the model
    registry, and driven by exactly one scheduler worker thread — the
    session itself performs no locking.  The underlying network is never
    mutated after construction (the batched engine keeps all per-run state
    in :class:`~repro.snn.engine.BatchedLIFState`), so rebuilding a session
    from the same model and mode always reproduces it exactly.
    """

    model: TrainedModel
    mode: ServingMode
    network: DiehlCookNetwork
    inference: InferenceEngine
    batched: BatchedInferenceEngine
    effective_weights: Optional[object] = None
    protection: Optional[NeuronProtection] = None
    fault_report: Optional[FaultInjectionReport] = None
    _entry_latch: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        # Serving is stateless: every request enters at the freshly loaded
        # accelerator state, so the entry latch is pinned at session build.
        self._entry_latch = np.asarray(
            self.network.neurons.reset_fault_latched, dtype=bool
        ).copy()

    # ------------------------------------------------------------------ #
    @property
    def n_inputs(self) -> int:
        """Flattened input dimension of the served network."""
        return self.network.n_inputs

    def encode(self, image: np.ndarray, seed: int) -> np.ndarray:
        """Poisson-encode one request's image from its own seed.

        Per-request generators (rather than one shared stream) are what
        make the prediction independent of how requests are batched: the
        raster of request *i* is the same whether it is flushed alone or
        coalesced with thirty-one strangers.
        """
        return self.network.encoder.encode(
            np.asarray(image, dtype=np.float64).reshape(-1), rng=int(seed)
        )

    def classify_batch(
        self, images: Sequence[np.ndarray], seeds: Sequence[int]
    ) -> Tuple[np.ndarray, BatchResult]:
        """Classify one micro-batch of independent requests.

        Each ``(image, seed)`` pair is encoded from its own generator, the
        rasters are stacked and advanced together through the batched
        engine in stateless mode, and the spike counts are turned into
        class votes.  Returns ``(predictions, BatchResult)``.
        """
        if len(images) != len(seeds):
            raise ValueError("images and seeds must have the same length")
        if not images:
            raise ValueError("micro-batch must not be empty")
        rasters = np.stack(
            [self.encode(image, seed) for image, seed in zip(images, seeds)]
        )
        result = self.batched.run_encoded(
            rasters,
            effective_weights=self.effective_weights,
            step_monitor=self.protection,
            initial_reset_latch=self._entry_latch,
            carry_reset_latch=False,
        )
        predictions = self.inference.classify_batch(result.spike_counts)
        return predictions, result

    def classify_one(self, image: np.ndarray, seed: int) -> int:
        """Classify a single request (a micro-batch of one)."""
        predictions, _ = self.classify_batch([image], [seed])
        return int(predictions[0])

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly session summary for ``GET /models``."""
        info: Dict[str, Any] = {
            "mode": self.mode.to_dict(),
            "n_neurons": self.network.n_neurons,
        }
        if self.fault_report is not None:
            info["n_synapse_faults"] = self.fault_report.n_synapse_faults
            info["n_neuron_faults"] = self.fault_report.n_neuron_faults
        if self.protection is not None:
            info["protection"] = self.protection.statistics()
        return info


def build_session(model: TrainedModel, mode: ServingMode) -> ServingSession:
    """Materialise the serving network and hooks for ``(model, mode)``.

    Construction is deterministic: the network build and the fault-map draw
    are seeded from the mode, so two sessions built from the same arguments
    serve bit-identical predictions — the property the parity tests and the
    CI smoke check rely on.
    """
    network = model.build_network(rng=mode.build_seed)
    fault_report: Optional[FaultInjectionReport] = None
    config = mode.fault_config()
    if config is not None:
        injector = FaultInjector(network)
        fault_report = injector.inject(config, rng=mode.fault_seed)

    effective_weights = None
    protection: Optional[NeuronProtection] = None
    if mode.kind == "protected":
        bounding = WeightBounding.for_variant(
            mode.variant,
            clean_max_weight=model.clean_max_weight,
            most_probable_weight=model.clean_most_probable_weight,
        )
        effective_weights = bounding.as_weight_rule()
        protection = NeuronProtection(trigger_cycles=mode.protection_trigger_cycles)

    return ServingSession(
        model=model,
        mode=mode,
        network=network,
        inference=InferenceEngine(network, model.neuron_labels),
        batched=BatchedInferenceEngine(network),
        effective_weights=effective_weights,
        protection=protection,
        fault_report=fault_report,
    )
