"""The online classifier service: registry + schedulers + HTTP front end.

:class:`SoftSNNService` is the programmatic service object: it resolves a
request to a registered model, materialises a warm
:class:`~repro.serve.modes.ServingSession` for the requested fault mode, and
pushes every sample through that session's
:class:`~repro.serve.scheduler.MicroBatchScheduler` (one scheduler per warm
``(model, mode)`` pair, created lazily).  The HTTP layer on top is pure
stdlib (:class:`http.server.ThreadingHTTPServer`):

* ``POST /classify`` — classify one or many images, in any mode;
* ``GET  /models``   — registry listing with warm-cache state;
* ``GET  /healthz``  — liveness probe;
* ``GET  /metrics``  — request counts, batch-size histogram, latency
  percentiles, live queue depths.

:class:`ServiceClient` speaks that HTTP API over :mod:`urllib`;
:class:`InProcessClient` exposes the same interface directly on a service
object so tests and the load generator can exercise the scheduler without
socket overhead.

Requests are deterministic: each sample is encoded from its own seed
(client-provided, or derived from a service counter), so a served
prediction is reproducible as ``(model, mode, image, seed)`` regardless of
how the scheduler happened to batch it — see :mod:`repro.serve.modes`.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.obs import metrics as _obs
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace import span
from repro.serve.modes import ServingMode, ServingSession
from repro.serve.registry import ModelNotFoundError, ModelRegistry, RegistryError
from repro.serve.scheduler import MicroBatchScheduler
from repro.snn.kernels import autotune_batch_size
from repro.snn.training import TrainedModel
from repro.utils.logging import get_logger
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "ServiceConfig",
    "ClassifyResult",
    "SoftSNNService",
    "ServiceServer",
    "ServiceClient",
    "InProcessClient",
]

_LOGGER = get_logger("serve.service")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance.

    ``max_delay_ms`` is the micro-batching latency budget: a request waits
    at most this long for co-batched company before its batch is flushed.
    ``default_fault_rate`` / ``default_fault_seed`` parameterise ``faulty``
    and ``protected`` requests that do not spell out their own scenario.
    ``max_batch_size=None`` (default) autotunes the micro-batch ceiling per
    served model geometry through
    :func:`repro.snn.kernels.autotune_batch_size`; an explicit value always
    wins.
    """

    models_dir: Union[str, Path] = "models"
    max_batch_size: Optional[int] = None
    max_delay_ms: float = 5.0
    idle_grace_ms: Optional[float] = None
    default_mode: str = "clean"
    default_fault_rate: float = 0.05
    default_fault_seed: int = 2022
    max_warm_models: int = 4
    max_warm_sessions: int = 8
    latency_window: int = 4096
    request_seed_root: int = 2022

    def __post_init__(self) -> None:
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if self.latency_window < 1:
            raise ValueError("latency_window must be at least 1")


@dataclass
class ClassifyResult:
    """Outcome of one classify call (possibly covering several samples)."""

    model: str
    mode: Dict[str, Any]
    predictions: List[int]
    seeds: List[int]
    latencies_ms: List[float]

    def to_dict(self) -> Dict[str, Any]:
        """The JSON body ``POST /classify`` returns."""
        return {
            "model": self.model,
            "mode": self.mode,
            "predictions": list(self.predictions),
            "seeds": list(self.seeds),
            "latencies_ms": [round(value, 3) for value in self.latencies_ms],
        }


class _ServiceMetrics:
    """Thread-safe request counters and a bounded latency reservoir.

    Counters are mirrored into the shared observability registry
    (:mod:`repro.obs.metrics`) so ``GET /metrics?format=prometheus`` can
    expose them alongside the rest of the system's telemetry; the JSON
    ``/metrics`` body keeps reading the authoritative in-object state, so
    its keys and values are unchanged from earlier releases.
    """

    def __init__(
        self, window: int, registry: Optional[_obs.MetricsRegistry] = None
    ) -> None:
        self._lock = threading.Lock()
        self._window = int(window)
        self._latencies: List[float] = []
        self.requests_total = 0
        self.errors_total = 0
        self.requests_by_mode: Dict[str, int] = {}
        obs_registry = registry if registry is not None else _obs.get_registry()
        self.obs_registry = obs_registry
        self._obs_requests = obs_registry.counter(
            "softsnn_serve_requests_total",
            "Classified samples, by serving mode.",
            labels=("mode",),
        )
        self._obs_errors = obs_registry.counter(
            "softsnn_serve_errors_total", "Failed classify requests."
        )
        self._obs_latency = obs_registry.histogram(
            "softsnn_serve_latency_ms",
            "Per-sample classify latency in milliseconds.",
            buckets=_obs.log_buckets(0.01, 10000.0, 4),
        )

    def record(self, mode_kind: str, latencies_ms: Sequence[float]) -> None:
        with self._lock:
            self.requests_total += len(latencies_ms)
            self.requests_by_mode[mode_kind] = self.requests_by_mode.get(
                mode_kind, 0
            ) + len(latencies_ms)
            self._latencies.extend(latencies_ms)
            if len(self._latencies) > self._window:
                del self._latencies[: len(self._latencies) - self._window]
        if _obs.enabled():
            self._obs_requests.labels(mode=mode_kind).inc(len(latencies_ms))
            child = self._obs_latency.labels()
            for value in latencies_ms:
                child.observe(value)

    def record_error(self) -> None:
        with self._lock:
            self.errors_total += 1
        if _obs.enabled():
            self._obs_errors.inc()

    def latency_summary(self) -> Dict[str, float]:
        with self._lock:
            window = list(self._latencies)
        if not window:
            return {
                "count": 0,
                "mean_ms": 0.0,
                "p50_ms": 0.0,
                "p90_ms": 0.0,
                "p99_ms": 0.0,
                "max_ms": 0.0,
                "window_size": self._window,
                "samples": 0,
            }
        # np.percentile matches the load generator's report, so /metrics
        # and perf_serving.json percentiles are directly comparable.
        values = np.asarray(window, dtype=np.float64)
        return {
            "count": len(window),
            "mean_ms": round(float(values.mean()), 3),
            "p50_ms": round(float(np.percentile(values, 50)), 3),
            "p90_ms": round(float(np.percentile(values, 90)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3),
            "max_ms": round(float(values.max()), 3),
            "window_size": self._window,
            "samples": len(window),
        }


class SoftSNNService:
    """Serve registered SoftSNN models through adaptive micro-batching.

    Parameters
    ----------
    config:
        Service tunables; ``config.models_dir`` is scanned for snapshots.
    registry:
        Optional pre-built registry (the config's directory settings are
        ignored when given) — used by tests to share a registry.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[ModelRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.registry = (
            registry
            if registry is not None
            else ModelRegistry(
                self.config.models_dir,
                max_warm_models=self.config.max_warm_models,
                max_warm_sessions=self.config.max_warm_sessions,
            )
        )
        self.metrics = _ServiceMetrics(self.config.latency_window)
        self._pipelines: "OrderedDict[Tuple[str, Tuple], Tuple[ServingSession, MicroBatchScheduler]]" = (
            OrderedDict()
        )
        self._pipeline_lock = threading.Lock()
        self._seed_lock = threading.Lock()
        self._seed_factory = SeedSequenceFactory(
            root_seed=self.config.request_seed_root
        )
        self._seed_counter = 0
        self._started_at = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------------ #
    # model management
    # ------------------------------------------------------------------ #
    def register_model(
        self, model: TrainedModel, name: str, workload: Optional[str] = None
    ) -> Dict[str, Any]:
        """Snapshot *model* into the registry and return its entry."""
        return self.registry.register(model, name, workload=workload).to_dict()

    def resolve_mode(self, mode: Any) -> ServingMode:
        """Normalise a request's mode spec against the service defaults."""
        if mode is None:
            mode = self.config.default_mode
        return ServingMode.from_request(
            mode,
            default_fault_rate=self.config.default_fault_rate,
            default_fault_seed=self.config.default_fault_seed,
        )

    def _resolve_max_batch_size(self, session: ServingSession) -> int:
        """Micro-batch ceiling for one session: explicit knob, else autotuned.

        An explicit ``ServiceConfig.max_batch_size`` always wins; with the
        ``None`` default the ceiling comes from
        :func:`repro.snn.kernels.autotune_batch_size` for the served
        model's geometry (cached in-process, so each geometry probes once).
        Batch composition never changes predictions — every request is
        classified from its own seed — so the timed choice is a pure
        throughput knob.
        """
        if self.config.max_batch_size is not None:
            return self.config.max_batch_size
        return autotune_batch_size(
            session.network.n_neurons, session.network.n_inputs
        )

    def _pipeline(
        self, name: str, mode: ServingMode
    ) -> Tuple[ServingSession, MicroBatchScheduler]:
        session = self.registry.session(name, mode)
        key = (name, mode.cache_key)
        retired: List[MicroBatchScheduler] = []
        try:
            with self._pipeline_lock:
                if self._closed:
                    raise RuntimeError("service is closed")
                cached = self._pipelines.get(key)
                if cached is not None:
                    cached_session, scheduler = cached
                    if cached_session is session:
                        self._pipelines.move_to_end(key)
                        return session, scheduler
                    # The registry rebuilt the session (model re-registered
                    # or cache-evicted): the old scheduler's run_batch is
                    # bound to the stale session, so retire and replace it.
                    del self._pipelines[key]
                    retired.append(scheduler)

                def run_batch(
                    payloads: List[Tuple[np.ndarray, int]],
                    _session: ServingSession = session,
                ) -> List[int]:
                    predictions, _ = _session.classify_batch(
                        [payload[0] for payload in payloads],
                        [payload[1] for payload in payloads],
                    )
                    return [int(value) for value in predictions]

                scheduler = MicroBatchScheduler(
                    run_batch,
                    max_batch_size=self._resolve_max_batch_size(session),
                    max_delay=self.config.max_delay_ms / 1000.0,
                    idle_grace=(
                        None
                        if self.config.idle_grace_ms is None
                        else self.config.idle_grace_ms / 1000.0
                    ),
                    name=f"{name}:{mode.kind}",
                )
                self._pipelines[key] = scheduler_entry = (session, scheduler)
                # Bound the pipeline cache like the registry's session LRU,
                # so (model, mode) pairs served once long ago do not pin
                # their network + engine in memory forever.
                while len(self._pipelines) > self.config.max_warm_sessions:
                    _, (_, evicted) = self._pipelines.popitem(last=False)
                    if evicted is not scheduler:
                        retired.append(evicted)
            return scheduler_entry
        finally:
            # Draining a retired scheduler can take as long as its queued
            # batches; do it outside the lock so other models keep serving.
            for old in retired:
                old.close()

    def _derive_seeds(self, name: str, count: int) -> List[int]:
        with self._seed_lock:
            start = self._seed_counter
            self._seed_counter += count
        return [
            self._seed_factory.seed_for(f"serve/{name}/request/{start + offset}")
            for offset in range(count)
        ]

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def classify(
        self,
        images: Any,
        model: Optional[str] = None,
        workload: Optional[str] = None,
        n_neurons: Optional[int] = None,
        mode: Any = None,
        seeds: Optional[Sequence[int]] = None,
        timeout: float = 60.0,
    ) -> ClassifyResult:
        """Classify one or many images through the micro-batching path.

        *images* may be a single image (1-D of ``n_inputs`` pixels or 2-D
        ``height x width``) or a batch (list/array of such images).  Each
        sample becomes one independent scheduler request, so a multi-image
        call simply pre-fills the micro-batch.  Per-sample *seeds* make the
        predictions reproducible; omitted seeds are derived from the
        service's request counter.
        """
        try:
            entry = self.registry.resolve(
                name=model, workload=workload, n_neurons=n_neurons
            )
        except ModelNotFoundError:
            # Maybe the snapshot was dropped into the directory after the
            # last scan — re-discover once before giving up.
            self.registry.refresh()
            entry = self.registry.resolve(
                name=model, workload=workload, n_neurons=n_neurons
            )
        serving_mode = self.resolve_mode(mode)
        session, scheduler = self._pipeline(entry.name, serving_mode)
        flats = self._as_flat_images(images, session.n_inputs)
        if seeds is None:
            request_seeds = self._derive_seeds(entry.name, len(flats))
        else:
            request_seeds = [int(seed) for seed in seeds]
            if len(request_seeds) != len(flats):
                raise ValueError(
                    f"got {len(request_seeds)} seeds for {len(flats)} images"
                )

        submitted = time.monotonic()
        try:
            with span(
                "serve.classify",
                model=entry.name,
                mode=serving_mode.kind,
                n_images=len(flats),
            ):
                futures = [
                    scheduler.submit((flat, seed))
                    for flat, seed in zip(flats, request_seeds)
                ]
                predictions: List[int] = []
                latencies: List[float] = []
                for future in futures:
                    predictions.append(int(future.result(timeout=timeout)))
                    latencies.append(1000.0 * (time.monotonic() - submitted))
        except Exception:
            self.metrics.record_error()
            raise
        self.metrics.record(serving_mode.kind, latencies)
        return ClassifyResult(
            model=entry.name,
            mode=serving_mode.to_dict(),
            predictions=predictions,
            seeds=request_seeds,
            latencies_ms=latencies,
        )

    @staticmethod
    def _as_flat_images(images: Any, n_inputs: int) -> List[np.ndarray]:
        array = np.asarray(images, dtype=np.float64)
        if array.ndim == 1:
            array = array[np.newaxis, :]
        elif array.ndim == 2 and array.shape != (1, n_inputs):
            # A single height x width image, not a batch of flat rows.
            if array.size == n_inputs:
                array = array.reshape(1, n_inputs)
        if array.ndim == 3:
            array = array.reshape(array.shape[0], -1)
        if array.ndim != 2 or array.shape[1] != n_inputs:
            raise ValueError(
                f"images must flatten to (n, {n_inputs}), got input of shape "
                f"{np.asarray(images).shape}"
            )
        return [row for row in array]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def models(self) -> List[Dict[str, Any]]:
        """Registry listing (the body of ``GET /models``).

        Re-scans the snapshot directory first, so models dropped in (or
        atomically re-trained in place) while the service runs become
        visible — and their stale warm caches invalidated — without a
        restart.
        """
        self.registry.refresh()
        return self.registry.describe()

    def health(self) -> Dict[str, Any]:
        """Liveness summary (the body of ``GET /healthz``)."""
        return {
            "status": "ok",
            "models": self.registry.names(),
            "uptime_seconds": round(time.monotonic() - self._started_at, 1),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Counters, latency percentiles, batching behaviour, queue depths."""
        with self._pipeline_lock:
            schedulers = [scheduler for _, scheduler in self._pipelines.values()]
        scheduler_stats = {
            scheduler.name: scheduler.stats_snapshot().to_dict()
            for scheduler in schedulers
        }
        queue_depths = {
            scheduler.name: scheduler.queue_depth for scheduler in schedulers
        }
        merged_histogram: Dict[str, int] = {}
        occupancy_total = 0
        batch_total = 0
        for stats in scheduler_stats.values():
            for size, count in stats["batch_size_histogram"].items():
                merged_histogram[size] = merged_histogram.get(size, 0) + count
                occupancy_total += int(size) * count
                batch_total += count
        return {
            "requests_total": self.metrics.requests_total,
            "requests_by_mode": dict(self.metrics.requests_by_mode),
            "errors_total": self.metrics.errors_total,
            "latency": self.metrics.latency_summary(),
            "batch_size_histogram": {
                size: merged_histogram[size]
                for size in sorted(merged_histogram, key=int)
            },
            "mean_batch_size": round(
                occupancy_total / batch_total if batch_total else 0.0, 3
            ),
            "queue_depth": queue_depths,
            "schedulers": scheduler_stats,
            "registry": {
                "models": len(self.registry),
                "warm_models": self.registry.warm_model_count,
                "warm_sessions": self.registry.warm_session_count,
            },
        }

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition (``GET /metrics?format=prometheus``).

        Request counters and the latency histogram stream into the shared
        observability registry as requests are served; scheduler, registry,
        and uptime figures are synchronised into it at scrape time (their
        authoritative state lives in the scheduler objects), then the whole
        registry — including kernel and campaign metrics recorded by this
        process — is rendered in text format 0.0.4.
        """
        registry = self.metrics.obs_registry
        batches = registry.counter(
            "softsnn_serve_batches_total",
            "Micro-batches flushed, by scheduler and flush reason.",
            labels=("scheduler", "flush"),
        )
        queue_depth = registry.gauge(
            "softsnn_serve_queue_depth",
            "Requests currently queued, per scheduler.",
            labels=("scheduler",),
        )
        registry_gauge = registry.gauge(
            "softsnn_serve_registry_entries",
            "Model registry occupancy, by cache tier.",
            labels=("tier",),
        )
        uptime = registry.gauge(
            "softsnn_serve_uptime_seconds", "Seconds since service start."
        )
        with self._pipeline_lock:
            schedulers = [scheduler for _, scheduler in self._pipelines.values()]
        for scheduler in schedulers:
            stats = scheduler.stats_snapshot()
            for reason, count in (
                ("full", stats.flush_full),
                ("deadline", stats.flush_deadline),
                ("idle", stats.flush_idle),
                ("close", stats.flush_close),
            ):
                batches.labels(scheduler=scheduler.name, flush=reason).set_to(count)
            queue_depth.labels(scheduler=scheduler.name).set(scheduler.queue_depth)
        registry_gauge.labels(tier="models").set(len(self.registry))
        registry_gauge.labels(tier="warm_models").set(self.registry.warm_model_count)
        registry_gauge.labels(tier="warm_sessions").set(
            self.registry.warm_session_count
        )
        uptime.set(round(time.monotonic() - self._started_at, 3))
        return registry.render_prometheus()

    def close(self) -> None:
        """Drain and stop every scheduler; further classifies are refused."""
        with self._pipeline_lock:
            self._closed = True
            schedulers = [scheduler for _, scheduler in self._pipelines.values()]
            self._pipelines.clear()
        for scheduler in schedulers:
            scheduler.close()

    def __enter__(self) -> "SoftSNNService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
class _RequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the service object."""

    server: "_ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        if parts.path == "/healthz":
            self._send_json(200, service.health())
        elif parts.path == "/models":
            self._send_json(200, {"models": service.models()})
        elif parts.path == "/metrics":
            formats = query.get("format", ["json"])
            if formats[-1] == "prometheus":
                self._send_text(
                    200, service.metrics_prometheus(), PROMETHEUS_CONTENT_TYPE
                )
            elif formats[-1] == "json":
                self._send_json(200, service.metrics_snapshot())
            else:
                self._send_json(
                    400, {"error": f"unknown metrics format: {formats[-1]}"}
                )
        else:
            self._send_json(404, {"error": f"no such endpoint: {parts.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/classify":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            images = payload.get("images", payload.get("image"))
            if images is None:
                raise ValueError("request must carry 'images' (or 'image')")
            seeds = payload.get("seeds")
            if seeds is None and "seed" in payload:
                seeds = [payload["seed"]]
            result = service.classify(
                images,
                model=payload.get("model"),
                workload=payload.get("workload"),
                n_neurons=payload.get("n_neurons"),
                mode=payload.get("mode"),
                seeds=seeds,
            )
        except ModelNotFoundError as exc:
            self._send_json(404, {"error": str(exc)})
        except (ValueError, TypeError, RegistryError) as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - boundary of the HTTP layer
            _LOGGER.exception("unhandled error in /classify")
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, result.to_dict())

    # ------------------------------------------------------------------ #
    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        encoded = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        encoded = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOGGER.debug("%s - %s", self.address_string(), format % args)


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: SoftSNNService) -> None:
        super().__init__(address, _RequestHandler)
        self.service = service


class ServiceServer:
    """Run a :class:`SoftSNNService` behind the stdlib HTTP server.

    ``port=0`` binds an ephemeral port; the resolved address is available
    as :attr:`url` once :meth:`start` returns, which is what the CI smoke
    check and the tests use to avoid port collisions.
    """

    def __init__(
        self,
        service: SoftSNNService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._httpd = _ServiceHTTPServer((host, port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """Bound host name."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound (possibly ephemeral) port."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Start serving on a daemon thread and return self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="softsnn-serve-http", daemon=True
        )
        self._thread.start()
        _LOGGER.info("serving on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop the HTTP loop and drain the service's schedulers."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def serve_forever(self) -> None:
        """Blocking variant used by the CLI foreground mode."""
        _LOGGER.info("serving on %s", self.url)
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self.service.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# ---------------------------------------------------------------------- #
# clients
# ---------------------------------------------------------------------- #
class ServiceClient:
    """Minimal HTTP client for the serving API (stdlib ``urllib`` only)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def _request(
        self, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error detail
                detail = ""
            raise RuntimeError(
                f"{url} failed with HTTP {exc.code}: {detail or exc.reason}"
            ) from exc

    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("/healthz")

    def models(self) -> List[Dict[str, Any]]:
        """``GET /models``."""
        return self._request("/models")["models"]

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics?format=prometheus`` — the raw exposition text."""
        url = self.base_url + "/metrics?format=prometheus"
        request = urllib.request.Request(url, headers={"Accept": "text/plain"})
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def classify(
        self,
        images: Any,
        model: Optional[str] = None,
        workload: Optional[str] = None,
        mode: Any = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """``POST /classify`` for one or many images."""
        if isinstance(images, np.ndarray):
            images = images.tolist()
        payload: Dict[str, Any] = {"images": images}
        if model is not None:
            payload["model"] = model
        if workload is not None:
            payload["workload"] = workload
        if mode is not None:
            payload["mode"] = mode.to_dict() if isinstance(mode, ServingMode) else mode
        if seeds is not None:
            payload["seeds"] = [int(seed) for seed in seeds]
        return self._request("/classify", payload)


class InProcessClient:
    """The :class:`ServiceClient` interface bound directly to a service.

    Bypasses HTTP entirely — requests still flow through the registry,
    sessions and micro-batch schedulers, so the load generator and the perf
    bench measure the serving data path without socket noise.
    """

    def __init__(self, service: SoftSNNService) -> None:
        self.service = service

    def healthz(self) -> Dict[str, Any]:
        """See :meth:`ServiceClient.healthz`."""
        return self.service.health()

    def models(self) -> List[Dict[str, Any]]:
        """See :meth:`ServiceClient.models`."""
        return self.service.models()

    def metrics(self) -> Dict[str, Any]:
        """See :meth:`ServiceClient.metrics`."""
        return self.service.metrics_snapshot()

    def metrics_text(self) -> str:
        """See :meth:`ServiceClient.metrics_text`."""
        return self.service.metrics_prometheus()

    def classify(
        self,
        images: Any,
        model: Optional[str] = None,
        workload: Optional[str] = None,
        mode: Any = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """See :meth:`ServiceClient.classify`."""
        return self.service.classify(
            images, model=model, workload=workload, mode=mode, seeds=seeds
        ).to_dict()
