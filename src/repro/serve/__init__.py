"""Online inference serving: registry, micro-batching, fault-aware modes.

This package turns the offline reproduction into a running classifier
service (see ``README.md`` → *Serving quickstart*):

* :mod:`repro.serve.registry` — snapshot discovery with checksum
  validation and LRU-warm models/sessions;
* :mod:`repro.serve.modes` — ``clean`` / ``faulty`` / ``protected``
  serving modes built from the paper's fault and mitigation machinery;
* :mod:`repro.serve.scheduler` — the adaptive micro-batching scheduler
  (max-batch-size / max-latency-deadline flushing, per-request futures);
* :mod:`repro.serve.service` — the service object, stdlib HTTP front end
  (``POST /classify``, ``GET /models`` / ``/healthz`` / ``/metrics``) and
  the HTTP / in-process clients;
* :mod:`repro.serve.loadgen` — closed-loop multi-threaded load
  generation for the serving benchmarks.

The CLI lives in :mod:`repro.server` (installed as ``softsnn-serve``).
"""

from repro.serve.loadgen import LoadReport, run_closed_loop
from repro.serve.modes import MODE_KINDS, ServingMode, ServingSession, build_session
from repro.serve.registry import (
    ModelNotFoundError,
    ModelRegistry,
    RegistryError,
    SnapshotEntry,
    SnapshotIntegrityError,
)
from repro.serve.scheduler import MicroBatchScheduler, SchedulerStats
from repro.serve.service import (
    ClassifyResult,
    InProcessClient,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SoftSNNService,
)

__all__ = [
    "MODE_KINDS",
    "ClassifyResult",
    "InProcessClient",
    "LoadReport",
    "MicroBatchScheduler",
    "ModelNotFoundError",
    "ModelRegistry",
    "RegistryError",
    "SchedulerStats",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "ServingMode",
    "ServingSession",
    "SnapshotEntry",
    "SnapshotIntegrityError",
    "SoftSNNService",
    "build_session",
    "run_closed_loop",
]
