"""SoftSNN reproduction: low-cost fault tolerance for SNN accelerators under soft errors.

This package is a from-scratch reproduction of *"SoftSNN: Low-Cost Fault
Tolerance for Spiking Neural Network Accelerators under Soft Errors"*
(Putra, Hanif, Shafique — DAC 2022).  It contains:

* ``repro.snn`` — a pure-NumPy spiking-neural-network simulator (LIF
  neurons, STDP, lateral inhibition, Poisson coding) standing in for the
  paper's BindsNET/GPU setup;
* ``repro.data`` — synthetic MNIST / Fashion-MNIST substitutes (offline
  environment);
* ``repro.faults`` — the paper's transient-fault model for the compute
  engine (weight-register bit flips and faulty neuron operations);
* ``repro.hardware`` — an analytical area / latency / energy model of the
  256x256 compute engine and its Bound-and-Protect enhancements;
* ``repro.core`` — the SoftSNN methodology itself: fault-tolerance
  analysis, the BnP1/BnP2/BnP3 weight bounding, neuron protection, and the
  re-execution (TMR) baseline;
* ``repro.eval`` — the experiment harness that regenerates every figure of
  the paper's evaluation;
* ``repro.serve`` — the online serving layer: model registry, adaptive
  micro-batching scheduler, fault-aware serving modes and the stdlib HTTP
  service (CLI: ``softsnn-serve`` in ``repro.server``).
"""

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.core.fault_analysis import FaultToleranceAnalyzer
from repro.core.methodology import SoftSNNMethodology
from repro.core.mitigation import (
    BnPTechnique,
    MitigationTechnique,
    NoMitigation,
    ReExecutionTMR,
    build_technique,
)
from repro.data.datasets import Dataset, load_workload, train_test_split
from repro.data.synthetic_fashion import SyntheticFashionMNIST
from repro.data.synthetic_mnist import SyntheticMNIST
from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.injector import FaultInjector
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import MitigationKind
from repro.snn.inference import InferenceEngine, InferenceResult
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.snn.training import (
    STDPTrainer,
    TrainedModel,
    TrainingConfig,
    TrainingRunner,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorModel",
    "BnPTechnique",
    "BnPVariant",
    "ComputeEngineConfig",
    "ComputeEngineFaultConfig",
    "Dataset",
    "DiehlCookNetwork",
    "FaultInjector",
    "FaultMap",
    "FaultMapGenerator",
    "FaultToleranceAnalyzer",
    "InferenceEngine",
    "InferenceResult",
    "MitigationKind",
    "MitigationTechnique",
    "NetworkConfig",
    "NeuronFaultType",
    "NeuronProtection",
    "NoMitigation",
    "ReExecutionTMR",
    "STDPTrainer",
    "SoftSNNMethodology",
    "SyntheticFashionMNIST",
    "SyntheticMNIST",
    "TrainedModel",
    "TrainingConfig",
    "TrainingRunner",
    "WeightBounding",
    "build_technique",
    "load_workload",
    "train_test_split",
    "__version__",
]
