"""Pair-based spike-timing-dependent plasticity (STDP).

The paper's SNN learns without labels through STDP (Fig. 1a).  This module
implements the standard trace-based pair rule used by the Diehl & Cook
network the paper builds on:

* every input (pre-synaptic) channel keeps a *pre trace* that jumps to 1 on
  a spike and decays exponentially,
* every excitatory (post-synaptic) neuron keeps a *post trace* with the same
  behaviour,
* when a post-synaptic neuron spikes, its incoming weights are potentiated
  proportionally to the pre traces (``learning_rate_post``),
* when a pre-synaptic input spikes, the weights out of it are depressed
  proportionally to the post traces (``learning_rate_pre``),
* weights are clipped to ``[w_min, w_max]`` — which is what creates the
  bounded "safe range" of clean weights that SoftSNN's weight bounding
  relies on (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["STDPConfig", "STDPRule"]


@dataclass(frozen=True)
class STDPConfig:
    """Hyper-parameters of the pair-based STDP rule.

    Attributes
    ----------
    learning_rate_pre:
        Depression magnitude applied on pre-synaptic spikes.
    learning_rate_post:
        Potentiation magnitude applied on post-synaptic spikes.
    tau_pre, tau_post:
        Decay time constants (timesteps) of the pre/post traces.
    w_min, w_max:
        Hard weight bounds enforced after every update.  ``w_max`` is the
        upper end of the clean network's safe weight range.
    """

    learning_rate_pre: float = 0.0015
    learning_rate_post: float = 0.01
    tau_pre: float = 20.0
    tau_post: float = 20.0
    w_min: float = 0.0
    w_max: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.learning_rate_pre, "learning_rate_pre")
        check_non_negative(self.learning_rate_post, "learning_rate_post")
        check_positive(self.tau_pre, "tau_pre")
        check_positive(self.tau_post, "tau_post")
        if self.w_min < 0:
            raise ValueError(f"w_min must be non-negative, got {self.w_min}")
        if self.w_max <= self.w_min:
            raise ValueError(
                f"w_max ({self.w_max}) must be greater than w_min ({self.w_min})"
            )

    @property
    def pre_decay(self) -> float:
        """Per-timestep decay factor of the pre-synaptic traces."""
        return float(np.exp(-1.0 / self.tau_pre))

    @property
    def post_decay(self) -> float:
        """Per-timestep decay factor of the post-synaptic traces."""
        return float(np.exp(-1.0 / self.tau_post))


class STDPRule:
    """Stateful pair-based STDP updater for one input→excitatory projection.

    Parameters
    ----------
    n_inputs:
        Number of pre-synaptic channels.
    n_neurons:
        Number of post-synaptic (excitatory) neurons.
    config:
        Rule hyper-parameters.
    """

    def __init__(
        self, n_inputs: int, n_neurons: int, config: STDPConfig = None
    ) -> None:
        if n_inputs <= 0 or n_neurons <= 0:
            raise ValueError("n_inputs and n_neurons must be positive")
        self.n_inputs = int(n_inputs)
        self.n_neurons = int(n_neurons)
        self.config = config if config is not None else STDPConfig()
        self.pre_trace = np.zeros(self.n_inputs, dtype=np.float64)
        self.post_trace = np.zeros(self.n_neurons, dtype=np.float64)

    # ------------------------------------------------------------------ #
    def reset_traces(self) -> None:
        """Clear the synaptic traces (between input presentations)."""
        self.pre_trace.fill(0.0)
        self.post_trace.fill(0.0)

    def step(
        self,
        weights: np.ndarray,
        pre_spikes: np.ndarray,
        post_spikes: np.ndarray,
    ) -> np.ndarray:
        """Apply one timestep of STDP and return the updated weight matrix.

        Parameters
        ----------
        weights:
            Current weight matrix of shape ``(n_inputs, n_neurons)``.
        pre_spikes:
            Boolean input-spike vector of length ``n_inputs`` for this step.
        post_spikes:
            Boolean excitatory-spike vector of length ``n_neurons``.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_inputs, self.n_neurons):
            raise ValueError(
                f"weights must have shape ({self.n_inputs}, {self.n_neurons}), "
                f"got {weights.shape}"
            )
        pre_spikes = np.asarray(pre_spikes, dtype=bool)
        post_spikes = np.asarray(post_spikes, dtype=bool)
        if pre_spikes.shape != (self.n_inputs,):
            raise ValueError(
                f"pre_spikes must have shape ({self.n_inputs},), got {pre_spikes.shape}"
            )
        if post_spikes.shape != (self.n_neurons,):
            raise ValueError(
                f"post_spikes must have shape ({self.n_neurons},), "
                f"got {post_spikes.shape}"
            )
        config = self.config

        # Decay the traces, then register this step's spikes.
        self.pre_trace *= config.pre_decay
        self.post_trace *= config.post_decay
        self.pre_trace[pre_spikes] = 1.0
        self.post_trace[post_spikes] = 1.0

        updated = weights
        # Potentiation: on each post spike, strengthen synapses from recently
        # active inputs (outer product restricted to spiking columns).
        if post_spikes.any():
            potentiation = config.learning_rate_post * np.outer(
                self.pre_trace, post_spikes.astype(np.float64)
            )
            updated = updated + potentiation
        # Depression: on each pre spike, weaken synapses toward recently
        # active neurons.
        if pre_spikes.any():
            depression = config.learning_rate_pre * np.outer(
                pre_spikes.astype(np.float64), self.post_trace
            )
            updated = updated - depression

        return np.clip(updated, config.w_min, config.w_max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"STDPRule(n_inputs={self.n_inputs}, n_neurons={self.n_neurons}, "
            f"w_max={self.config.w_max})"
        )
