"""Fused compute kernels shared by every engine in the reproduction.

Before this module existed, the three hot engines — batched inference
(:class:`repro.snn.engine.BatchedInferenceEngine`), map-parallel fault
sweeps (:class:`repro.snn.engine.MapParallelEngine`) and vectorized STDP
training (:class:`repro.snn.train_engine.VectorizedTrainingEngine`) — each
carried a private copy of the same two primitives: the exact integer
register-code GEMM that accumulates input currents, and the elementwise LIF
timestep advance.  This module owns those primitives (plus the
Bound-and-Protect bounding-correction decomposition) so the next perf tier
is bought once, not three times.

The three primitives
--------------------
``register_gemm`` / ``exact_gemm_dtype`` / ``exact_scale``
    Stored weights are ``code * scale`` with integer codes, so crossbar
    current accumulation factorises as ``(spikes @ codes) * scale``.  The
    inner matmul only ever adds integers bounded by
    ``n_inputs * max_code``; every summation order computes such sums
    exactly, so the result is bitwise identical for any operand shape,
    BLAS kernel and backend.  When the bound fits the 24-bit float32
    mantissa the (much faster) SGEMM is exact too —
    :func:`exact_gemm_dtype` is that capability probe, decided **once** per
    register geometry and cached, instead of re-evaluated per call in each
    engine.

``lif_advance``
    The in-place LIF timestep advance over ``(rows, batch, neurons)``
    state: leak, integrate, clamp, threshold comparator, spike gating,
    reset + refractory entry, faulty-reset latching, lateral inhibition,
    latched-membrane pinning and (optionally) the neuron-protection
    trigger.  All scratch lives in a caller-owned :class:`KernelWorkspace`
    allocated once per run and reused across timesteps and chunks — the
    hot loop performs no per-timestep array allocation.  Every statement is
    a bitwise-identical reformulation of the sequential
    :meth:`repro.snn.neuron.LIFNeuronGroup.step` expressions (IEEE
    elementwise operations are independent of broadcast shape;
    ``copyto(..., where=...)`` is ``np.where`` with an explicit
    destination; the integer counter and refractory updates are exact).
    State arrays are mutated strictly in place — never swapped — so live
    step hooks (e.g. :class:`repro.core.bound_and_protect.NeuronProtection`)
    observe and mutate the same arrays the kernel advances.

``plan_bounding_correction`` / ``bounding_correction_terms`` /
``apply_bounding_correction``
    The Bound-and-Protect bounded current splits exactly as
    ``(base - masked) * scale + substitute * hits``: ``masked`` and
    ``hits`` only involve the (usually few) out-of-range synapses, so rows
    sharing a base GEMM share everything but two small correction GEMMs.
    All three terms are exact integer sums, so the decomposition is
    bitwise identical to the per-map
    :class:`repro.snn.synapse._BoundedCurrentOperator`.

What deliberately stays outside
-------------------------------
The pairwise-STDP learning loop interleaves plasticity (trace updates,
sparse weight writes, adaptive-threshold decay) with the membrane advance
and multiplies spikes with *dense float training weights* — not register
codes — so it contains neither primitive; its healthy single-sample
membrane step is exposed here as :func:`lif_learning_step` so the timestep
arithmetic still has exactly one home.

Backends
--------
``SOFTSNN_KERNEL_BACKEND=numpy|numba`` selects the implementation
(default ``numpy``).  The numba backend compiles ``@njit(cache=True)``
twins of the GEMM and the timestep advance; the numpy path is the parity
reference (``tests/test_kernels.py`` asserts the two are bit-identical).
numba is an *optional* dependency: when it is not importable (or fails to
compile) the kernels silently fall back to numpy with a logged reason.
Kernels with a Python ``step_hook`` always run the numpy path — the hook
must see live NumPy state between timesteps.

Autotuning
----------
:func:`autotune_batch_size` runs a short timed probe of the two primitives
over candidate chunk sizes and caches the winner per
``(n_neurons, n_inputs, backend)`` in-process.  Chunking is a pure
throughput knob — engine results are bit-identical for any batch size
(the faulty-reset latch carry reproduces sequential sample order exactly)
— which is what makes a *timed*, machine-dependent choice safe to wire
into result-deterministic pipelines.  Explicit ``batch_size`` /
``eval_batch_size`` / ``max_batch_size`` knobs always win; set
``SOFTSNN_AUTOTUNE=off`` to pin the historical default without probing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.obs import metrics as _obs
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.snn.neuron import LIFParameters, NeuronOperationStatus
    from repro.snn.quantization import WeightQuantizer

__all__ = [
    "AUTOTUNE_ENV",
    "DEFAULT_BATCH_SIZE",
    "FLOAT32_EXACT_SUM_LIMIT",
    "KERNEL_BACKEND_ENV",
    "NO_PROTECTION_TRIGGER",
    "BoundingCorrection",
    "KernelWorkspace",
    "LIFStepConfig",
    "OperationMasks",
    "apply_bounding_correction",
    "autotune_batch_size",
    "bounding_correction_terms",
    "clear_autotune_cache",
    "cuba_advance",
    "exact_gemm_dtype",
    "exact_scale",
    "fixed_point_advance",
    "get_backend",
    "lif_advance",
    "lif_learning_step",
    "numba_available",
    "plan_bounding_correction",
    "register_gemm",
    "set_backend",
]

_LOGGER = get_logger("snn.kernels")

# Kernel telemetry (docs/observability.md): per-primitive call counts and
# cumulative nanoseconds, labeled by the backend that actually executed
# (numpy when the numba dispatch falls back), plus autotuner outcomes.
# Children are cached in a plain dict so the hot path pays one dict lookup
# and two counter adds — the perf bench bounds this at ≤ 2 % of kernel time.
_KERNEL_CALLS = _obs.get_registry().counter(
    "softsnn_kernel_calls_total",
    "Kernel invocations by primitive and executed backend.",
    labels=("kernel", "backend"),
)
_KERNEL_NS = _obs.get_registry().counter(
    "softsnn_kernel_ns_total",
    "Cumulative wall time inside kernel invocations, nanoseconds.",
    labels=("kernel", "backend"),
)
_AUTOTUNE_EVENTS = _obs.get_registry().counter(
    "softsnn_autotune_events_total",
    "Batch-size autotuner outcomes: probe, cache_hit, pinned.",
    labels=("event",),
)
_AUTOTUNE_BATCH = _obs.get_registry().gauge(
    "softsnn_autotune_batch_size",
    "Most recently autotuned engine chunk size per backend.",
    labels=("backend",),
)
_KERNEL_CHILDREN: Dict[Tuple[str, str], Tuple[object, object]] = {}


def _record_kernel(kernel: str, backend: str, elapsed_ns: int) -> None:
    """Account one kernel invocation to the call/time counters."""
    pair = _KERNEL_CHILDREN.get((kernel, backend))
    if pair is None:
        pair = (
            _KERNEL_CALLS.labels(kernel=kernel, backend=backend),
            _KERNEL_NS.labels(kernel=kernel, backend=backend),
        )
        _KERNEL_CHILDREN[(kernel, backend)] = pair
    pair[0].inc()
    pair[1].inc(elapsed_ns)

#: Environment variable selecting the kernel backend (``numpy`` | ``numba``).
KERNEL_BACKEND_ENV = "SOFTSNN_KERNEL_BACKEND"

#: Environment variable disabling the batch-size autotuner (``off`` pins
#: :data:`DEFAULT_BATCH_SIZE` without probing).
AUTOTUNE_ENV = "SOFTSNN_AUTOTUNE"

#: Largest integer magnitude the float32 mantissa holds exactly.  Register
#: codes are non-negative, so no partial sum of a column accumulation ever
#: exceeds the final ``n_inputs * max_code`` bound; the float32 GEMM is
#: exact iff that bound is ``<= 2**24``.
FLOAT32_EXACT_SUM_LIMIT = 1 << 24

#: Trigger sentinel for rows without neuron protection: the comparator
#: counter can never reach it, so the gate stays open.
NO_PROTECTION_TRIGGER = np.iinfo(np.int64).max

#: Historical engine chunk size; the fallback when autotuning is disabled.
DEFAULT_BATCH_SIZE = 64

_BACKENDS = ("numpy", "numba")


# ---------------------------------------------------------------------- #
# backend selection
# ---------------------------------------------------------------------- #
_active_backend: Optional[str] = None
_numba_module = None
_numba_import_error: Optional[str] = None
_numba_checked = False
_numba_impl_cache: Optional[Dict[str, Callable]] = None
_numba_impl_failed = False


def _import_numba():
    """Import numba once; remember the failure reason for the fallback log."""
    global _numba_module, _numba_import_error, _numba_checked
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # noqa: F401 - optional dependency probe

            _numba_module = numba
        except Exception as exc:  # pragma: no cover - depends on environment
            _numba_module = None
            _numba_import_error = str(exc)
    return _numba_module


def numba_available() -> bool:
    """Whether the optional numba backend can be imported on this machine."""
    return _import_numba() is not None


def _resolve_backend(requested: Optional[str]) -> str:
    """Validate a requested backend name, falling back to numpy with a log."""
    name = (requested or "numpy").strip().lower()
    if name not in _BACKENDS:
        _LOGGER.warning(
            "unknown kernel backend %r (via %s); falling back to numpy",
            requested,
            KERNEL_BACKEND_ENV,
        )
        return "numpy"
    if name == "numba" and not numba_available():
        _LOGGER.warning(
            "kernel backend 'numba' requested but numba is not importable "
            "(%s); falling back to numpy",
            _numba_import_error,
        )
        return "numpy"
    return name


def get_backend() -> str:
    """Active kernel backend, resolved once from :data:`KERNEL_BACKEND_ENV`."""
    global _active_backend
    if _active_backend is None:
        _active_backend = _resolve_backend(os.environ.get(KERNEL_BACKEND_ENV))
    return _active_backend


def set_backend(name: Optional[str]) -> str:
    """Override the kernel backend (``None`` re-resolves the environment).

    Returns the backend actually activated — requesting ``numba`` on a
    machine without it activates ``numpy`` (with a logged reason), exactly
    like the environment-variable path.
    """
    global _active_backend
    if name is None:
        name = os.environ.get(KERNEL_BACKEND_ENV)
    _active_backend = _resolve_backend(name)
    return _active_backend


def _numba_impls() -> Optional[Dict[str, Callable]]:
    """Build (once) the jitted kernel twins; ``None`` if numba is unusable."""
    global _numba_impl_cache, _numba_impl_failed
    if _numba_impl_cache is not None:
        return _numba_impl_cache
    if _numba_impl_failed:
        return None
    numba = _import_numba()
    if numba is None:
        _numba_impl_failed = True
        return None
    try:
        _numba_impl_cache = _build_numba_impls(numba)
    except Exception as exc:  # pragma: no cover - depends on numba version
        _LOGGER.warning(
            "compiling numba kernels failed (%s); falling back to numpy", exc
        )
        _numba_impl_failed = True
        return None
    return _numba_impl_cache


def _build_numba_impls(numba) -> Dict[str, Callable]:
    """Define the ``@njit(cache=True)`` GEMM and timestep-advance kernels.

    The advance is an explicit-loop transcription of the numpy kernel with
    identical operation order per element; the default ``njit`` pipeline
    performs no fastmath reassociation or FMA contraction, so every float
    result matches the numpy ufunc sequence bit for bit (asserted by
    ``tests/test_kernels.py``).
    """
    njit = numba.njit

    @njit(cache=True)
    def gemm(spikes, codes):  # pragma: no cover - exercised via backend tests
        return np.dot(spikes, codes)

    @njit(cache=True)
    def advance(  # pragma: no cover - exercised via backend tests
        currents,
        output,
        v,
        refractory,
        counter,
        disabled,
        latched,
        comparator,
        spikes,
        leak_ok,
        increase_ok,
        reset_ok,
        spike_ok,
        triggers,
        protect,
        v_rest,
        v_reset,
        v_min,
        decay,
        period,
        strength,
        threshold,
    ):
        timesteps, n_rows, batch, n_neurons = currents.shape
        for t in range(timesteps):
            for r in range(n_rows):
                for b in range(batch):
                    n_spiking = 0
                    for n in range(n_neurons):
                        vv = v[r, b, n]
                        # (2) Vmem leak.
                        if leak_ok[r, n]:
                            vv = v_rest + (vv - v_rest) * decay
                        # (1) Vmem increase (adding literal 0.0 when gated
                        # mirrors the numpy where-expression bit for bit).
                        act = refractory[r, b, n] <= 0
                        inc = 0.0
                        if act and increase_ok[r, n]:
                            inc = currents[t, r, b, n]
                        vv = vv + inc
                        if vv < v_min:
                            vv = v_min
                        # (4) Spike generation: comparator + counter.
                        comp = act and (vv >= threshold[n])
                        comparator[r, b, n] = comp
                        if comp:
                            counter[r, b, n] += 1
                        else:
                            counter[r, b, n] = 0
                        sp = (
                            comp
                            and spike_ok[r, n]
                            and not disabled[r, b, n]
                        )
                        spikes[r, b, n] = sp
                        if sp:
                            n_spiking += 1
                        # (3) Vmem reset + refractory; faulty resets latch.
                        if comp and reset_ok[r, n]:
                            vv = v_reset
                            refractory[r, b, n] = period
                        else:
                            if comp:
                                latched[r, b, n] = True
                            remaining = refractory[r, b, n] - 1
                            if remaining < 0:
                                remaining = 0
                            refractory[r, b, n] = remaining
                        v[r, b, n] = vv
                    # Direct lateral inhibition, per (row, sample).
                    if strength > 0.0 and n_spiking > 0:
                        for n in range(n_neurons):
                            others = n_spiking
                            if spikes[r, b, n]:
                                others = n_spiking - 1
                            vv = v[r, b, n] - strength * others
                            if vv < v_min:
                                vv = v_min
                            v[r, b, n] = vv
                    for n in range(n_neurons):
                        # Pin latched faulty-reset membranes at threshold.
                        if latched[r, b, n] and v[r, b, n] < threshold[n]:
                            v[r, b, n] = threshold[n]
                        output[t, r, b, n] = spikes[r, b, n]
                        # Neuron protection (post-step, like the monitor).
                        if protect and counter[r, b, n] >= triggers[r]:
                            disabled[r, b, n] = True

    return {"gemm": gemm, "advance": advance}


# ---------------------------------------------------------------------- #
# exact register-code GEMM
# ---------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def _exact_gemm_dtype_cached(n_inputs: int, max_code: int) -> np.dtype:
    """Cached body of :func:`exact_gemm_dtype` (the one-time probe)."""
    if n_inputs * max_code <= FLOAT32_EXACT_SUM_LIMIT:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def exact_gemm_dtype(n_inputs: int, max_code: int) -> np.dtype:
    """Smallest float dtype whose matmul is exact for register-code sums.

    A crossbar column sum is at most ``n_inputs * max_code``, and codes are
    non-negative, so no partial sum exceeds that bound.  When the bound
    fits the 24-bit float32 mantissa (``<= 2**24``), every product and
    every partial sum of the GEMM is exactly representable in float32 and
    the (much faster) SGEMM returns the same integers as a float64 GEMM —
    the same integers for every operand shape, summation order and BLAS
    kernel.  The decision is a pure function of the register geometry, so
    it is probed once per ``(n_inputs, max_code)`` and cached process-wide.
    """
    return _exact_gemm_dtype_cached(int(n_inputs), int(max_code))


def register_gemm(
    spikes: np.ndarray, codes: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Exact integer register-code GEMM: ``(m, n_inputs) @ (n_inputs, n)``.

    ``codes`` must already be in the dtype :func:`exact_gemm_dtype` chose
    for its geometry; ``spikes`` (boolean or 0/1 rows) is cast to match.
    The accumulated entries are exact integers in either float precision,
    so the numpy and numba implementations — and any BLAS kernel either
    dispatches to — return bitwise identical results.
    """
    spikes = np.asarray(spikes)
    if backend is None:
        backend = get_backend()
    impls = _numba_impls() if backend == "numba" else None
    start_ns = time.perf_counter_ns()
    if impls is not None:
        result = impls["gemm"](
            np.ascontiguousarray(spikes, dtype=codes.dtype),
            np.ascontiguousarray(codes),
        )
    else:
        result = spikes.astype(codes.dtype, copy=False) @ codes
    if _obs.enabled():
        _record_kernel(
            "register_gemm",
            "numba" if impls is not None else "numpy",
            time.perf_counter_ns() - start_ns,
        )
    return result


def exact_scale(
    accumulated: np.ndarray, factor: float, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Multiply exact integer-valued accumulators by a float64 factor.

    The accumulator entries are integers held exactly in either float
    precision, so widening to float64 during the multiply yields bitwise
    identical currents regardless of the GEMM dtype.
    """
    return np.multiply(accumulated, factor, dtype=np.float64, out=out)


# ---------------------------------------------------------------------- #
# Bound-and-Protect bounding correction
# ---------------------------------------------------------------------- #
@dataclass
class BoundingCorrection:
    """Precomputed operands of the BnP bounding-correction decomposition.

    The bounded current of a register array splits exactly as
    ``(base - masked) * scale + substitute * hits``: ``masked_codes`` holds
    the codes of the out-of-range synapses (zero elsewhere) and
    ``mask_codes`` their 0/1 indicator, so rows sharing a base GEMM and a
    bounding threshold share one correction pair.  When only a few input
    lines feed bounded synapses, ``columns`` restricts the correction
    GEMMs to those rows of the spike matrix (exact — the dropped terms are
    all zero).  ``is_empty`` marks thresholds no stored weight reaches.
    """

    columns: Optional[np.ndarray]
    masked_codes: np.ndarray
    mask_codes: np.ndarray
    is_empty: bool = False


def plan_bounding_correction(
    registers: np.ndarray,
    threshold: float,
    quantizer: "WeightQuantizer",
) -> BoundingCorrection:
    """Precompute the bounding-correction operands for one threshold.

    Mirrors the comparator of the Bound-and-Protect hardware: a synapse is
    *bounded* when its stored (dequantised) weight is ``>= threshold``.
    """
    registers = np.asarray(registers)
    n_inputs = int(registers.shape[0])
    gemm_dtype = exact_gemm_dtype(n_inputs, quantizer.max_code)
    weights = quantizer.dequantize(registers)
    mask = weights >= threshold
    columns = np.flatnonzero(mask.any(axis=1))
    if columns.size == 0:
        return BoundingCorrection(
            columns=None,
            masked_codes=np.zeros((0, 0)),
            mask_codes=np.zeros((0, 0)),
            is_empty=True,
        )
    masked_codes = np.where(mask, registers, 0).astype(gemm_dtype)
    mask_codes = mask.astype(gemm_dtype)
    if columns.size <= n_inputs // 2:
        # Only a few input lines feed bounded synapses: restrict the
        # correction GEMMs to those columns (exact — the dropped terms
        # are all zero).
        return BoundingCorrection(
            columns=columns,
            masked_codes=np.ascontiguousarray(masked_codes[columns]),
            mask_codes=np.ascontiguousarray(mask_codes[columns]),
        )
    return BoundingCorrection(
        columns=None, masked_codes=masked_codes, mask_codes=mask_codes
    )


def bounding_correction_terms(
    flat_spikes: np.ndarray,
    correction: BoundingCorrection,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The two correction GEMMs ``(masked, hits)`` for pre-cast spike rows."""
    if correction.columns is None:
        spikes = flat_spikes
    else:
        spikes = flat_spikes[:, correction.columns]
    return (
        register_gemm(spikes, correction.masked_codes, backend=backend),
        register_gemm(spikes, correction.mask_codes, backend=backend),
    )


def apply_bounding_correction(
    base: np.ndarray,
    masked: np.ndarray,
    hits: np.ndarray,
    scale: float,
    substitute: float,
    out: np.ndarray,
) -> np.ndarray:
    """Combine ``(base - masked) * scale + substitute * hits`` into *out*.

    All three operands are exact integer accumulators, so the combination
    is bitwise identical to the per-map bounded operator for any GEMM
    dtype (:func:`exact_scale`).
    """
    exact_scale(base - masked, scale, out=out)
    out += exact_scale(hits, substitute)
    return out


# ---------------------------------------------------------------------- #
# LIF timestep advance
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class LIFStepConfig:
    """Scalar LIF parameters consumed by the timestep kernels."""

    v_rest: float
    v_reset: float
    v_min: float
    membrane_decay: float
    refractory_period: int
    inhibition_strength: float

    @classmethod
    def from_params(cls, params: "LIFParameters") -> "LIFStepConfig":
        """Extract the scalar subset of :class:`LIFParameters` kernels need."""
        return cls(
            v_rest=float(params.v_rest),
            v_reset=float(params.v_reset),
            v_min=float(params.v_min),
            membrane_decay=float(params.membrane_decay),
            refractory_period=int(params.refractory_period),
            inhibition_strength=float(params.inhibition_strength),
        )


class OperationMasks:
    """Per-row health masks of the four LIF hardware operations.

    Arrays have shape ``(n_rows, n_neurons)``; the ``all_*`` flags let the
    kernels specialise away a fault switch when every neuron is healthy
    for that operation (a pure boolean identity, so the arithmetic is
    unchanged).
    """

    __slots__ = (
        "leak_ok",
        "increase_ok",
        "reset_ok",
        "spike_ok",
        "all_leak",
        "all_increase",
        "all_reset",
        "all_spike",
    )

    def __init__(
        self,
        leak_ok: np.ndarray,
        increase_ok: np.ndarray,
        reset_ok: np.ndarray,
        spike_ok: np.ndarray,
    ) -> None:
        self.leak_ok = leak_ok
        self.increase_ok = increase_ok
        self.reset_ok = reset_ok
        self.spike_ok = spike_ok
        self.all_leak = bool(leak_ok.all())
        self.all_increase = bool(increase_ok.all())
        self.all_reset = bool(reset_ok.all())
        self.all_spike = bool(spike_ok.all())

    @property
    def n_rows(self) -> int:
        """Number of mask rows (concurrently simulated configurations)."""
        return int(self.leak_ok.shape[0])

    @classmethod
    def from_status(cls, status: "NeuronOperationStatus") -> "OperationMasks":
        """Single-row masks of one :class:`NeuronOperationStatus` (views)."""
        return cls(
            np.atleast_2d(status.vmem_leak_ok),
            np.atleast_2d(status.vmem_increase_ok),
            np.atleast_2d(status.vmem_reset_ok),
            np.atleast_2d(status.spike_generation_ok),
        )

    @classmethod
    def stack(
        cls, statuses: Sequence["NeuronOperationStatus"]
    ) -> "OperationMasks":
        """Stack per-row statuses into ``(n_rows, n_neurons)`` masks."""
        return cls(
            np.stack([s.vmem_leak_ok for s in statuses]),
            np.stack([s.vmem_increase_ok for s in statuses]),
            np.stack([s.vmem_reset_ok for s in statuses]),
            np.stack([s.spike_generation_ok for s in statuses]),
        )

    @classmethod
    def healthy(cls, n_neurons: int) -> "OperationMasks":
        """All-healthy single-row masks (the training-presentation case)."""
        ones = np.ones((1, n_neurons), dtype=bool)
        return cls(ones, ones, ones, ones)

    def rows(self, row_slice: slice) -> "OperationMasks":
        """Masks of a contiguous row subset (views; flags recomputed)."""
        return OperationMasks(
            self.leak_ok[row_slice],
            self.increase_ok[row_slice],
            self.reset_ok[row_slice],
            self.spike_ok[row_slice],
        )


class KernelWorkspace:
    """Caller-owned scratch buffers of the LIF timestep advance.

    One workspace is allocated per engine (or run) and reused across every
    timestep and every chunk: :meth:`ensure` reallocates only when the
    ``(rows, batch, neurons)`` block shape actually changes, so steady-state
    simulation performs no per-timestep — and between equal-shaped chunks
    no per-chunk — array allocation.  The buffer set matches what one
    timestep needs: two float64 scratch blocks, two boolean scratch blocks
    and the ``(rows, batch, 1)`` spike-count accumulator of the lateral
    inhibition term.
    """

    __slots__ = ("shape", "vbuf", "fbuf", "active", "boolbuf", "countbuf")

    def __init__(self) -> None:
        self.shape: Optional[Tuple[int, int, int]] = None
        self.vbuf: Optional[np.ndarray] = None
        self.fbuf: Optional[np.ndarray] = None
        self.active: Optional[np.ndarray] = None
        self.boolbuf: Optional[np.ndarray] = None
        self.countbuf: Optional[np.ndarray] = None

    def ensure(self, shape: Tuple[int, int, int]) -> "KernelWorkspace":
        """Size the buffers for one ``(rows, batch, neurons)`` block shape."""
        shape = tuple(int(extent) for extent in shape)
        if self.shape != shape:
            self.shape = shape
            self.vbuf = np.empty(shape, dtype=np.float64)
            self.fbuf = np.empty(shape, dtype=np.float64)
            self.active = np.empty(shape, dtype=bool)
            self.boolbuf = np.empty(shape, dtype=bool)
            self.countbuf = np.empty(shape[:2] + (1,), dtype=np.int64)
        return self


def lif_advance(
    currents: np.ndarray,
    output: np.ndarray,
    v: np.ndarray,
    refractory: np.ndarray,
    counter: np.ndarray,
    disabled: np.ndarray,
    latched: np.ndarray,
    comparator: np.ndarray,
    spikes: np.ndarray,
    masks: OperationMasks,
    threshold: np.ndarray,
    config: LIFStepConfig,
    workspace: KernelWorkspace,
    triggers: Optional[np.ndarray] = None,
    step_hook: Optional[Callable[[], None]] = None,
    backend: Optional[str] = None,
) -> None:
    """Advance ``(rows, batch, neurons)`` LIF state over all timesteps.

    This is the one timestep loop every engine runs.  Per timestep it
    applies, in order: (2) membrane leak, (1) current integration with the
    ``v_min`` clamp, (4) threshold comparator + consecutive-above-threshold
    counter + spike gating, (3) reset / refractory entry with faulty-reset
    latching, lateral inhibition, latched-membrane pinning, the output
    write, optional neuron-protection trigger gating and the optional
    ``step_hook`` — exactly the operation sequence of the sequential
    :meth:`repro.snn.neuron.LIFNeuronGroup.step` plus the post-step
    protection semantics of the batched engines.

    Parameters
    ----------
    currents:
        Input currents, timestep-major ``(timesteps, rows, batch, n)``.
    output:
        Boolean output raster ``(timesteps, rows, batch, n)``; written per
        timestep.
    v / refractory / counter / disabled / latched:
        The live state arrays ``(rows, batch, n)``, advanced strictly in
        place (never reassigned or swapped) so step hooks observing them —
        and mutating ``disabled`` — always see the current values.
    comparator / spikes:
        Caller-owned per-timestep result buffers ``(rows, batch, n)``,
        written in place each step; after the call they hold the final
        timestep's values.
    masks:
        Per-row operation health (:class:`OperationMasks`).
    threshold:
        Effective firing threshold per neuron, shape ``(n,)``.
    config:
        Scalar LIF parameters (:class:`LIFStepConfig`).
    workspace:
        Scratch buffers (:class:`KernelWorkspace`), reused across calls.
    triggers:
        Optional per-row protection triggers ``(rows,)`` int64
        (:data:`NO_PROTECTION_TRIGGER` keeps a row ungated); ``None``
        skips protection entirely.
    step_hook:
        Optional callable invoked after every timestep (the batched
        engine's step-monitor adapter).  Forces the numpy backend — the
        hook must observe live state between steps.
    backend:
        Backend override; defaults to :func:`get_backend`.
    """
    if backend is None:
        backend = get_backend()
    impls = (
        _numba_impls() if backend == "numba" and step_hook is None else None
    )
    start_ns = time.perf_counter_ns()
    if impls is not None:
        trig = (
            np.full(v.shape[0], NO_PROTECTION_TRIGGER, dtype=np.int64)
            if triggers is None
            else np.ascontiguousarray(triggers, dtype=np.int64)
        )
        impls["advance"](
            currents,
            output,
            v,
            refractory,
            counter,
            disabled,
            latched,
            comparator,
            spikes,
            np.ascontiguousarray(masks.leak_ok),
            np.ascontiguousarray(masks.increase_ok),
            np.ascontiguousarray(masks.reset_ok),
            np.ascontiguousarray(masks.spike_ok),
            trig,
            triggers is not None,
            config.v_rest,
            config.v_reset,
            config.v_min,
            config.membrane_decay,
            np.int64(config.refractory_period),
            config.inhibition_strength,
            np.ascontiguousarray(threshold, dtype=np.float64),
        )
    else:
        _lif_advance_numpy(
            currents,
            output,
            v,
            refractory,
            counter,
            disabled,
            latched,
            comparator,
            spikes,
            masks,
            threshold,
            config,
            workspace,
            triggers,
            step_hook,
        )
    if _obs.enabled():
        _record_kernel(
            "lif_advance",
            "numba" if impls is not None else "numpy",
            time.perf_counter_ns() - start_ns,
        )


def _lif_advance_numpy(
    currents: np.ndarray,
    output: np.ndarray,
    v: np.ndarray,
    refractory: np.ndarray,
    counter: np.ndarray,
    disabled: np.ndarray,
    latched: np.ndarray,
    comparator: np.ndarray,
    spikes: np.ndarray,
    masks: OperationMasks,
    threshold: np.ndarray,
    config: LIFStepConfig,
    workspace: KernelWorkspace,
    triggers: Optional[np.ndarray],
    step_hook: Optional[Callable[[], None]],
) -> None:
    """Reference (numpy) timestep advance: in-place ufuncs, zero hot allocs.

    Every statement is a bitwise-identical reformulation of the sequential
    expressions: in-place ufunc chains evaluate the same IEEE operations
    element by element, ``copyto(..., where=...)`` is ``np.where`` with an
    explicit destination, and the integer counter / refractory updates are
    exact.  The loop touches only the caller's state arrays and the
    workspace buffers — nothing is allocated per timestep.
    """
    ws = workspace.ensure(v.shape)
    vbuf = ws.vbuf
    fbuf = ws.fbuf
    active = ws.active
    boolbuf = ws.boolbuf
    countbuf = ws.countbuf

    v_rest = config.v_rest
    v_reset = config.v_reset
    v_min = config.v_min
    decay = config.membrane_decay
    period = config.refractory_period
    strength = config.inhibition_strength

    leak_ok = masks.leak_ok[:, np.newaxis, :]
    increase_ok = masks.increase_ok[:, np.newaxis, :]
    reset_ok = masks.reset_ok[:, np.newaxis, :]
    spike_ok = masks.spike_ok[:, np.newaxis, :]
    all_leak = masks.all_leak
    all_increase = masks.all_increase
    all_reset = masks.all_reset
    all_spike = masks.all_spike
    reset_bad = None if all_reset else ~reset_ok
    trig = (
        None
        if triggers is None
        else np.asarray(triggers, dtype=np.int64).reshape(-1, 1, 1)
    )

    timesteps = currents.shape[0]
    for t in range(timesteps):
        # (2) Vmem leak: v_rest + (v - v_rest) * decay.
        if all_leak:
            np.subtract(v, v_rest, out=v)
            np.multiply(v, decay, out=v)
            np.add(v, v_rest, out=v)
        else:
            np.subtract(v, v_rest, out=vbuf)
            np.multiply(vbuf, decay, out=vbuf)
            np.add(vbuf, v_rest, out=vbuf)
            np.copyto(v, vbuf, where=leak_ok)

        # (1) Vmem increase: v += where(integrate, current, 0.0), clamp.
        np.less_equal(refractory, 0, out=active)
        if all_increase:
            integrate = active
        else:
            np.logical_and(active, increase_ok, out=boolbuf)
            integrate = boolbuf
        np.copyto(fbuf, 0.0)
        np.copyto(fbuf, currents[t], where=integrate)
        np.add(v, fbuf, out=v)
        np.maximum(v, v_min, out=v)

        # (4) Spike generation: comparator and protection counter.
        np.greater_equal(v, threshold, out=comparator)
        np.logical_and(comparator, active, out=comparator)
        np.add(counter, 1, out=counter)
        np.multiply(counter, comparator, out=counter)
        np.logical_not(disabled, out=spikes)
        np.logical_and(spikes, comparator, out=spikes)
        if not all_spike:
            np.logical_and(spikes, spike_ok, out=spikes)

        # (3) Vmem reset and refractory entry; faulty resets latch.
        if all_reset:
            reset_now = comparator
        else:
            np.logical_and(comparator, reset_ok, out=boolbuf)
            reset_now = boolbuf
        np.copyto(v, v_reset, where=reset_now)
        np.subtract(refractory, 1, out=refractory)
        np.maximum(refractory, 0, out=refractory)
        np.copyto(refractory, period, where=reset_now)
        if not all_reset:
            np.logical_and(comparator, reset_bad, out=boolbuf)
            np.logical_or(latched, boolbuf, out=latched)

        # Direct lateral inhibition, per (row, sample).  Blocks without
        # spikes receive an exactly-zero inhibition, which is a no-op
        # because v_min <= v_reset guarantees v >= v_min here.
        if strength > 0 and spikes.any():
            np.sum(spikes, axis=-1, keepdims=True, out=countbuf)
            np.subtract(countbuf, spikes, out=fbuf)
            np.multiply(fbuf, strength, out=fbuf)
            np.subtract(v, fbuf, out=v)
            np.maximum(v, v_min, out=v)

        # Keep latched faulty-reset membranes pinned at the threshold.
        if not all_reset and latched.any():
            np.maximum(v, threshold, out=fbuf)
            np.copyto(v, fbuf, where=latched)

        output[t] = spikes

        # Neuron protection: gate off spike generation once the comparator
        # has stayed asserted for the row's trigger count (applied
        # post-step, like the batched step-monitor hook).
        if trig is not None:
            np.greater_equal(counter, trig, out=boolbuf)
            np.logical_or(disabled, boolbuf, out=disabled)

        if step_hook is not None:
            step_hook()


def lif_learning_step(
    v: np.ndarray,
    refractory: np.ndarray,
    theta: np.ndarray,
    current: np.ndarray,
    config: LIFStepConfig,
    v_threshold: float,
    theta_plus: float,
    theta_decay: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One healthy learning-mode LIF timestep over ``(n,)`` state.

    The training-side variant of the timestep advance: the adaptive
    threshold ``theta`` decays and potentiates *during* the step (inference
    keeps it frozen), every fault switch is collapsed (training networks
    are always healthy), and the arrays are per-neuron vectors because STDP
    cannot batch samples.  ``theta`` is mutated in place; ``v``,
    ``refractory`` and the spike vector are returned — the exact operation
    sequence of the sequential :meth:`repro.snn.neuron.LIFNeuronGroup.step`
    in learning mode, which keeps the vectorized trainer bit-identical.
    """
    v = config.v_rest + (v - config.v_rest) * config.membrane_decay
    active = refractory <= 0
    v = v + np.where(active, current, 0.0)
    v = np.maximum(v, config.v_min)
    spikes = active & (v >= v_threshold + theta)
    any_post = spikes.any()
    v = np.where(spikes, config.v_reset, v)
    refractory = np.where(
        spikes, config.refractory_period, np.maximum(refractory - 1, 0)
    )
    theta *= theta_decay
    theta += theta_plus * spikes.astype(np.float64)
    if config.inhibition_strength > 0 and any_post:
        n_spiking = int(spikes.sum())
        inhibition = config.inhibition_strength * (
            n_spiking - spikes.astype(np.float64)
        )
        v = np.maximum(v - inhibition, config.v_min)
    return v, refractory, spikes


# ---------------------------------------------------------------------- #
# model-dispatched advance kernels (neuron-model zoo)
# ---------------------------------------------------------------------- #
def cuba_advance(
    currents: np.ndarray,
    output: np.ndarray,
    v: np.ndarray,
    refractory: np.ndarray,
    counter: np.ndarray,
    disabled: np.ndarray,
    latched: np.ndarray,
    comparator: np.ndarray,
    spikes: np.ndarray,
    masks: OperationMasks,
    threshold: np.ndarray,
    config: LIFStepConfig,
    workspace: KernelWorkspace,
    current_decay: float = 0.5,
    triggers: Optional[np.ndarray] = None,
    step_hook: Optional[Callable[[], None]] = None,
    backend: Optional[str] = None,
) -> None:
    """Current-based (CUBA) leaky LIF advance over ``(rows, batch, n)`` state.

    The lava-style ``du/dv`` variant: a synaptic-current state ``u`` decays
    by ``current_decay`` and accumulates each timestep's input, and the
    membrane integrates ``u`` instead of the raw input current.  ``u``
    starts at zero for every presentation (it is per-sample dynamics, like
    the membrane), so it lives inside the call rather than in the engines'
    state structs — one allocation per pass, none per timestep.

    The paper's four faultable operations map onto the same gates as the
    LIF kernel: ``leak_ok`` gates the membrane leak, ``increase_ok`` gates
    ``v += u`` (the synaptic accumulation itself is crossbar arithmetic,
    not a Vmem operation, so it always runs), and spike generation / reset
    keep the LIF semantics, including the faulty-reset latch and neuron
    protection.  Only a numpy implementation exists; ``backend`` is
    accepted for interface parity and the kernel silently runs numpy —
    the same fallback contract as an unavailable numba.
    """
    del backend  # numpy only; accepted for signature parity with lif_advance
    start_ns = time.perf_counter_ns()
    ws = workspace.ensure(v.shape)
    vbuf = ws.vbuf
    fbuf = ws.fbuf
    active = ws.active
    boolbuf = ws.boolbuf
    countbuf = ws.countbuf
    u = np.zeros(v.shape, dtype=np.float64)

    v_rest = config.v_rest
    v_reset = config.v_reset
    v_min = config.v_min
    decay = config.membrane_decay
    period = config.refractory_period
    strength = config.inhibition_strength
    current_decay = float(current_decay)

    leak_ok = masks.leak_ok[:, np.newaxis, :]
    increase_ok = masks.increase_ok[:, np.newaxis, :]
    reset_ok = masks.reset_ok[:, np.newaxis, :]
    spike_ok = masks.spike_ok[:, np.newaxis, :]
    all_leak = masks.all_leak
    all_increase = masks.all_increase
    all_reset = masks.all_reset
    all_spike = masks.all_spike
    reset_bad = None if all_reset else ~reset_ok
    trig = (
        None
        if triggers is None
        else np.asarray(triggers, dtype=np.int64).reshape(-1, 1, 1)
    )

    timesteps = currents.shape[0]
    for t in range(timesteps):
        # Synaptic current: decay, then accumulate this step's input.
        np.multiply(u, current_decay, out=u)
        np.add(u, currents[t], out=u)

        # (2) Vmem leak: v_rest + (v - v_rest) * decay, gated per neuron.
        if all_leak:
            np.subtract(v, v_rest, out=v)
            np.multiply(v, decay, out=v)
            np.add(v, v_rest, out=v)
        else:
            np.subtract(v, v_rest, out=vbuf)
            np.multiply(vbuf, decay, out=vbuf)
            np.add(vbuf, v_rest, out=vbuf)
            np.copyto(v, vbuf, where=leak_ok)

        # (1) Vmem increase: v += where(integrate, u, 0.0), clamp.
        np.less_equal(refractory, 0, out=active)
        if all_increase:
            integrate = active
        else:
            np.logical_and(active, increase_ok, out=boolbuf)
            integrate = boolbuf
        np.copyto(fbuf, 0.0)
        np.copyto(fbuf, u, where=integrate)
        np.add(v, fbuf, out=v)
        np.maximum(v, v_min, out=v)

        # (4) Spike generation: comparator and protection counter.
        np.greater_equal(v, threshold, out=comparator)
        np.logical_and(comparator, active, out=comparator)
        np.add(counter, 1, out=counter)
        np.multiply(counter, comparator, out=counter)
        np.logical_not(disabled, out=spikes)
        np.logical_and(spikes, comparator, out=spikes)
        if not all_spike:
            np.logical_and(spikes, spike_ok, out=spikes)

        # (3) Vmem reset and refractory entry; faulty resets latch.
        if all_reset:
            reset_now = comparator
        else:
            np.logical_and(comparator, reset_ok, out=boolbuf)
            reset_now = boolbuf
        np.copyto(v, v_reset, where=reset_now)
        np.subtract(refractory, 1, out=refractory)
        np.maximum(refractory, 0, out=refractory)
        np.copyto(refractory, period, where=reset_now)
        if not all_reset:
            np.logical_and(comparator, reset_bad, out=boolbuf)
            np.logical_or(latched, boolbuf, out=latched)

        # Direct lateral inhibition, per (row, sample).
        if strength > 0 and spikes.any():
            np.sum(spikes, axis=-1, keepdims=True, out=countbuf)
            np.subtract(countbuf, spikes, out=fbuf)
            np.multiply(fbuf, strength, out=fbuf)
            np.subtract(v, fbuf, out=v)
            np.maximum(v, v_min, out=v)

        # Keep latched faulty-reset membranes pinned at the threshold.
        if not all_reset and latched.any():
            np.maximum(v, threshold, out=fbuf)
            np.copyto(v, fbuf, where=latched)

        output[t] = spikes

        if trig is not None:
            np.greater_equal(counter, trig, out=boolbuf)
            np.logical_or(disabled, boolbuf, out=disabled)

        if step_hook is not None:
            step_hook()

    if _obs.enabled():
        _record_kernel("cuba_advance", "numpy", time.perf_counter_ns() - start_ns)


def fixed_point_advance(
    currents: np.ndarray,
    output: np.ndarray,
    v: np.ndarray,
    refractory: np.ndarray,
    counter: np.ndarray,
    disabled: np.ndarray,
    latched: np.ndarray,
    comparator: np.ndarray,
    spikes: np.ndarray,
    masks: OperationMasks,
    threshold: np.ndarray,
    config: LIFStepConfig,
    workspace: KernelWorkspace,
    weight_exp: int = 6,
    decay_bits: int = 12,
    triggers: Optional[np.ndarray] = None,
    step_hook: Optional[Callable[[], None]] = None,
    backend: Optional[str] = None,
) -> None:
    """Bit-accurate fixed-point LIF advance over ``(rows, batch, n)`` state.

    Loihi-style integer arithmetic (lava's fixed-point LIF): membrane and
    currents live on a ``2**weight_exp`` grid (mantissa/exponent weight
    scaling — the stored mantissa is the integer, the shared exponent is
    the grid), and the leak is a ``decay_bits``-bit fixed-point multiply
    with a truncating shift, ``v = v_rest + ((v - v_rest) * d) >> decay_bits``
    where ``d = round(membrane_decay * 2**decay_bits)``.

    Every quantity is an integer held exactly in the engines' float64 state
    arrays (magnitudes stay far below ``2**53``), so each operation is an
    exact elementwise computation — bitwise independent of batch shape and
    chunking, which is what makes the model safe inside the parity-checked
    engines.  ``v`` enters and leaves in float units: it is floored onto
    the grid at entry and divided back (exactly, by a power of two) at
    exit, so the engines' float-domain latch pinning composes correctly.
    The four faultable operations gate exactly as in :func:`lif_advance`.
    Only a numpy implementation exists; ``backend`` is accepted for
    interface parity and the kernel silently runs numpy.
    """
    del backend  # numpy only; accepted for signature parity with lif_advance
    start_ns = time.perf_counter_ns()
    ws = workspace.ensure(v.shape)
    vbuf = ws.vbuf
    fbuf = ws.fbuf
    active = ws.active
    boolbuf = ws.boolbuf
    countbuf = ws.countbuf

    scale = float(1 << int(weight_exp))
    decay_unit = float(1 << int(decay_bits))
    decay_q = float(int(round(config.membrane_decay * decay_unit)))
    v_rest_q = float(np.floor(config.v_rest * scale))
    v_reset_q = float(np.floor(config.v_reset * scale))
    v_min_q = float(np.floor(config.v_min * scale))
    strength_q = float(np.floor(config.inhibition_strength * scale))
    period = config.refractory_period
    threshold_q = np.floor(np.asarray(threshold, dtype=np.float64) * scale)

    # Enter the integer domain: v becomes its grid mantissa, in place.
    np.multiply(v, scale, out=v)
    np.floor(v, out=v)

    leak_ok = masks.leak_ok[:, np.newaxis, :]
    increase_ok = masks.increase_ok[:, np.newaxis, :]
    reset_ok = masks.reset_ok[:, np.newaxis, :]
    spike_ok = masks.spike_ok[:, np.newaxis, :]
    all_leak = masks.all_leak
    all_increase = masks.all_increase
    all_reset = masks.all_reset
    all_spike = masks.all_spike
    reset_bad = None if all_reset else ~reset_ok
    trig = (
        None
        if triggers is None
        else np.asarray(triggers, dtype=np.int64).reshape(-1, 1, 1)
    )

    timesteps = currents.shape[0]
    for t in range(timesteps):
        # (2) Vmem leak: v_rest + ((v - v_rest) * d) >> decay_bits.
        np.subtract(v, v_rest_q, out=vbuf)
        np.multiply(vbuf, decay_q, out=vbuf)
        np.floor_divide(vbuf, decay_unit, out=vbuf)
        np.add(vbuf, v_rest_q, out=vbuf)
        if all_leak:
            np.copyto(v, vbuf)
        else:
            np.copyto(v, vbuf, where=leak_ok)

        # (1) Vmem increase: v += where(integrate, floor(I * 2**exp), 0).
        np.less_equal(refractory, 0, out=active)
        if all_increase:
            integrate = active
        else:
            np.logical_and(active, increase_ok, out=boolbuf)
            integrate = boolbuf
        np.multiply(currents[t], scale, out=vbuf)
        np.floor(vbuf, out=vbuf)
        np.copyto(fbuf, 0.0)
        np.copyto(fbuf, vbuf, where=integrate)
        np.add(v, fbuf, out=v)
        np.maximum(v, v_min_q, out=v)

        # (4) Spike generation: comparator and protection counter.
        np.greater_equal(v, threshold_q, out=comparator)
        np.logical_and(comparator, active, out=comparator)
        np.add(counter, 1, out=counter)
        np.multiply(counter, comparator, out=counter)
        np.logical_not(disabled, out=spikes)
        np.logical_and(spikes, comparator, out=spikes)
        if not all_spike:
            np.logical_and(spikes, spike_ok, out=spikes)

        # (3) Vmem reset and refractory entry; faulty resets latch.
        if all_reset:
            reset_now = comparator
        else:
            np.logical_and(comparator, reset_ok, out=boolbuf)
            reset_now = boolbuf
        np.copyto(v, v_reset_q, where=reset_now)
        np.subtract(refractory, 1, out=refractory)
        np.maximum(refractory, 0, out=refractory)
        np.copyto(refractory, period, where=reset_now)
        if not all_reset:
            np.logical_and(comparator, reset_bad, out=boolbuf)
            np.logical_or(latched, boolbuf, out=latched)

        # Direct lateral inhibition on the integer grid.
        if strength_q > 0 and spikes.any():
            np.sum(spikes, axis=-1, keepdims=True, out=countbuf)
            np.subtract(countbuf, spikes, out=fbuf)
            np.multiply(fbuf, strength_q, out=fbuf)
            np.subtract(v, fbuf, out=v)
            np.maximum(v, v_min_q, out=v)

        # Keep latched faulty-reset membranes pinned at the threshold.
        if not all_reset and latched.any():
            np.maximum(v, threshold_q, out=fbuf)
            np.copyto(v, fbuf, where=latched)

        output[t] = spikes

        if trig is not None:
            np.greater_equal(counter, trig, out=boolbuf)
            np.logical_or(disabled, boolbuf, out=disabled)

        if step_hook is not None:
            step_hook()

    # Leave the integer domain: exact division by a power of two.
    np.divide(v, scale, out=v)

    if _obs.enabled():
        _record_kernel(
            "fixed_point_advance", "numpy", time.perf_counter_ns() - start_ns
        )


# ---------------------------------------------------------------------- #
# batch-size autotuning
# ---------------------------------------------------------------------- #
_AUTOTUNE_CANDIDATES = (16, 32, 64, 128)
_autotune_cache: Dict[Tuple[int, int, str], int] = {}


def clear_autotune_cache() -> None:
    """Drop cached autotune decisions (tests; backend switches)."""
    _autotune_cache.clear()


def _autotune_disabled() -> bool:
    """Whether :data:`AUTOTUNE_ENV` pins the default chunk size."""
    value = os.environ.get(AUTOTUNE_ENV, "").strip().lower()
    return value in ("off", "0", "false", "no", "disable", "disabled")


def autotune_batch_size(
    n_neurons: int,
    n_inputs: int,
    candidates: Optional[Sequence[int]] = None,
    probe_timesteps: int = 3,
    max_code: int = 255,
) -> int:
    """Pick the fastest engine chunk size for one network geometry.

    Runs a short timed probe — one register GEMM plus one
    :func:`lif_advance` block per candidate, on synthetic spikes — and
    returns the candidate with the best per-sample wall time.  The result
    is cached in-process per ``(n_neurons, n_inputs, backend)``, so every
    engine constructed for the same geometry reuses one probe.

    Chunk size is a pure throughput knob: engine results are bit-identical
    for any chunking, which is what makes a timed, machine-dependent
    choice safe inside result-deterministic pipelines.  Explicit
    ``batch_size`` knobs bypass this function entirely, and
    ``SOFTSNN_AUTOTUNE=off`` pins :data:`DEFAULT_BATCH_SIZE` without
    probing.
    """
    n_neurons = int(n_neurons)
    n_inputs = int(n_inputs)
    if n_neurons <= 0 or n_inputs <= 0:
        raise ValueError("n_neurons and n_inputs must be positive")
    if _autotune_disabled():
        _AUTOTUNE_EVENTS.labels(event="pinned").inc()
        return DEFAULT_BATCH_SIZE
    backend = get_backend()
    key = (n_neurons, n_inputs, backend)
    cached = _autotune_cache.get(key)
    if cached is not None:
        _AUTOTUNE_EVENTS.labels(event="cache_hit").inc()
        return cached
    _AUTOTUNE_EVENTS.labels(event="probe").inc()

    sizes = tuple(
        sorted({int(c) for c in (candidates or _AUTOTUNE_CANDIDATES) if c > 0})
    )
    if not sizes:
        raise ValueError("at least one positive candidate is required")

    rng = np.random.default_rng(0)
    gemm_dtype = exact_gemm_dtype(n_inputs, max_code)
    codes = np.ascontiguousarray(
        rng.integers(0, max_code + 1, size=(n_inputs, n_neurons)), dtype=gemm_dtype
    )
    raster = rng.random((max(sizes) * probe_timesteps, n_inputs)) < 0.05
    threshold = np.full(n_neurons, np.inf)
    config = LIFStepConfig(
        v_rest=-65.0,
        v_reset=-60.0,
        v_min=-80.0,
        membrane_decay=0.95,
        refractory_period=5,
        inhibition_strength=0.0,
    )
    masks = OperationMasks.healthy(n_neurons)
    workspace = KernelWorkspace()

    best_size = sizes[0]
    best_time = np.inf
    for size in sizes:
        flat = raster[: size * probe_timesteps]
        shape = (1, size, n_neurons)
        output = np.zeros((probe_timesteps,) + shape, dtype=bool)
        state = [
            np.full(shape, config.v_rest, dtype=np.float64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=bool),
            np.zeros(shape, dtype=bool),
            np.empty(shape, dtype=bool),
            np.empty(shape, dtype=bool),
        ]

        def probe_once() -> None:
            accumulated = register_gemm(flat, codes)
            currents = exact_scale(accumulated, 1.0 / max_code).reshape(
                (probe_timesteps,) + shape
            )
            lif_advance(
                currents,
                output,
                *state,
                masks,
                threshold,
                config,
                workspace,
            )

        probe_once()  # warm caches (and, for numba, the JIT) off the clock
        elapsed = np.inf
        for _ in range(2):
            began = time.perf_counter()
            probe_once()
            elapsed = min(elapsed, time.perf_counter() - began)
        per_sample = elapsed / size
        if per_sample < best_time:
            best_time = per_sample
            best_size = size

    _autotune_cache[key] = best_size
    _AUTOTUNE_BATCH.labels(backend=backend).set(best_size)
    _LOGGER.debug(
        "autotuned batch size for (n_neurons=%d, n_inputs=%d, backend=%s): %d",
        n_neurons,
        n_inputs,
        backend,
        best_size,
    )
    return best_size
