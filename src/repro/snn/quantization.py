"""8-bit weight quantisation for the accelerator's weight registers.

The compute engine of the modelled SNN accelerator stores each synaptic
weight in an 8-bit register (Section 2.1 of the paper: "We consider 8-bit
precision for each weight as it has a good accuracy-memory trade-off").  The
quantiser maps the simulator's floating-point weights onto unsigned register
codes and back:

``code = round(weight / scale)``, ``weight = code * scale``, with
``scale = full_scale / (2**bits - 1)``.

The *full-scale* range is deliberately larger than the maximum weight the
clean (fault-free) STDP training produces.  This reflects a fixed-point
hardware format whose representable range must accommodate intermediate
values, and it is what makes soft errors dangerous: a bit flip in a
high-order register bit can push a weight far beyond the clean network's
maximum — exactly the effect shown in Fig. 9 of the paper, where faulty
weights reach roughly twice the clean maximum.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["WeightQuantizer"]


class WeightQuantizer:
    """Uniform unsigned quantiser between float weights and register codes.

    Parameters
    ----------
    bits:
        Register width in bits (the paper uses 8).
    full_scale:
        Largest representable weight value; code ``2**bits - 1`` maps to this
        value.  Choose it comfortably above the clean network's maximum
        weight so bit flips can create out-of-range weights, as in Fig. 9.
    """

    def __init__(self, bits: int = 8, full_scale: float = 2.0) -> None:
        if not isinstance(bits, (int, np.integer)) or not 1 <= bits <= 16:
            raise ValueError(f"bits must be an integer in [1, 16], got {bits}")
        self.bits = int(bits)
        self.full_scale = check_positive(full_scale, "full_scale")

    # ------------------------------------------------------------------ #
    # derived constants
    # ------------------------------------------------------------------ #
    @property
    def max_code(self) -> int:
        """Largest register code (all bits set)."""
        return (1 << self.bits) - 1

    @property
    def scale(self) -> float:
        """Weight value represented by one least-significant-bit step."""
        return self.full_scale / self.max_code

    @property
    def dtype(self) -> np.dtype:
        """Smallest unsigned integer dtype that holds a register code."""
        if self.bits <= 8:
            return np.dtype(np.uint8)
        return np.dtype(np.uint16)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def quantize(self, weights: np.ndarray) -> np.ndarray:
        """Convert float weights to register codes (with saturation).

        Values below zero clamp to code 0 and values above *full_scale*
        clamp to the maximum code, mirroring saturating hardware writes.
        """
        weights = np.asarray(weights, dtype=np.float64)
        codes = np.rint(weights / self.scale)
        codes = np.clip(codes, 0, self.max_code)
        return codes.astype(self.dtype)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Convert register codes back to float weights."""
        codes = np.asarray(codes)
        if not np.issubdtype(codes.dtype, np.integer):
            raise TypeError(f"codes must be integers, got dtype {codes.dtype}")
        if codes.size and (codes.min() < 0 or codes.max() > self.max_code):
            raise ValueError(
                f"codes must lie in [0, {self.max_code}] for a {self.bits}-bit register"
            )
        return codes.astype(np.float64) * self.scale

    def roundtrip(self, weights: np.ndarray) -> np.ndarray:
        """Quantise then dequantise — the weights the hardware actually uses."""
        return self.dequantize(self.quantize(weights))

    def quantization_error(self, weights: np.ndarray) -> np.ndarray:
        """Absolute error introduced by a quantise/dequantise round trip."""
        weights = np.asarray(weights, dtype=np.float64)
        return np.abs(self.roundtrip(weights) - np.clip(weights, 0.0, self.full_scale))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightQuantizer(bits={self.bits}, full_scale={self.full_scale})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightQuantizer):
            return NotImplemented
        return self.bits == other.bits and self.full_scale == other.full_scale

    def __hash__(self) -> int:
        return hash((self.bits, self.full_scale))
