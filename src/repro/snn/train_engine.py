"""Vectorized STDP training engine.

PR 1 removed the per-sample Python loop from *inference*
(:mod:`repro.snn.engine`); this module removes it from *training*, the last
big hot path.  Training cannot batch the sample dimension the way inference
does — STDP updates the weights between timesteps, and winner-take-all
learning updates them between samples — so the engine attacks the cost that
actually dominates the sequential trainer instead: the full
``(n_inputs, n_neurons)`` matrix traffic that
:meth:`repro.snn.stdp.STDPRule.step` generates on **every** timestep.

Vectorization strategy
----------------------
``pairwise_stdp``
    The sequential rule materialises two dense outer products, a dense
    add/subtract and a full-matrix clip per timestep — five traversals of
    the weight matrix (plus their temporaries) even when almost nothing
    spiked.  The engine advances the same ``(timestep, input, neuron)``
    trace recursion but applies the updates *sparsely*: potentiation is an
    outer-product column update restricted to the neurons that spiked this
    step, depression a row update restricted to the inputs that spiked, and
    the clip touches only those rows and columns.  The LIF state advance is
    the same specialised elementwise step the batched inference engine uses.
    One dense operation per timestep remains — the current-accumulation
    GEMV, which is identical in both paths.

``spiking_wta`` / ``fast_wta``
    The per-sample winner-take-all update is already cheap; what the
    sequential path pays for is presenting every sample through a fresh
    batch-of-one :class:`~repro.snn.engine.BatchedInferenceEngine` run
    (state allocation, layout transposes, result assembly).  The engine
    inlines a lean single-sample presentation over the same exact
    integer-code GEMM and elementwise LIF expressions.

Label assignment (``"spiking"`` mode)
    Weights are frozen here, so this *is* an inference workload: the engine
    presents the labelled training set in true batches through
    :class:`~repro.snn.engine.BatchedInferenceEngine` instead of one sample
    at a time.

Parity contract
---------------
The engine is **bit-identical** to the sequential trainer
(:meth:`repro.snn.training.TrainingRunner.train_sequential`) — same weights,
same spike counts, same neuron labels, same training history — because every
floating-point operation is either literally the same expression or an
exactness-preserving restriction of one:

* RNG draws (weight init, epoch shuffles, Poisson encodings) happen in the
  same order with the same shapes, so both paths consume identical streams.
* Sparse STDP updates are exact: a non-spiking column receives
  ``w + lr * (trace * 0.0) = w + 0.0 = w`` in the sequential path (bitwise
  identity for the non-negative weights this architecture produces), so
  skipping it changes nothing; a spiking column receives the same
  multiply-then-add sequence in both paths.
* The full-matrix clip is the identity on entries already inside
  ``[w_min, w_max]``.  With ``w_min == 0`` every untouched entry stays in
  range between timesteps (weights enter each presentation from a quantise
  round trip or a clipped normalisation), so clipping only the touched rows
  and columns is exact.  A configuration with ``w_min > 0`` breaks that
  invariant, which is why :meth:`VectorizedTrainingEngine.unsupported_reason`
  routes it to the sequential reference instead.
* Current accumulation during WTA presentations and label assignment uses
  the register-code GEMM of :mod:`repro.snn.synapse`: the sums are exact
  integers, hence bitwise independent of batch shape and dtype.
* Elementwise LIF updates are IEEE operations applied per element; their
  results do not depend on the array shape they are broadcast over (the
  same argument :mod:`repro.snn.engine` relies on).

``tests/test_train_engine_parity.py`` locks the contract down across
learning modes, seeds, dataset sizes and odd label-assignment batch tails.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as _obs
from repro.obs.trace import span
from repro.snn.engine import BatchedInferenceEngine
from repro.snn.kernels import (
    KernelWorkspace,
    LIFStepConfig,
    OperationMasks,
    exact_gemm_dtype,
    exact_scale,
    lif_learning_step,
    register_gemm,
)
from repro.snn.models import resolve_model
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.data.datasets import Dataset
    from repro.snn.training import TrainingConfig

__all__ = [
    "LABEL_ASSIGNMENT_BATCH",
    "VectorizedTrainingEngine",
    "record_training_epoch",
    "wta_sample_update",
]

_LOGGER = get_logger("snn.train_engine")

# Training telemetry (docs/observability.md), shared with the sequential
# trainer in :mod:`repro.snn.training`: epoch throughput per learning mode.
_TRAINING_EPOCHS = _obs.get_registry().counter(
    "softsnn_training_epochs_total",
    "Completed training epochs, by learning mode.",
    labels=("mode",),
)
_TRAINING_EPOCH_SECONDS = _obs.get_registry().histogram(
    "softsnn_training_epoch_seconds",
    "Wall time per training epoch, by learning mode.",
    labels=("mode",),
)


def record_training_epoch(mode: str, seconds: float) -> None:
    """Account one completed training epoch to the epoch counters."""
    if _obs.enabled():
        _TRAINING_EPOCHS.labels(mode=mode).inc()
        _TRAINING_EPOCH_SECONDS.labels(mode=mode).observe(seconds)

#: Samples per :class:`~repro.snn.engine.BatchedInferenceEngine` chunk during
#: spiking label assignment.  Any value yields bit-identical labels (the
#: engine is spike-exact for every batch shape); this is purely a
#: memory/throughput trade-off.
LABEL_ASSIGNMENT_BATCH = 64


def wta_sample_update(
    weights: np.ndarray,
    conscience: np.ndarray,
    wins: np.ndarray,
    flat: np.ndarray,
    responses: np.ndarray,
    config: "TrainingConfig",
) -> np.ndarray:
    """One winner-take-all weight update, shared by both training paths.

    Winner selection, the receptive-field blend toward the presented
    pattern, the conscience (homeostatic bias) bookkeeping, and the
    Diehl & Cook column normalisation — everything in a WTA training step
    except the presentation itself.  :meth:`TrainingRunner._train_wta`
    (sequential) and :meth:`VectorizedTrainingEngine.train_wta` call this
    single implementation, so the two paths cannot drift apart.

    Parameters
    ----------
    weights:
        Current weight matrix ``(n_inputs, n_neurons)``.
    conscience:
        Per-neuron homeostatic bias; mutated in place.
    wins:
        Per-neuron win counter; mutated in place.
    flat:
        The presented pattern, flattened to ``(n_inputs,)``.
    responses:
        Per-neuron responses the winner is selected from.
    config:
        The :class:`~repro.snn.training.TrainingConfig` supplying the
        learning rate, conscience and normalisation hyper-parameters.

    Returns
    -------
    numpy.ndarray
        The updated (column-normalised) weight matrix — a new array.
    """
    winner = int(np.argmax(responses))
    wins[winner] += 1

    pattern_sum = flat.sum()
    if pattern_sum > 0:
        target = flat / pattern_sum * config.weight_norm_total
        weights[:, winner] = (
            (1.0 - config.wta_learning_rate) * weights[:, winner]
            + config.wta_learning_rate * target
        )
    conscience[winner] += config.conscience_increment
    conscience *= config.conscience_decay
    column_sums = weights.sum(axis=0)
    column_sums[column_sums == 0] = 1.0
    return weights * (config.weight_norm_total / column_sums)


class VectorizedTrainingEngine:
    """Bit-exact vectorized implementation of the unsupervised trainer.

    The engine mirrors :class:`repro.snn.training.TrainingRunner`'s three
    learning modes and its spiking label assignment, with the dense
    per-timestep weight traffic replaced by sparse trace-outer-product
    updates (see the module docstring for the parity argument).  Instances
    are cheap; :class:`~repro.snn.training.TrainingRunner.train` constructs
    one per call.

    Parameters
    ----------
    network_config:
        Architecture of the network to train.
    training_config:
        Training-loop hyper-parameters (the
        :class:`~repro.snn.training.TrainingConfig` of the runner).
    """

    def __init__(
        self,
        network_config: NetworkConfig,
        training_config: "TrainingConfig",
    ) -> None:
        self.network_config = network_config
        self.training_config = training_config
        # Neuron model driving the WTA presentation kernel (the pairwise
        # path is LIF-only and guarded by the runner).
        self._model = resolve_model(getattr(network_config, "neuron_model", None))
        # Scratch buffers of the WTA presentation kernel, reused across
        # samples and epochs.
        self._workspace = KernelWorkspace()

    # ------------------------------------------------------------------ #
    # capability probe
    # ------------------------------------------------------------------ #
    @staticmethod
    def unsupported_reason(
        network_config: NetworkConfig, training_config: "TrainingConfig"
    ) -> Optional[str]:
        """Why this configuration must use the sequential path, or ``None``.

        The only unsupported corner is pairwise STDP with a strictly
        positive lower weight bound: the sparse-clip exactness argument
        needs every untouched weight to already satisfy ``w >= w_min``,
        which a post-normalisation matrix does not guarantee when
        ``w_min > 0``.

        Parameters
        ----------
        network_config:
            Candidate network configuration.
        training_config:
            Candidate training configuration.

        Returns
        -------
        str or None
            A human-readable reason to fall back, or ``None`` when the
            vectorized engine reproduces the sequential trainer exactly.
        """
        if (
            training_config.learning_mode == "pairwise_stdp"
            and network_config.stdp.w_min != 0.0
        ):
            return (
                "pairwise STDP with stdp.w_min > 0 breaks the sparse-clip "
                "exactness invariant; using the sequential reference"
            )
        return None

    # ------------------------------------------------------------------ #
    # helpers shared with the sequential trainer
    # ------------------------------------------------------------------ #
    def _epoch_order(
        self, n_samples: int, generator: np.random.Generator
    ) -> np.ndarray:
        """Sample presentation order for one epoch (same RNG use as the runner)."""
        if self.training_config.shuffle:
            return generator.permutation(n_samples)
        return np.arange(n_samples)

    def _build_network(self, generator: np.random.Generator) -> DiehlCookNetwork:
        """Fresh high-precision training network (same RNG draws as sequential)."""
        return DiehlCookNetwork(
            config=self.network_config,
            rng=generator,
            quantizer=self.network_config.make_training_quantizer(),
        )

    # ------------------------------------------------------------------ #
    # pairwise STDP
    # ------------------------------------------------------------------ #
    def train_pairwise(
        self, dataset: "Dataset", generator: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, list]]:
        """Vectorized per-timestep pair STDP over the training set.

        Parameters
        ----------
        dataset:
            Labelled training images.
        generator:
            The training RNG; consumed exactly like the sequential path.

        Returns
        -------
        tuple
            ``(weights, history)`` with ``weights`` of shape
            ``(n_inputs, n_neurons)`` and the per-epoch diagnostic history,
            both bit-identical to the sequential trainer's.
        """
        config = self.training_config
        network = self._build_network(generator)
        network.normalize_weights(config.weight_norm_total)
        quantizer = network.synapses.quantizer
        encoder = network.encoder
        stdp = self.network_config.stdp
        params = self.network_config.neuron_params

        n_inputs = self.network_config.n_inputs
        n_neurons = self.network_config.n_neurons
        weights = network.synapses.weights  # float64 copy, within [0, w_max]

        # Scalar parameters of the specialised (healthy-network) LIF step.
        step_config = LIFStepConfig.from_params(params)
        v_rest = params.v_rest
        v_threshold = params.v_threshold
        theta_plus = params.theta_plus
        theta_decay = params.theta_decay
        pre_decay = stdp.pre_decay
        post_decay = stdp.post_decay
        lr_pre = stdp.learning_rate_pre
        lr_post = stdp.learning_rate_post
        w_min, w_max = stdp.w_min, stdp.w_max

        # Homeostatic threshold persists across samples, as in the
        # sequential LIFNeuronGroup whose reset_state keeps theta.
        theta = np.zeros(n_neurons, dtype=np.float64)
        pre_trace = np.zeros(n_inputs, dtype=np.float64)
        post_trace = np.zeros(n_neurons, dtype=np.float64)

        history: Dict[str, list] = {"epoch_mean_spikes": []}
        for epoch in range(config.epochs):
            epoch_began = time.perf_counter()
            with span("train.epoch", mode="pairwise_stdp", epoch=epoch + 1):
                order = self._epoch_order(len(dataset), generator)
                epoch_spikes: List[int] = []
                for index in order:
                    image, _ = dataset[int(index)]
                    raster = encoder.encode(image.reshape(-1), rng=generator)
                    float_raster = raster.astype(np.float64)
                    timesteps = raster.shape[0]

                    # Per-presentation state reset (LIFNeuronGroup.reset_state
                    # plus STDPRule.reset_traces).
                    v = np.full(n_neurons, v_rest, dtype=np.float64)
                    refractory = np.zeros(n_neurons, dtype=np.int64)
                    pre_trace.fill(0.0)
                    post_trace.fill(0.0)
                    sample_spikes = 0

                    for t in range(timesteps):
                        # The learning-mode GEMV multiplies spikes with the
                        # dense float *training* weights (which change between
                        # timesteps), not register codes — it has no exact
                        # integer decomposition, and both paths evaluate the
                        # identical float64 expression.
                        current = float_raster[t] @ weights

                        # Healthy learning-mode LIF step (kernel layer): the
                        # exact operation sequence of LIFNeuronGroup.step with
                        # every per-operation fault switch collapsed (training
                        # networks are always healthy) and theta adapting
                        # in place.
                        v, refractory, spikes = lif_learning_step(
                            v,
                            refractory,
                            theta,
                            current,
                            step_config,
                            v_threshold,
                            theta_plus,
                            theta_decay,
                        )
                        any_post = spikes.any()

                        # Trace recursion — the same decay-then-set the
                        # sequential STDPRule.step applies.
                        pre_spikes = raster[t]
                        pre_trace *= pre_decay
                        post_trace *= post_decay
                        pre_trace[pre_spikes] = 1.0
                        post_trace[spikes] = 1.0

                        # Sparse outer-product weight updates: potentiation on
                        # the spiking columns, then depression on the spiking
                        # rows, then the clip restricted to the touched slices
                        # (identity everywhere else — see the module
                        # docstring's exactness argument).
                        any_pre = pre_spikes.any()
                        if any_post:
                            cols = np.flatnonzero(spikes)
                            weights[:, cols] += (lr_post * pre_trace)[:, np.newaxis]
                        if any_pre:
                            rows = np.flatnonzero(pre_spikes)
                            weights[rows] -= lr_pre * post_trace
                        if any_post:
                            weights[:, cols] = np.clip(
                                weights[:, cols], w_min, w_max
                            )
                        if any_pre:
                            weights[rows] = np.clip(weights[rows], w_min, w_max)

                        if any_post:
                            sample_spikes += int(spikes.sum())

                    epoch_spikes.append(sample_spikes)

                    # End-of-presentation write-back (set_weights quantise
                    # round trip) followed by the trainer's per-sample
                    # Diehl & Cook weight normalisation — both full-matrix,
                    # both once per sample rather than once per timestep.
                    weights = quantizer.dequantize(quantizer.quantize(weights))
                    column_sums = weights.sum(axis=0)
                    column_sums[column_sums == 0] = 1.0
                    weights = weights * (config.weight_norm_total / column_sums)
                    weights = np.clip(weights, 0.0, quantizer.full_scale)
                    weights = quantizer.dequantize(quantizer.quantize(weights))

            mean_spikes = float(np.mean(epoch_spikes))
            history["epoch_mean_spikes"].append(mean_spikes)
            record_training_epoch(
                "pairwise_stdp", time.perf_counter() - epoch_began
            )
            _LOGGER.info(
                "pairwise_stdp (vectorized) epoch %d/%d: "
                "mean output spikes per sample %.2f",
                epoch + 1,
                config.epochs,
                mean_spikes,
            )
        return weights, history

    # ------------------------------------------------------------------ #
    # winner-take-all
    # ------------------------------------------------------------------ #
    def train_wta(
        self,
        dataset: "Dataset",
        generator: np.random.Generator,
        spiking: bool,
    ) -> Tuple[np.ndarray, Dict[str, list]]:
        """Sample-level winner-take-all learning (spiking or linear winner).

        Parameters
        ----------
        dataset:
            Labelled training images.
        generator:
            The training RNG; consumed exactly like the sequential path.
        spiking:
            ``True`` selects the winner from a full spiking presentation
            (``"spiking_wta"``), ``False`` from the linear expected-rate
            response (``"fast_wta"``).

        Returns
        -------
        tuple
            ``(weights, history)``, bit-identical to the sequential
            trainer's.
        """
        config = self.training_config
        n_inputs = self.network_config.n_inputs
        n_neurons = self.network_config.n_neurons

        network = self._build_network(generator)
        network.normalize_weights(config.weight_norm_total)
        quantizer = network.synapses.quantizer
        encoder = network.encoder
        weights = network.synapses.weights
        conscience = np.zeros(n_neurons, dtype=np.float64)
        wins = np.zeros(n_neurons, dtype=np.int64)

        mode = "spiking_wta" if spiking else "fast_wta"
        history: Dict[str, list] = {"epoch_neurons_used": [], "epoch_mean_spikes": []}
        for epoch in range(config.epochs):
            epoch_began = time.perf_counter()
            with span("train.epoch", mode=mode, epoch=epoch + 1):
                order = self._epoch_order(len(dataset), generator)
                epoch_spikes: List[int] = []
                for index in order:
                    image, _ = dataset[int(index)]
                    flat = image.reshape(-1)
                    if spiking:
                        spike_counts = self._present_wta(
                            flat, weights, conscience, quantizer, encoder, generator
                        )
                        epoch_spikes.append(int(spike_counts.sum()))
                        responses = spike_counts.astype(np.float64)
                        if responses.max() <= 0:
                            # Silent presentation: fall back to the linear
                            # response so every sample still contributes.
                            responses = flat @ weights - conscience
                    else:
                        responses = flat @ weights - conscience
                        epoch_spikes.append(0)
                    weights = wta_sample_update(
                        weights, conscience, wins, flat, responses, config
                    )

            neurons_used = int((wins > 0).sum())
            history["epoch_neurons_used"].append(neurons_used)
            history["epoch_mean_spikes"].append(
                float(np.mean(epoch_spikes)) if epoch_spikes else 0.0
            )
            record_training_epoch(mode, time.perf_counter() - epoch_began)
            _LOGGER.info(
                "%s (vectorized) epoch %d/%d: %d of %d neurons selected as winners",
                mode,
                epoch + 1,
                config.epochs,
                neurons_used,
                n_neurons,
            )
        weights = np.clip(weights, 0.0, self.network_config.stdp.w_max)
        return weights.reshape(n_inputs, n_neurons), history

    def _present_wta(
        self,
        flat: np.ndarray,
        weights: np.ndarray,
        conscience: np.ndarray,
        quantizer,
        encoder,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """One lean spiking presentation; returns per-neuron spike counts.

        Replicates exactly what the sequential winner-take-all step
        observes from ``set_weights`` + ``network.present``: the weights are
        quantised into register codes (with the same range validation
        ``set_weights`` performs), the currents come from the identical
        exact integer-code GEMM, and the LIF state advances through the
        same elementwise expressions — without building a batch-of-one
        :class:`~repro.snn.engine.BatchedInferenceEngine` run per sample.
        """
        if weights.min() < 0:
            raise ValueError("weights must be non-negative")
        if weights.max() > quantizer.full_scale:
            raise ValueError(
                "weights exceed the quantizer full-scale range "
                f"({weights.max():.4f} > {quantizer.full_scale:.4f})"
            )
        params = self.network_config.neuron_params
        n_neurons = self.network_config.n_neurons

        # Same stream shape as the engine's encode_batch on a batch of one.
        raster = encoder.encode_batch(
            flat[np.newaxis, np.newaxis, :], rng=generator
        )[0]
        timesteps = raster.shape[0]

        # Exact integer-code currents for the whole presentation in one
        # GEMM, exactly as the batched engine computes them (the code sums
        # are exact integers, so the evaluation is bitwise identical to
        # the engine's for any operand shape and GEMM dtype).
        gemm_dtype = exact_gemm_dtype(
            self.network_config.n_inputs, quantizer.max_code
        )
        codes = quantizer.quantize(weights).astype(gemm_dtype)
        currents = exact_scale(register_gemm(raster, codes), quantizer.scale)

        # One healthy (1, 1, n_neurons) block through the shared timestep
        # kernel — the same model-dispatched advance the inference engines
        # run, with the fault switches collapsed and the conscience as the
        # threshold bias.
        shape = (1, 1, n_neurons)
        config = self._model.step_config(params)
        threshold = params.v_threshold + conscience
        output = np.zeros((timesteps,) + shape, dtype=bool)
        self._model.advance(
            np.ascontiguousarray(currents.reshape((timesteps,) + shape)),
            output,
            np.full(shape, params.v_rest, dtype=np.float64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=np.int64),
            np.zeros(shape, dtype=bool),
            np.zeros(shape, dtype=bool),
            np.empty(shape, dtype=bool),
            np.empty(shape, dtype=bool),
            OperationMasks.healthy(n_neurons),
            threshold,
            config,
            self._workspace,
        )
        return output.sum(axis=(0, 1, 2), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # label assignment
    # ------------------------------------------------------------------ #
    def assign_labels_spiking(
        self,
        weights: np.ndarray,
        dataset: "Dataset",
        generator: np.random.Generator,
        batch_size: int = LABEL_ASSIGNMENT_BATCH,
    ) -> np.ndarray:
        """Spiking-mode neuron label assignment in true inference batches.

        The trained weights are frozen here, so the labelled training set
        is a plain inference workload: chunks of ``batch_size`` samples run
        through one warm :class:`~repro.snn.engine.BatchedInferenceEngine`.
        Any chunking (including odd tails) yields the labels of the
        sequential per-sample loop bit for bit — the engine is spike-exact
        for every batch shape, and the per-class response accumulation
        happens in dataset order either way.

        Parameters
        ----------
        weights:
            Trained weight matrix ``(n_inputs, n_neurons)``.
        dataset:
            Labelled training images, presented in order (no shuffling).
        generator:
            RNG for the Poisson encodings; consumed exactly like the
            sequential path.
        batch_size:
            Samples per engine chunk (throughput knob, not semantics).

        Returns
        -------
        numpy.ndarray
            Class label per neuron, shape ``(n_neurons,)``, dtype int64.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        config = self.training_config
        n_classes = dataset.n_classes
        n_neurons = self.network_config.n_neurons
        response_sums = np.zeros((n_classes, n_neurons), dtype=np.float64)
        class_counts = np.zeros(n_classes, dtype=np.float64)

        network = self._build_network(generator)
        network.synapses.set_weights(weights)
        engine = BatchedInferenceEngine(network)

        flat_images = dataset.flattened_images()
        labels = dataset.labels
        for start in range(0, len(dataset), batch_size):
            chunk = flat_images[start : start + batch_size]
            result = engine.run(chunk, rng=generator)
            for row, label in enumerate(labels[start : start + len(chunk)]):
                response_sums[label] += result.spike_counts[row]
                class_counts[label] += 1

        class_counts[class_counts == 0] = 1.0
        mean_responses = response_sums / class_counts[:, np.newaxis]
        mean_responses += config.label_smoothing
        return np.argmax(mean_responses, axis=0).astype(np.int64)
