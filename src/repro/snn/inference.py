"""Inference (classification) with a trained, possibly faulty, network.

The inference engine presents test images to a network built from a
:class:`~repro.snn.training.TrainedModel`, converts per-neuron spike counts
into class votes through the neuron labels, and reports accuracy.  All
SoftSNN experiments run through this engine: fault injection only changes
the network the engine is given (corrupted registers and/or neuron operation
status), and mitigation only changes the two hooks the engine forwards on —
an ``effective_weights`` override and a ``step_monitor``.

Datasets are classified in configurable chunks through the vectorized
:class:`~repro.snn.engine.BatchedInferenceEngine`; the original per-image
loop is kept as :meth:`InferenceEngine.evaluate_sequential`, the reference
the batched path is verified against spike-for-spike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.snn.engine import (
    DEFAULT_BATCH_SIZE,
    BatchedInferenceEngine,
    MapParallelEngine,
    MapRow,
)
from repro.snn.kernels import autotune_batch_size
from repro.snn.network import DiehlCookNetwork
from repro.snn.neuron import LIFNeuronGroup, LIFParameters
from repro.snn.quantization import WeightQuantizer
from repro.utils.rng import RNGLike, resolve_rng

__all__ = ["InferenceResult", "InferenceEngine", "class_indicator", "evaluate_rows"]

StepMonitor = Callable[[LIFNeuronGroup], None]

#: Sample-chunk cap of the map-parallel evaluation path.  Results are
#: bit-identical for any chunking (the faulty-reset latch carry reproduces
#: the sequential per-sample semantics exactly), so the chunk is a pure
#: performance knob: shorter chunks shorten the suffixes the latch fix-up
#: re-simulates and keep the fused (timesteps, rows, chunk, neurons)
#: current block cache-resident.
MAP_PARALLEL_CHUNK_SIZE = 16


def class_indicator(neuron_labels: np.ndarray) -> np.ndarray:
    """Return the ``(n_neurons, n_classes)`` class-indicator vote matrix.

    Multiplying integer-valued spike counts by this matrix in float64 sums
    them exactly, so matmul-based classification is bitwise identical to
    summing each class's neuron counts per sample.
    """
    neuron_labels = np.asarray(neuron_labels, dtype=np.int64)
    n_neurons = int(neuron_labels.size)
    n_classes = int(neuron_labels.max()) + 1 if neuron_labels.size else 0
    indicator = np.zeros((n_neurons, n_classes), dtype=np.float64)
    if n_classes:
        indicator[np.arange(n_neurons), neuron_labels] = 1.0
    return indicator


@dataclass
class InferenceResult:
    """Aggregate outcome of classifying a dataset.

    Attributes
    ----------
    predictions:
        Predicted class id per sample.
    labels:
        Ground-truth class id per sample.
    spike_counts:
        Per-sample, per-neuron output spike counts, shape
        ``(n_samples, n_neurons)``.
    total_input_spikes:
        Total number of input spikes delivered across the whole dataset
        (activity statistic consumed by the energy model).
    """

    predictions: np.ndarray
    labels: np.ndarray
    spike_counts: np.ndarray
    total_input_spikes: int = 0
    per_sample_output_spikes: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.predictions = np.asarray(self.predictions, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.spike_counts = np.asarray(self.spike_counts, dtype=np.int64)
        if self.predictions.shape != self.labels.shape:
            raise ValueError("predictions and labels must have the same shape")

    @property
    def n_samples(self) -> int:
        """Number of classified samples."""
        return int(self.predictions.size)

    @property
    def accuracy(self) -> float:
        """Fraction of correctly classified samples, in ``[0, 1]``."""
        if self.n_samples == 0:
            return 0.0
        return float(np.mean(self.predictions == self.labels))

    @property
    def accuracy_percent(self) -> float:
        """Accuracy expressed in percent, as reported in the paper's figures."""
        return 100.0 * self.accuracy

    def confusion_matrix(self, n_classes: Optional[int] = None) -> np.ndarray:
        """Return the ``(n_classes, n_classes)`` confusion matrix."""
        if n_classes is None:
            upper = 0
            if self.labels.size:
                upper = int(max(self.labels.max(), self.predictions.max()))
            n_classes = upper + 1
        matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
        for truth, predicted in zip(self.labels, self.predictions):
            matrix[truth, predicted] += 1
        return matrix

    @property
    def mean_output_spikes_per_sample(self) -> float:
        """Average number of excitatory output spikes per classified sample."""
        if self.spike_counts.size == 0:
            return 0.0
        return float(self.spike_counts.sum(axis=1).mean())


class InferenceEngine:
    """Classify datasets with a (possibly fault-injected) network.

    Parameters
    ----------
    network:
        The network to run; typically built via
        :meth:`repro.snn.training.TrainedModel.build_network` and then
        corrupted by a fault injector.
    neuron_labels:
        Class label assigned to each excitatory neuron during training.
    """

    def __init__(self, network: DiehlCookNetwork, neuron_labels: np.ndarray) -> None:
        neuron_labels = np.asarray(neuron_labels, dtype=np.int64)
        if neuron_labels.shape != (network.n_neurons,):
            raise ValueError(
                f"neuron_labels must have shape ({network.n_neurons},), "
                f"got {neuron_labels.shape}"
            )
        self.network = network
        self.neuron_labels = neuron_labels
        self._n_classes = int(neuron_labels.max()) + 1 if neuron_labels.size else 0
        # Class-indicator matrix turning batched spike counts into votes
        # with one exact (integer-valued) matmul.
        self._class_indicator = class_indicator(neuron_labels)

    # ------------------------------------------------------------------ #
    def classify_counts(self, spike_counts: np.ndarray) -> int:
        """Convert one sample's per-neuron spike counts into a class vote.

        The predicted class is the one whose assigned neurons produced the
        most spikes in total; ties resolve to the lowest class id, and a
        completely silent network predicts class 0 (an arbitrary but
        deterministic fallback, counted as an error unless the truth is 0).
        """
        spike_counts = np.asarray(spike_counts, dtype=np.float64)
        if spike_counts.shape != (self.network.n_neurons,):
            raise ValueError(
                f"spike_counts must have shape ({self.network.n_neurons},), "
                f"got {spike_counts.shape}"
            )
        votes = np.zeros(self._n_classes, dtype=np.float64)
        for cls in range(self._n_classes):
            mask = self.neuron_labels == cls
            if mask.any():
                votes[cls] = spike_counts[mask].sum()
        return int(np.argmax(votes))

    def classify_sample(
        self,
        image: np.ndarray,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[StepMonitor] = None,
    ) -> tuple:
        """Classify a single image; returns ``(prediction, SampleResult)``."""
        result = self.network.present(
            image,
            learning=False,
            rng=rng,
            effective_weights=effective_weights,
            step_monitor=step_monitor,
        )
        return self.classify_counts(result.spike_counts), result

    def classify_batch(self, spike_counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_counts` for ``(n_samples, n_neurons)``.

        The class-indicator matmul sums integer-valued spike counts in
        float64, which is exact, so the predictions are bitwise identical
        to calling :meth:`classify_counts` per row.
        """
        spike_counts = np.asarray(spike_counts, dtype=np.float64)
        if spike_counts.ndim != 2 or spike_counts.shape[1] != self.network.n_neurons:
            raise ValueError(
                "spike_counts must have shape "
                f"(n_samples, {self.network.n_neurons}), got {spike_counts.shape}"
            )
        votes = spike_counts @ self._class_indicator
        return np.argmax(votes, axis=1).astype(np.int64)

    def evaluate(
        self,
        dataset: Dataset,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[StepMonitor] = None,
        batch_size: Optional[int] = None,
        raster: Optional[np.ndarray] = None,
    ) -> InferenceResult:
        """Classify every sample of *dataset* and aggregate the results.

        The dataset is processed in chunks of ``batch_size`` samples
        (default :data:`repro.snn.engine.DEFAULT_BATCH_SIZE`) through the
        batched engine; the faulty-reset latch state is carried from chunk
        to chunk so the sequential sample-order semantics are preserved,
        and the neuron group is left in the same final state the per-image
        loop (:meth:`evaluate_sequential`) would leave it in.

        When *raster* is given it must be the externally Poisson-encoded
        presentation tensor ``(n_samples, timesteps, n_inputs)`` for the
        whole dataset (for example a zero-copy shared-memory view published
        by the campaign orchestrator); the engine then consumes it directly
        instead of encoding ``dataset.images``, and *rng* is left
        untouched.  Passing the raster the engine would have encoded from
        *rng* yields bit-identical results.

        When ``batch_size`` is ``None`` the chunk size comes from
        :func:`repro.snn.kernels.autotune_batch_size` for this network's
        geometry (results are bit-identical for any chunking, so the timed
        choice never changes outputs); an explicit ``batch_size`` always
        wins over the autotuner.
        """
        if len(dataset) == 0:
            raise ValueError("evaluation dataset must not be empty")
        if batch_size is None:
            batch_size = autotune_batch_size(
                self.network.n_neurons, self.network.n_inputs
            )
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        generator = resolve_rng(rng)
        n_samples = len(dataset)
        if raster is not None and raster.shape[0] != n_samples:
            raise ValueError(
                f"raster covers {raster.shape[0]} samples, dataset has "
                f"{n_samples}"
            )
        predictions = np.zeros(n_samples, dtype=np.int64)
        spike_counts = np.zeros((n_samples, self.network.n_neurons), dtype=np.int64)
        per_sample_output: List[int] = []
        total_input_spikes = 0

        engine = BatchedInferenceEngine(self.network)
        latch = self.network.neurons.reset_fault_latched.copy()
        last_result = None
        for start in range(0, n_samples, batch_size):
            stop = min(start + batch_size, n_samples)
            if raster is not None:
                result = engine.run_encoded(
                    raster[start:stop],
                    effective_weights=effective_weights,
                    step_monitor=step_monitor,
                    initial_reset_latch=latch,
                    sample_offset=start,
                )
            else:
                result = engine.run(
                    dataset.images[start:stop],
                    rng=generator,
                    effective_weights=effective_weights,
                    step_monitor=step_monitor,
                    initial_reset_latch=latch,
                    sample_offset=start,
                )
            latch = result.final_reset_latch
            predictions[start:stop] = self.classify_batch(result.spike_counts)
            spike_counts[start:stop] = result.spike_counts
            per_sample_output.extend(
                int(count) for count in result.spike_counts.sum(axis=1)
            )
            total_input_spikes += int(result.input_spike_counts.sum())
            last_result = result

        self.network.sync_neuron_state(last_result)
        return InferenceResult(
            predictions=predictions,
            labels=dataset.labels.copy(),
            spike_counts=spike_counts,
            total_input_spikes=total_input_spikes,
            per_sample_output_spikes=per_sample_output,
        )

    def evaluate_sequential(
        self,
        dataset: Dataset,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[StepMonitor] = None,
    ) -> InferenceResult:
        """Classify *dataset* through the per-image reference loop.

        This is the pre-batching code path, kept as the ground truth the
        batched :meth:`evaluate` is verified against (and for step monitors
        that require the sequential :class:`~repro.snn.neuron.LIFNeuronGroup`
        protocol).
        """
        if len(dataset) == 0:
            raise ValueError("evaluation dataset must not be empty")
        generator = resolve_rng(rng)
        predictions = np.zeros(len(dataset), dtype=np.int64)
        spike_counts = np.zeros((len(dataset), self.network.n_neurons), dtype=np.int64)
        per_sample_output = []
        total_input_spikes = 0

        for index, (image, _) in enumerate(dataset):
            sample = self.network.present_sequential(
                image,
                learning=False,
                rng=generator,
                effective_weights=effective_weights,
                step_monitor=step_monitor,
            )
            predictions[index] = self.classify_counts(sample.spike_counts)
            spike_counts[index] = sample.spike_counts
            per_sample_output.append(sample.total_output_spikes)
            total_input_spikes += sample.input_spike_count

        return InferenceResult(
            predictions=predictions,
            labels=dataset.labels.copy(),
            spike_counts=spike_counts,
            total_input_spikes=total_input_spikes,
            per_sample_output_spikes=per_sample_output,
        )


def evaluate_rows(
    rows: Sequence[MapRow],
    rasters: Sequence[np.ndarray],
    neuron_labels: np.ndarray,
    labels: np.ndarray,
    quantizer: WeightQuantizer,
    params: LIFParameters,
    theta: np.ndarray,
    batch_size: Optional[int] = None,
    model: Optional[object] = None,
) -> List[InferenceResult]:
    """Classify pre-encoded rasters through many compute engines at once.

    This is the map-parallel counterpart of :meth:`InferenceEngine.evaluate`:
    each :class:`~repro.snn.engine.MapRow` stands for one (possibly
    fault-injected, possibly mitigated) compute engine, and all rows advance
    together through the :class:`~repro.snn.engine.MapParallelEngine` in
    sample chunks of ``batch_size``, carrying each row's faulty-reset latch
    from chunk to chunk.  Per row, the returned
    :class:`InferenceResult` is bit-identical to evaluating that row's
    engine alone over the same rasters.

    Parameters
    ----------
    rows:
        Compute-engine rows to evaluate (see
        :class:`~repro.snn.engine.MapRow`).
    rasters:
        One boolean spike raster ``(n_samples, timesteps, n_inputs)`` per
        encoding group referenced by the rows.
    neuron_labels:
        Class label of each excitatory neuron (shared by all rows — they
        all simulate the same trained model).
    labels:
        Ground-truth class per sample, copied into every result.
    quantizer / params / theta:
        Register format, LIF parameters and frozen adaptive thresholds
        shared by all rows.
    batch_size:
        Upper bound on the samples advanced per chunk; ``None`` uses the
        engine default.  The effective chunk is additionally capped at
        :data:`MAP_PARALLEL_CHUNK_SIZE` — a pure performance choice, the
        results are bit-identical for any chunking.
    model:
        Neuron model every row simulates (registered name,
        :class:`~repro.snn.models.NeuronModel` instance, or ``None`` for
        the default LIF), forwarded to the map-parallel engine.
    """
    if not rows:
        raise ValueError("at least one row is required")
    rasters = [np.asarray(raster) for raster in rasters]
    if not rasters:
        raise ValueError("at least one raster group is required")
    n_samples = int(rasters[0].shape[0])
    for raster in rasters:
        if raster.shape[0] != n_samples:
            raise ValueError("all raster groups must cover the same samples")
    if n_samples == 0:
        raise ValueError("evaluation rasters must not be empty")
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch_size = min(batch_size, MAP_PARALLEL_CHUNK_SIZE)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (n_samples,):
        raise ValueError(
            f"labels must have shape ({n_samples},), got {labels.shape}"
        )

    engine = MapParallelEngine(
        rows, quantizer=quantizer, params=params, theta=theta, model=model
    )
    n_rows = engine.n_rows
    n_neurons = engine.n_neurons
    indicator = class_indicator(neuron_labels)

    predictions = np.zeros((n_rows, n_samples), dtype=np.int64)
    spike_counts = np.zeros((n_rows, n_samples, n_neurons), dtype=np.int64)
    group_input_counts = np.zeros((len(rasters), n_samples), dtype=np.int64)

    latch = np.zeros((n_rows, n_neurons), dtype=bool)
    for start in range(0, n_samples, batch_size):
        stop = min(start + batch_size, n_samples)
        chunk = engine.run_encoded(
            [raster[start:stop] for raster in rasters],
            initial_reset_latch=latch,
        )
        latch = chunk.final_reset_latch
        spike_counts[:, start:stop] = chunk.spike_counts
        votes = chunk.spike_counts.astype(np.float64) @ indicator
        predictions[:, start:stop] = np.argmax(votes, axis=-1).astype(np.int64)
        group_input_counts[:, start:stop] = chunk.input_spike_counts

    results: List[InferenceResult] = []
    for m, row in enumerate(rows):
        results.append(
            InferenceResult(
                predictions=predictions[m],
                labels=labels.copy(),
                spike_counts=spike_counts[m],
                total_input_spikes=int(group_input_counts[row.raster_index].sum()),
                per_sample_output_spikes=[
                    int(count) for count in spike_counts[m].sum(axis=1)
                ],
            )
        )
    return results
