"""Leaky integrate-and-fire (LIF) neuron group with explicit hardware operations.

The paper's fault model (Section 2.2) distinguishes four operations inside
each neuron's hardware: the membrane-potential *increase*, the *leak*, the
*reset*, and *spike generation*.  A soft error can knock out any one of them
for a given neuron until its parameters are reloaded.  To support that fault
model the simulator does not fold the LIF update into a single opaque
expression — each of the four operations is an identifiable stage that can
be disabled per neuron through :class:`NeuronOperationStatus`.

The neuron group also exposes the ``Vmem >= Vth`` comparator output after
every step.  That signal is what the paper's neuron-protection hardware
monitors: if it stays asserted for two or more consecutive cycles the reset
logic is deemed faulty and spike generation is gated off
(:class:`repro.core.bound_and_protect.NeuronProtection`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LIFParameters", "NeuronOperationStatus", "LIFNeuronGroup"]


@dataclass(frozen=True)
class LIFParameters:
    """Parameters of the LIF neuron model used throughout the library.

    The defaults are calibrated for 28x28 inputs encoded with
    :class:`repro.snn.encoding.PoissonEncoder` defaults and per-neuron input
    weight sums normalised to ``~2.0`` (see
    :class:`repro.snn.training.TrainingConfig`).

    Attributes
    ----------
    v_rest:
        Resting membrane potential; the leak pulls the potential toward it.
    v_reset:
        Potential the membrane is set to right after a spike.
    v_threshold:
        Base firing threshold (the adaptive component ``theta`` is added on
        top of it).
    tau_membrane:
        Membrane leak time constant in timesteps; per-step decay factor is
        ``exp(-1 / tau_membrane)``.
    refractory_period:
        Number of timesteps a neuron ignores input after spiking.
    theta_plus:
        Adaptive-threshold increment added each time the neuron spikes
        (homeostasis, as in Diehl & Cook).
    tau_theta:
        Decay time constant of the adaptive threshold, in timesteps.
    v_min:
        Lower clamp for the membrane potential (lateral inhibition cannot
        drive the potential arbitrarily negative).
    inhibition_strength:
        Amount subtracted from all *other* neurons' membrane potentials when
        a neuron spikes (direct lateral inhibition, Fig. 1a of the paper).
    """

    v_rest: float = 0.0
    v_reset: float = 0.0
    v_threshold: float = 1.2
    tau_membrane: float = 20.0
    refractory_period: int = 3
    theta_plus: float = 0.1
    tau_theta: float = 2000.0
    v_min: float = -2.0
    inhibition_strength: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.v_threshold - self.v_reset, "v_threshold - v_reset")
        check_positive(self.tau_membrane, "tau_membrane")
        check_positive(self.tau_theta, "tau_theta")
        check_non_negative(self.theta_plus, "theta_plus")
        check_non_negative(self.inhibition_strength, "inhibition_strength")
        if self.refractory_period < 0:
            raise ValueError(
                f"refractory_period must be non-negative, got {self.refractory_period}"
            )
        if self.v_min > self.v_reset:
            raise ValueError("v_min must not exceed v_reset")

    @property
    def membrane_decay(self) -> float:
        """Per-timestep multiplicative decay factor of the membrane potential."""
        return float(np.exp(-1.0 / self.tau_membrane))

    @property
    def theta_decay(self) -> float:
        """Per-timestep multiplicative decay factor of the adaptive threshold."""
        return float(np.exp(-1.0 / self.tau_theta))


@dataclass
class NeuronOperationStatus:
    """Per-neuron health of the four LIF hardware operations.

    ``True`` means the operation works; ``False`` means a soft error has
    corrupted it (Section 2.2 of the paper).  The default state is fully
    healthy.  Instances are produced by
    :class:`repro.faults.neuron_faults.NeuronFaultInjector` and consumed by
    :class:`LIFNeuronGroup`.
    """

    n_neurons: int
    vmem_increase_ok: np.ndarray = field(default=None)
    vmem_leak_ok: np.ndarray = field(default=None)
    vmem_reset_ok: np.ndarray = field(default=None)
    spike_generation_ok: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.n_neurons <= 0:
            raise ValueError(f"n_neurons must be positive, got {self.n_neurons}")
        for name in (
            "vmem_increase_ok",
            "vmem_leak_ok",
            "vmem_reset_ok",
            "spike_generation_ok",
        ):
            value = getattr(self, name)
            if value is None:
                value = np.ones(self.n_neurons, dtype=bool)
            else:
                value = np.asarray(value, dtype=bool)
                if value.shape != (self.n_neurons,):
                    raise ValueError(
                        f"{name} must have shape ({self.n_neurons},), got {value.shape}"
                    )
                value = value.copy()
            setattr(self, name, value)

    # ------------------------------------------------------------------ #
    @classmethod
    def healthy(cls, n_neurons: int) -> "NeuronOperationStatus":
        """Return a fully healthy status for *n_neurons* neurons."""
        return cls(n_neurons=n_neurons)

    def copy(self) -> "NeuronOperationStatus":
        """Return an independent copy of this status."""
        return NeuronOperationStatus(
            n_neurons=self.n_neurons,
            vmem_increase_ok=self.vmem_increase_ok.copy(),
            vmem_leak_ok=self.vmem_leak_ok.copy(),
            vmem_reset_ok=self.vmem_reset_ok.copy(),
            spike_generation_ok=self.spike_generation_ok.copy(),
        )

    @property
    def any_faulty(self) -> bool:
        """True when at least one operation of one neuron is faulty."""
        return bool(
            (~self.vmem_increase_ok).any()
            or (~self.vmem_leak_ok).any()
            or (~self.vmem_reset_ok).any()
            or (~self.spike_generation_ok).any()
        )

    def faulty_neuron_count(self) -> int:
        """Number of neurons with at least one faulty operation."""
        faulty = (
            ~self.vmem_increase_ok
            | ~self.vmem_leak_ok
            | ~self.vmem_reset_ok
            | ~self.spike_generation_ok
        )
        return int(faulty.sum())


class LIFNeuronGroup:
    """A population of LIF neurons sharing parameters.

    The group holds the mutable simulation state (membrane potentials,
    refractory counters, adaptive thresholds, the consecutive
    above-threshold counter used by neuron protection) and advances it one
    timestep at a time with :meth:`step`.

    Parameters
    ----------
    n_neurons:
        Population size.
    params:
        Shared :class:`LIFParameters`.
    operation_status:
        Optional per-neuron fault status; healthy by default.
    """

    def __init__(
        self,
        n_neurons: int,
        params: Optional[LIFParameters] = None,
        operation_status: Optional[NeuronOperationStatus] = None,
    ) -> None:
        if n_neurons <= 0:
            raise ValueError(f"n_neurons must be positive, got {n_neurons}")
        self.n_neurons = int(n_neurons)
        self.params = params if params is not None else LIFParameters()
        if operation_status is None:
            operation_status = NeuronOperationStatus.healthy(self.n_neurons)
        if operation_status.n_neurons != self.n_neurons:
            raise ValueError(
                "operation_status sized for "
                f"{operation_status.n_neurons} neurons, expected {self.n_neurons}"
            )
        self.operation_status = operation_status

        # Mutable state, initialised by reset_state().
        self.v = np.full(self.n_neurons, self.params.v_rest, dtype=np.float64)
        self.theta = np.zeros(self.n_neurons, dtype=np.float64)
        self.refractory_remaining = np.zeros(self.n_neurons, dtype=np.int64)
        self.comparator_output = np.zeros(self.n_neurons, dtype=bool)
        self.consecutive_above_threshold = np.zeros(self.n_neurons, dtype=np.int64)
        self.spike_disabled = np.zeros(self.n_neurons, dtype=bool)
        self.reset_fault_latched = np.zeros(self.n_neurons, dtype=bool)
        self.last_spikes = np.zeros(self.n_neurons, dtype=bool)

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #
    def reset_state(self, reset_theta: bool = False) -> None:
        """Reset per-sample dynamic state (between input presentations).

        The adaptive threshold ``theta`` persists across samples by default
        because it implements slow homeostasis; pass ``reset_theta=True`` to
        clear it as well (e.g. when reusing a group for a fresh network).
        The spike-protection latch (``spike_disabled``) is cleared — the
        protection hardware re-detects the fault within two cycles of the
        next presentation — but the *faulty-reset* latch is not: a stuck
        ``Vmem reset`` cannot clear the membrane between samples either, so
        the burst persists until the neuron's parameters are replaced
        (i.e. until a new operation status is installed).
        """
        self.v.fill(self.params.v_rest)
        self.refractory_remaining.fill(0)
        self.comparator_output.fill(False)
        self.consecutive_above_threshold.fill(0)
        self.spike_disabled.fill(False)
        self.last_spikes.fill(False)
        if self.reset_fault_latched.any():
            # The stuck membrane stays at (or above) the firing threshold.
            self.v = np.where(
                self.reset_fault_latched,
                np.maximum(self.v, self.effective_threshold),
                self.v,
            )
        if reset_theta:
            self.theta.fill(0.0)

    def set_operation_status(self, status: NeuronOperationStatus) -> None:
        """Install a new per-neuron fault status (e.g. from the fault injector).

        Installing a status models reloading the neuron parameters, which is
        what clears a latched faulty-reset burst in the paper's fault model.
        """
        if status.n_neurons != self.n_neurons:
            raise ValueError(
                f"status sized for {status.n_neurons} neurons, expected {self.n_neurons}"
            )
        self.operation_status = status
        self.reset_fault_latched.fill(False)

    def disable_spiking(self, neuron_mask: np.ndarray) -> None:
        """Latch off spike generation for the masked neurons (neuron protection)."""
        neuron_mask = np.asarray(neuron_mask, dtype=bool)
        if neuron_mask.shape != (self.n_neurons,):
            raise ValueError(
                f"neuron_mask must have shape ({self.n_neurons},), got {neuron_mask.shape}"
            )
        self.spike_disabled |= neuron_mask

    @property
    def effective_threshold(self) -> np.ndarray:
        """Current firing threshold including the adaptive component."""
        return self.params.v_threshold + self.theta

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def step(
        self,
        input_current: np.ndarray,
        learning: bool = False,
    ) -> np.ndarray:
        """Advance the population by one timestep.

        Parameters
        ----------
        input_current:
            Per-neuron input current accumulated by the synapse crossbar for
            this timestep (shape ``(n_neurons,)``).
        learning:
            When True the adaptive threshold is updated on spikes; inference
            runs keep ``theta`` frozen, matching the accelerator whose
            learning unit is idle during inference.

        Returns
        -------
        numpy.ndarray
            Boolean array of the spikes *emitted on the output wire* this
            timestep (after any spike-generation faults or protection gating).
        """
        input_current = np.asarray(input_current, dtype=np.float64)
        if input_current.shape != (self.n_neurons,):
            raise ValueError(
                f"input_current must have shape ({self.n_neurons},), "
                f"got {input_current.shape}"
            )
        params = self.params
        status = self.operation_status

        # (2) Vmem leak: decay toward the resting potential.  A faulty leak
        # operation leaves the membrane potential undamped.
        decayed = params.v_rest + (self.v - params.v_rest) * params.membrane_decay
        self.v = np.where(status.vmem_leak_ok, decayed, self.v)

        # (1) Vmem increase: integrate the input current, except for neurons
        # in their refractory period or with a faulty increase operation.
        active = self.refractory_remaining <= 0
        integrate = active & status.vmem_increase_ok
        self.v = self.v + np.where(integrate, input_current, 0.0)
        self.v = np.maximum(self.v, params.v_min)

        # (4) Spike generation: the comparator asserts when Vmem >= Vth.
        threshold = self.effective_threshold
        self.comparator_output = active & (self.v >= threshold)

        # Track how long the comparator has stayed asserted; this is the
        # signal the paper's neuron-protection hardware monitors.
        self.consecutive_above_threshold = np.where(
            self.comparator_output, self.consecutive_above_threshold + 1, 0
        )

        internal_spikes = self.comparator_output.copy()
        output_spikes = (
            internal_spikes & status.spike_generation_ok & ~self.spike_disabled
        )

        # (3) Vmem reset: neurons whose reset logic works return to v_reset
        # and enter their refractory period.  A faulty-reset neuron keeps its
        # supra-threshold membrane potential: per the paper's fault model its
        # Vmem "stays greater or equal to the threshold potential", so once it
        # has crossed the threshold it bursts continuously until its
        # parameters are reloaded (neither leak nor lateral inhibition can
        # bring the stuck comparator input back down).
        reset_now = internal_spikes & status.vmem_reset_ok
        self.v = np.where(reset_now, params.v_reset, self.v)
        self.refractory_remaining = np.where(
            reset_now,
            params.refractory_period,
            np.maximum(self.refractory_remaining - 1, 0),
        )
        self.reset_fault_latched |= internal_spikes & ~status.vmem_reset_ok

        # Homeostatic threshold adaptation (training only).
        if learning:
            self.theta *= params.theta_decay
            self.theta += params.theta_plus * internal_spikes.astype(np.float64)

        # Direct lateral inhibition: every *output* spike inhibits all other
        # neurons.  Using output spikes matches the hardware, where the
        # inhibition is driven by the spike wire.
        if params.inhibition_strength > 0 and output_spikes.any():
            n_spiking = int(output_spikes.sum())
            inhibition = params.inhibition_strength * (
                n_spiking - output_spikes.astype(np.float64)
            )
            self.v = np.maximum(self.v - inhibition, params.v_min)

        # Keep the membrane of latched faulty-reset neurons pinned at (or
        # above) the threshold so the burst persists, as in the paper's model.
        if self.reset_fault_latched.any():
            self.v = np.where(
                self.reset_fault_latched, np.maximum(self.v, threshold), self.v
            )

        self.last_spikes = output_spikes
        return output_spikes

    def run(
        self,
        input_currents: np.ndarray,
        learning: bool = False,
    ) -> np.ndarray:
        """Run :meth:`step` for every row of ``input_currents``.

        Returns the full boolean spike raster of shape
        ``(timesteps, n_neurons)``.
        """
        input_currents = np.asarray(input_currents, dtype=np.float64)
        if input_currents.ndim != 2 or input_currents.shape[1] != self.n_neurons:
            raise ValueError(
                "input_currents must have shape (timesteps, n_neurons), got "
                f"{input_currents.shape}"
            )
        spikes = np.zeros(input_currents.shape, dtype=bool)
        for t in range(input_currents.shape[0]):
            spikes[t] = self.step(input_currents[t], learning=learning)
        return spikes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LIFNeuronGroup(n_neurons={self.n_neurons}, "
            f"faulty={self.operation_status.faulty_neuron_count()})"
        )
