"""Pluggable neuron-model layer: the spec the engines dispatch through.

The paper's question — does fault tolerance survive rising soft-error
rates — was originally answered for exactly one neuron model, because the
Diehl&Cook-style LIF update was baked into the kernels, all three engines
and the trainer.  This module lifts the dynamics behind a small
name-registered spec so the same fault-injection, mitigation and campaign
machinery runs over a *zoo* of models:

``lif`` (default)
    The existing leaky integrate-and-fire dynamics, dispatching verbatim
    to :func:`repro.snn.kernels.lif_advance` — bit-identical to the
    pre-refactor behaviour by construction (numpy and numba backends).
``cuba_lif``
    A current-based (CUBA) leaky LIF with a ``du/dv``-style synaptic
    current state, after lava's floating-point LIF process model
    (:func:`repro.snn.kernels.cuba_advance`).
``fixed_point_lif``
    A bit-accurate fixed-point LIF with mantissa/exponent weight scaling
    and truncating-shift leak, after lava's Loihi fixed-point model
    (:func:`repro.snn.kernels.fixed_point_advance`).

The spec contract
-----------------
A :class:`NeuronModel` owns scalar hyper-parameters and one method,
:meth:`~NeuronModel.advance`, with exactly the signature of
:func:`~repro.snn.kernels.lif_advance`: it advances ``(rows, batch, n)``
state over all timesteps **strictly in place** (never swapping the state
arrays, so live step hooks keep observing them) and performs no
per-timestep allocation beyond the caller's :class:`~repro.snn.kernels.
KernelWorkspace`.  The per-timestep update must decompose into the
paper's four faultable hardware operations — Vmem increase, Vmem leak,
Vmem reset, spike generation — gated by the caller's
:class:`~repro.snn.kernels.OperationMasks`, and must honour the
faulty-reset latch, the lateral-inhibition term, the latched-membrane
pinning and the neuron-protection ``triggers``.  Models observing that
contract compose with every mitigation technique unchanged.

Models are registered by name (:func:`register_model`); the snapshot
sidecar records the name through ``NetworkConfig.neuron_model``, so the
model registry and serving layer load and serve any registered model
transparently — and sidecars written before this layer existed simply
default to ``lif``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

import numpy as np

from repro.snn.kernels import (
    KernelWorkspace,
    LIFStepConfig,
    OperationMasks,
    cuba_advance,
    fixed_point_advance,
    lif_advance,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.snn.neuron import LIFParameters

__all__ = [
    "DEFAULT_NEURON_MODEL",
    "NeuronModel",
    "LIFModel",
    "CurrentLIFModel",
    "FixedPointLIFModel",
    "available_models",
    "get_model",
    "register_model",
    "resolve_model",
]

#: Name of the model every pre-existing configuration resolves to.
DEFAULT_NEURON_MODEL = "lif"


class NeuronModel:
    """Base spec of a registered neuron model.

    Subclasses set :attr:`name` and implement :meth:`advance`; the default
    :meth:`step_config` extracts the scalar LIF parameter subset every
    shipped model consumes (models with extra hyper-parameters carry them
    on the instance, not in the config).
    """

    #: Registry name; also what ``NetworkConfig.neuron_model`` records.
    name: str = ""

    def step_config(self, params: "LIFParameters") -> LIFStepConfig:
        """Scalar per-timestep configuration derived from *params*."""
        return LIFStepConfig.from_params(params)

    def advance(
        self,
        currents: np.ndarray,
        output: np.ndarray,
        v: np.ndarray,
        refractory: np.ndarray,
        counter: np.ndarray,
        disabled: np.ndarray,
        latched: np.ndarray,
        comparator: np.ndarray,
        spikes: np.ndarray,
        masks: OperationMasks,
        threshold: np.ndarray,
        config: LIFStepConfig,
        workspace: KernelWorkspace,
        triggers: Optional[np.ndarray] = None,
        step_hook: Optional[Callable[[], None]] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Advance ``(rows, batch, n)`` state over all timesteps in place.

        The signature — and the in-place / four-faultable-operations
        contract — is exactly that of
        :func:`repro.snn.kernels.lif_advance`; see the module docstring.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class LIFModel(NeuronModel):
    """The default Diehl&Cook-style LIF: a verbatim ``lif_advance`` dispatch.

    Delegating unchanged to the existing kernel (numpy reference plus the
    optional numba twin) is what makes the refactor bit-identical for
    every pre-existing configuration.
    """

    name = "lif"

    def advance(self, *args, **kwargs) -> None:
        """Dispatch to :func:`repro.snn.kernels.lif_advance` unchanged."""
        lif_advance(*args, **kwargs)


class CurrentLIFModel(NeuronModel):
    """Current-based (CUBA) leaky LIF with ``du/dv`` synaptic-current state.

    Parameters
    ----------
    current_decay:
        Per-timestep retention factor of the synaptic current ``u``
        (lava's ``1 - du``); each step ``u = u * current_decay + input``
        and the membrane integrates ``u``.
    """

    name = "cuba_lif"

    def __init__(self, current_decay: float = 0.5) -> None:
        if not 0.0 <= current_decay < 1.0:
            raise ValueError(
                f"current_decay must lie in [0, 1), got {current_decay}"
            )
        self.current_decay = float(current_decay)

    def advance(self, *args, **kwargs) -> None:
        """Dispatch to :func:`repro.snn.kernels.cuba_advance` (numpy only)."""
        cuba_advance(*args, current_decay=self.current_decay, **kwargs)


class FixedPointLIFModel(NeuronModel):
    """Bit-accurate fixed-point LIF with mantissa/exponent weight scaling.

    Parameters
    ----------
    weight_exp:
        Shared exponent of the fixed-point grid: membranes and currents
        are integer mantissas scaled by ``2**weight_exp``.
    decay_bits:
        Precision of the leak factor, applied as a truncating
        ``>> decay_bits`` shift (12 on Loihi).
    """

    name = "fixed_point_lif"

    def __init__(self, weight_exp: int = 6, decay_bits: int = 12) -> None:
        if weight_exp < 0 or weight_exp > 16:
            raise ValueError(f"weight_exp must lie in [0, 16], got {weight_exp}")
        if decay_bits < 1 or decay_bits > 24:
            raise ValueError(f"decay_bits must lie in [1, 24], got {decay_bits}")
        self.weight_exp = int(weight_exp)
        self.decay_bits = int(decay_bits)

    def advance(self, *args, **kwargs) -> None:
        """Dispatch to :func:`repro.snn.kernels.fixed_point_advance`."""
        fixed_point_advance(
            *args,
            weight_exp=self.weight_exp,
            decay_bits=self.decay_bits,
            **kwargs,
        )


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, NeuronModel] = {}


def register_model(model: NeuronModel, replace: bool = False) -> NeuronModel:
    """Register *model* under its :attr:`~NeuronModel.name`.

    Registration makes the name valid everywhere a model is selected:
    ``NetworkConfig.neuron_model``, the campaign ``models`` axis and the
    CLI ``--models`` flag.  Re-registering an existing name requires
    ``replace=True`` — silent shadowing of a shipped model would corrupt
    parity guarantees.
    """
    if not model.name:
        raise ValueError("model must define a non-empty name")
    if model.name in _REGISTRY and not replace:
        raise ValueError(
            f"neuron model {model.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[model.name] = model
    return model


def get_model(name: str) -> NeuronModel:
    """Return the registered model *name*; raise with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown neuron model {name!r}; available: "
            f"{', '.join(available_models())}"
        ) from None


def available_models() -> List[str]:
    """Sorted names of every registered neuron model."""
    return sorted(_REGISTRY)


def resolve_model(model: Union[None, str, NeuronModel]) -> NeuronModel:
    """Normalise a model selector: ``None`` → default, name → lookup."""
    if model is None:
        return get_model(DEFAULT_NEURON_MODEL)
    if isinstance(model, NeuronModel):
        return model
    return get_model(str(model))


register_model(LIFModel())
register_model(CurrentLIFModel())
register_model(FixedPointLIFModel())
