"""Spiking-neural-network simulation substrate.

This subpackage implements, from scratch and in pure NumPy, the SNN that the
paper evaluates: a fully-connected, single-excitatory-layer network with
direct lateral inhibition, leaky integrate-and-fire (LIF) neurons, adaptive
firing thresholds and pair-based spike-timing-dependent plasticity (STDP) —
the Diehl & Cook style architecture shown in Fig. 1(a) of the paper and
simulated by the authors with BindsNET.

Design notes
------------
* The four LIF hardware operations the paper's fault model targets —
  membrane-potential *increase*, *leak*, *reset* and *spike generation* —
  are modelled explicitly and can each be disabled per neuron via
  :class:`~repro.snn.neuron.NeuronOperationStatus`.  That is the hook used by
  the fault-injection subpackage (:mod:`repro.faults`).
* Weights live in :class:`~repro.snn.synapse.SynapseMatrix`, which pairs the
  float view used by the simulator with the 8-bit register view used by the
  accelerator hardware model; bit flips are injected into the register view.
* Training (STDP + label assignment) and inference are deliberately separate
  (:mod:`repro.snn.training`, :mod:`repro.snn.inference`): all experiments in
  the paper inject faults only during inference on a pre-trained network.
* Inference is batched: :mod:`repro.snn.engine` advances whole chunks of
  samples per timestep with ``(batch, n_neurons)`` state arrays and one
  weight-reusing matrix multiplication, spike-for-spike equivalent to the
  sequential per-timestep loop it replaces (which remains available as the
  verification reference).
* Both primitives of every hot path — the exact integer register-code GEMM
  and the in-place LIF timestep advance — live once, in
  :mod:`repro.snn.kernels`, with an optional numba backend
  (``SOFTSNN_KERNEL_BACKEND``) and batch-size autotuning.
"""

from repro.snn.encoding import PoissonEncoder
from repro.snn.engine import (
    DEFAULT_BATCH_SIZE,
    BatchedInferenceEngine,
    BatchedLIFState,
    BatchResult,
)
from repro.snn.inference import InferenceEngine, InferenceResult
from repro.snn.kernels import autotune_batch_size, get_backend, numba_available
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.snn.neuron import LIFNeuronGroup, LIFParameters, NeuronOperationStatus
from repro.snn.quantization import WeightQuantizer
from repro.snn.stdp import STDPConfig, STDPRule
from repro.snn.synapse import SynapseMatrix
from repro.snn.train_engine import VectorizedTrainingEngine
from repro.snn.training import (
    STDPTrainer,
    TrainedModel,
    TrainingConfig,
    TrainingRunner,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchResult",
    "BatchedInferenceEngine",
    "BatchedLIFState",
    "DiehlCookNetwork",
    "InferenceEngine",
    "InferenceResult",
    "LIFNeuronGroup",
    "LIFParameters",
    "NetworkConfig",
    "NeuronOperationStatus",
    "PoissonEncoder",
    "STDPConfig",
    "STDPRule",
    "STDPTrainer",
    "SynapseMatrix",
    "TrainedModel",
    "TrainingConfig",
    "TrainingRunner",
    "VectorizedTrainingEngine",
    "WeightQuantizer",
    "autotune_batch_size",
    "get_backend",
    "numba_available",
]
