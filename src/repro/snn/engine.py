"""Batched vectorized inference engine.

Every accuracy number in the paper reproduction comes from presenting test
images through the per-timestep loop of
:meth:`repro.snn.network.DiehlCookNetwork.present`.  That loop is exact but
slow: each timestep performs a memory-bound vector-matrix product (the full
weight matrix is re-streamed from memory for every sample) plus a couple of
dozen small NumPy operations whose fixed overhead dominates at the
population sizes the paper sweeps.  This module batches the *sample*
dimension instead: all neuron state becomes ``(batch, n_neurons)`` arrays
(:class:`BatchedLIFState`), the input currents of a whole batch are produced
by one ``(batch * timesteps, n_inputs) @ (n_inputs, n_neurons)`` matrix
multiplication that reuses the weight matrix across samples, and every LIF
hardware operation of :meth:`repro.snn.neuron.LIFNeuronGroup.step` — leak,
increase, reset, spike generation, each with its per-neuron fault switch —
is advanced for all samples at once.

Parity contract
---------------
The engine reproduces the sequential path *spike for spike* under a fixed
RNG:

* Poisson encoding draws the same underlying random stream: one
  ``generator.random((batch, timesteps, n_inputs))`` call consumes exactly
  the same values, in the same order, as the per-sample
  ``generator.random((timesteps, n_inputs))`` calls of the sequential loop.
* Every state update is the same elementwise expression the sequential
  :meth:`~repro.snn.neuron.LIFNeuronGroup.step` evaluates, broadcast over
  the batch dimension; elementwise IEEE operations are bitwise independent
  of the array shape.  The only operation that is not bitwise reproducible
  is the BLAS matrix multiplication that accumulates input currents (BLAS
  kernels reassociate the reduction differently for different operand
  shapes), which can move a membrane potential by an ULP; a spike decision
  changes only if the potential lands within one ULP of the threshold,
  which the parity test suite verifies does not happen on the evaluated
  workloads.

Sequential fault semantics
--------------------------
The paper's *faulty reset* latch couples samples: a neuron whose
``Vmem reset`` operation is broken keeps bursting across sample boundaries
once it has crossed the threshold, so sample ``i`` starts with the latches
accumulated over samples ``0..i-1``.  A naive parallel batch would lose that
ordering.  The engine therefore runs an optimistic parallel pass assuming
the latch state at batch entry, detects the first sample that latched a new
neuron, accepts every sample up to and including it (their assumed latch
state was correct), and re-simulates only the remainder with the updated
latch state.  Each iteration permanently accepts at least one sample and
the latch set is bounded by the number of faulty-reset neurons, so the
fix-up converges in at most ``min(batch, faulty_reset_neurons + 1)``
passes; fault-free batches take exactly one pass with no bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.snn.neuron import LIFParameters, NeuronOperationStatus
from repro.utils.rng import RNGLike, resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.snn.network import DiehlCookNetwork

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchedLIFState",
    "BatchResult",
    "BatchedInferenceEngine",
]

#: Default number of samples advanced together by the batched engine.
DEFAULT_BATCH_SIZE = 64

#: Step-monitor hook signature of the batched engine.  The monitor is called
#: after every timestep with the live :class:`BatchedLIFState`; latching
#: ``spike_disabled`` through :meth:`BatchedLIFState.disable_spiking` gates
#: spike generation from the next timestep on, exactly like the sequential
#: ``step_monitor`` hook.
BatchStepMonitor = Callable[["BatchedLIFState"], None]


@dataclass
class BatchedLIFState:
    """All mutable LIF neuron state for a batch of concurrent samples.

    This is the batched counterpart of the per-sample state held by
    :class:`repro.snn.neuron.LIFNeuronGroup`: every array that is ``(n,)``
    there is ``(batch, n)`` here, advanced for all samples at once.  The
    adaptive threshold ``theta`` stays ``(n,)`` because inference keeps it
    frozen (the learning unit is idle), so all samples share it.

    Attributes
    ----------
    params:
        Shared LIF parameters.
    operation_status:
        Per-neuron health of the four hardware operations (shared by all
        samples: soft errors corrupt the physical neuron, not the sample).
    theta:
        Adaptive-threshold component, shape ``(n_neurons,)``.
    sample_indices:
        Global dataset index of each batch row; used by batched step
        monitors to attribute protection events to samples.
    v / refractory_remaining / comparator_output /
    consecutive_above_threshold / spike_disabled / reset_fault_latched /
    last_spikes:
        The batched ``(batch, n_neurons)`` state arrays, with the same
        meaning as their :class:`~repro.snn.neuron.LIFNeuronGroup`
        counterparts.
    """

    params: LIFParameters
    operation_status: NeuronOperationStatus
    theta: np.ndarray
    sample_indices: np.ndarray
    v: np.ndarray
    refractory_remaining: np.ndarray
    comparator_output: np.ndarray
    consecutive_above_threshold: np.ndarray
    spike_disabled: np.ndarray
    reset_fault_latched: np.ndarray
    last_spikes: np.ndarray

    # ------------------------------------------------------------------ #
    @classmethod
    def initial(
        cls,
        params: LIFParameters,
        operation_status: NeuronOperationStatus,
        theta: np.ndarray,
        sample_indices: np.ndarray,
        initial_reset_latch: Optional[np.ndarray] = None,
    ) -> "BatchedLIFState":
        """Fresh per-sample state, as after ``LIFNeuronGroup.reset_state``.

        ``initial_reset_latch`` carries the faulty-reset latches accumulated
        by the samples processed *before* this batch; latched neurons start
        with their membrane pinned at (or above) the firing threshold, as in
        the sequential :meth:`~repro.snn.neuron.LIFNeuronGroup.reset_state`.
        """
        batch = int(np.asarray(sample_indices).size)
        n = operation_status.n_neurons
        theta = np.asarray(theta, dtype=np.float64)
        v = np.full((batch, n), params.v_rest, dtype=np.float64)
        if initial_reset_latch is None:
            latched = np.zeros((batch, n), dtype=bool)
        else:
            initial_reset_latch = np.asarray(initial_reset_latch, dtype=bool)
            latched = np.broadcast_to(initial_reset_latch, (batch, n)).copy()
            if latched.any():
                threshold = params.v_threshold + theta
                v = np.where(latched, np.maximum(v, threshold), v)
        return cls(
            params=params,
            operation_status=operation_status,
            theta=theta,
            sample_indices=np.asarray(sample_indices, dtype=np.int64),
            v=v,
            refractory_remaining=np.zeros((batch, n), dtype=np.int64),
            comparator_output=np.zeros((batch, n), dtype=bool),
            consecutive_above_threshold=np.zeros((batch, n), dtype=np.int64),
            spike_disabled=np.zeros((batch, n), dtype=bool),
            reset_fault_latched=latched,
            last_spikes=np.zeros((batch, n), dtype=bool),
        )

    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        """Number of samples advanced concurrently."""
        return int(self.v.shape[0])

    @property
    def n_neurons(self) -> int:
        """Population size."""
        return int(self.v.shape[1])

    @property
    def effective_threshold(self) -> np.ndarray:
        """Current firing threshold including the adaptive component."""
        return self.params.v_threshold + self.theta

    def disable_spiking(self, neuron_mask: np.ndarray) -> None:
        """Latch off spike generation for the masked (sample, neuron) pairs.

        Accepts either a ``(batch, n_neurons)`` mask or an ``(n_neurons,)``
        mask applied to every sample (mirroring the sequential
        :meth:`~repro.snn.neuron.LIFNeuronGroup.disable_spiking`).
        """
        neuron_mask = np.asarray(neuron_mask, dtype=bool)
        if neuron_mask.shape not in (
            (self.n_neurons,),
            (self.batch_size, self.n_neurons),
        ):
            raise ValueError(
                "neuron_mask must have shape "
                f"({self.n_neurons},) or ({self.batch_size}, {self.n_neurons}), "
                f"got {neuron_mask.shape}"
            )
        self.spike_disabled |= neuron_mask


@dataclass
class BatchResult:
    """Outcome of running one batch through the engine.

    Attributes
    ----------
    output_spikes:
        Boolean output-spike raster, shape ``(batch, timesteps, n_neurons)``.
    spike_counts:
        Per-sample, per-neuron output spike counts ``(batch, n_neurons)``.
    input_spike_counts:
        Number of input spikes delivered per sample (activity statistic for
        the energy model).
    final_reset_latch:
        Faulty-reset latch state ``(n_neurons,)`` after the *last* sample of
        the batch, accounting for the sequential sample order; feed it as
        ``initial_reset_latch`` of the next batch.
    final_state:
        Per-sample final neuron state (each row taken from the simulation
        pass in which the sample was accepted).
    simulation_passes:
        Number of parallel passes the latch fix-up needed (1 when no new
        faulty-reset latch fired).
    """

    output_spikes: np.ndarray
    spike_counts: np.ndarray
    input_spike_counts: np.ndarray
    final_reset_latch: np.ndarray
    final_state: BatchedLIFState
    simulation_passes: int = 1

    @property
    def batch_size(self) -> int:
        """Number of samples in the batch."""
        return int(self.output_spikes.shape[0])


class BatchedInferenceEngine:
    """Advance a whole batch of samples through a network per timestep.

    The engine reads the network's weights, neuron parameters, adaptive
    thresholds and fault status at :meth:`run` time, so it can be
    constructed once and reused across fault injections or weight updates.

    Parameters
    ----------
    network:
        The (possibly fault-injected) network to run.  Only inference is
        supported — training keeps the sequential per-timestep loop because
        STDP updates the weights between timesteps.
    """

    def __init__(self, network: "DiehlCookNetwork") -> None:
        self.network = network

    # ------------------------------------------------------------------ #
    def run(
        self,
        images: np.ndarray,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[BatchStepMonitor] = None,
        initial_reset_latch: Optional[np.ndarray] = None,
        sample_offset: int = 0,
        carry_reset_latch: bool = True,
    ) -> BatchResult:
        """Encode and classify a batch of images.

        Parameters
        ----------
        images:
            Batch of grayscale images: ``(batch, height, width)``,
            ``(batch, n_inputs)`` flattened, or a single 2-D image (treated
            as a batch of one).
        rng:
            Seed or generator for the Poisson encoding.  Encoding consumes
            the generator's stream exactly as the sequential per-sample
            loop would, so paired comparisons stay aligned.
        effective_weights:
            Optional substitute weight matrix used for current accumulation
            (the Bound-and-Protect weight-bounding hook).
        step_monitor:
            Optional callable invoked with the :class:`BatchedLIFState`
            after every timestep (the neuron-protection hook).
        initial_reset_latch:
            Faulty-reset latches carried over from previously processed
            samples; defaults to the network's current latch state.
        sample_offset:
            Global dataset index of the first batch row (used to label
            rows for batched step monitors).
        carry_reset_latch:
            See :meth:`run_encoded`.
        """
        network = self.network
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 2 and images.shape[1] != network.n_inputs:
            images = images[np.newaxis, ...]
        if images.ndim == 2:
            flat = images
        elif images.ndim == 3:
            flat = images.reshape(images.shape[0], -1)
        else:
            raise ValueError(
                "images must be (batch, height, width), (batch, n_inputs) or "
                f"a single 2-D image, got shape {images.shape}"
            )
        if flat.shape[1] != network.n_inputs:
            raise ValueError(
                f"images have {flat.shape[1]} pixels but the network expects "
                f"{network.n_inputs} inputs"
            )
        generator = resolve_rng(rng)
        rasters = network.encoder.encode_batch(
            flat[:, np.newaxis, :], rng=generator
        )
        return self.run_encoded(
            rasters,
            effective_weights=effective_weights,
            step_monitor=step_monitor,
            initial_reset_latch=initial_reset_latch,
            sample_offset=sample_offset,
            carry_reset_latch=carry_reset_latch,
        )

    # ------------------------------------------------------------------ #
    def run_encoded(
        self,
        rasters: np.ndarray,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[BatchStepMonitor] = None,
        initial_reset_latch: Optional[np.ndarray] = None,
        sample_offset: int = 0,
        carry_reset_latch: bool = True,
    ) -> BatchResult:
        """Run pre-encoded spike rasters of shape ``(batch, timesteps, n_inputs)``.

        Exposed separately so benchmarks and re-executions can reuse
        encodings; see :meth:`run` for the other parameters.

        ``carry_reset_latch`` selects between the two sample-coupling
        semantics.  ``True`` (default) reproduces the paper's sequential
        presentation order: a neuron whose faulty ``Vmem reset`` latches
        during sample ``i`` keeps bursting for samples ``i+1..``, resolved by
        the optimistic re-simulation fix-up.  ``False`` treats every row as
        an *independent presentation* that starts from ``initial_reset_latch``
        — the online-serving semantics, where unrelated requests coalesced
        into one micro-batch must not influence each other.  In that mode the
        result is bitwise identical to running each row in its own
        batch-of-one call, and ``final_reset_latch`` returns the entry latch
        unchanged.
        """
        network = self.network
        neurons = network.neurons
        params = neurons.params
        status = neurons.operation_status
        n_neurons = network.n_neurons

        rasters = np.asarray(rasters)
        if rasters.ndim != 3 or rasters.shape[2] != network.n_inputs:
            raise ValueError(
                "rasters must have shape (batch, timesteps, n_inputs), got "
                f"{rasters.shape}"
            )
        batch, timesteps, n_inputs = rasters.shape
        if batch == 0:
            raise ValueError("batch must not be empty")

        operator = network.synapses.current_operator(effective_weights)

        # One compute-bound GEMM produces the input currents of every
        # (sample, timestep) pair, reusing the weight matrix across the
        # whole batch; the sequential path re-streams it every timestep.
        flat_spikes = rasters.reshape(batch * timesteps, n_inputs)
        currents = operator.compute(flat_spikes).reshape(batch, timesteps, n_neurons)
        # Timestep-major layout so each step touches one contiguous block.
        currents = np.ascontiguousarray(currents.transpose(1, 0, 2))

        if initial_reset_latch is None:
            initial_reset_latch = neurons.reset_fault_latched
        latch = np.asarray(initial_reset_latch, dtype=bool).copy()
        has_reset_faults = bool((~status.vmem_reset_ok).any()) and carry_reset_latch

        sample_indices = sample_offset + np.arange(batch, dtype=np.int64)
        output = np.zeros((timesteps, batch, n_neurons), dtype=bool)
        final = BatchedLIFState.initial(
            params, status, neurons.theta, sample_indices, latch
        )

        start = 0
        passes = 0
        while start < batch:
            state = BatchedLIFState.initial(
                params, status, neurons.theta, sample_indices[start:], latch
            )
            self._simulate(state, currents[:, start:, :], output[:, start:, :], step_monitor)
            passes += 1

            if has_reset_faults:
                new_events = state.reset_fault_latched & ~latch
                event_rows = new_events.any(axis=1)
            else:
                event_rows = None
            if event_rows is None or not event_rows.any():
                accepted = slice(0, batch - start)
            else:
                # Samples up to and including the first one that latched a
                # new neuron saw the correct entry latch state; everything
                # after it must re-run with the updated latches.
                first_event = int(np.argmax(event_rows))
                accepted = slice(0, first_event + 1)
                latch = latch | new_events[first_event]

            self._accept_rows(final, state, start, accepted)
            if step_monitor is not None and hasattr(step_monitor, "commit_batch"):
                step_monitor.commit_batch(
                    state.sample_indices[accepted],
                    state.spike_disabled[accepted],
                )
            start += accepted.stop

        output_spikes = np.ascontiguousarray(output.transpose(1, 0, 2))
        return BatchResult(
            output_spikes=output_spikes,
            spike_counts=output_spikes.sum(axis=1, dtype=np.int64),
            input_spike_counts=rasters.sum(axis=(1, 2), dtype=np.int64),
            final_reset_latch=latch,
            final_state=final,
            simulation_passes=passes,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _accept_rows(
        final: BatchedLIFState,
        state: BatchedLIFState,
        start: int,
        rows: slice,
    ) -> None:
        """Copy the accepted rows of a simulation pass into the final state."""
        target = slice(start + rows.start, start + rows.stop)
        final.v[target] = state.v[rows]
        final.refractory_remaining[target] = state.refractory_remaining[rows]
        final.comparator_output[target] = state.comparator_output[rows]
        final.consecutive_above_threshold[target] = (
            state.consecutive_above_threshold[rows]
        )
        final.spike_disabled[target] = state.spike_disabled[rows]
        final.reset_fault_latched[target] = state.reset_fault_latched[rows]
        final.last_spikes[target] = state.last_spikes[rows]

    def _simulate(
        self,
        state: BatchedLIFState,
        currents: np.ndarray,
        output: np.ndarray,
        step_monitor: Optional[BatchStepMonitor],
    ) -> None:
        """One parallel pass over all timesteps for the rows in *state*.

        Each timestep performs, for the whole batch at once, exactly the
        operation sequence of :meth:`repro.snn.neuron.LIFNeuronGroup.step`;
        the per-operation fault switches are specialised away when every
        neuron is healthy for that operation (a pure boolean identity, so
        the arithmetic is unchanged).
        """
        params = state.params
        status = state.operation_status
        v_rest = params.v_rest
        v_reset = params.v_reset
        v_min = params.v_min
        decay = params.membrane_decay
        period = params.refractory_period
        inhibition_strength = params.inhibition_strength
        threshold = state.effective_threshold

        leak_ok = status.vmem_leak_ok
        increase_ok = status.vmem_increase_ok
        reset_ok = status.vmem_reset_ok
        spike_ok = status.spike_generation_ok
        all_leak = bool(leak_ok.all())
        all_increase = bool(increase_ok.all())
        all_reset = bool(reset_ok.all())
        all_spike = bool(spike_ok.all())

        timesteps = currents.shape[0]
        for t in range(timesteps):
            # (2) Vmem leak.
            decayed = v_rest + (state.v - v_rest) * decay
            state.v = decayed if all_leak else np.where(leak_ok, decayed, state.v)

            # (1) Vmem increase.
            active = state.refractory_remaining <= 0
            integrate = active if all_increase else (active & increase_ok)
            state.v = state.v + np.where(integrate, currents[t], 0.0)
            state.v = np.maximum(state.v, v_min)

            # (4) Spike generation: comparator and protection counter.
            comparator = active & (state.v >= threshold)
            state.comparator_output = comparator
            state.consecutive_above_threshold = np.where(
                comparator, state.consecutive_above_threshold + 1, 0
            )
            internal = comparator
            if all_spike:
                spikes = internal & ~state.spike_disabled
            else:
                spikes = internal & spike_ok & ~state.spike_disabled

            # (3) Vmem reset and refractory entry; faulty resets latch.
            reset_now = internal if all_reset else (internal & reset_ok)
            state.v = np.where(reset_now, v_reset, state.v)
            state.refractory_remaining = np.where(
                reset_now,
                period,
                np.maximum(state.refractory_remaining - 1, 0),
            )
            if not all_reset:
                state.reset_fault_latched |= internal & ~reset_ok

            # Direct lateral inhibition, per sample.
            if inhibition_strength > 0 and spikes.any():
                n_spiking = spikes.sum(axis=1, keepdims=True)
                inhibition = inhibition_strength * (
                    n_spiking - spikes.astype(np.float64)
                )
                state.v = np.maximum(state.v - inhibition, v_min)

            # Keep latched faulty-reset membranes pinned at the threshold.
            if not all_reset and state.reset_fault_latched.any():
                state.v = np.where(
                    state.reset_fault_latched,
                    np.maximum(state.v, threshold),
                    state.v,
                )

            state.last_spikes = spikes
            output[t] = spikes
            if step_monitor is not None:
                step_monitor(state)
