"""Batched vectorized inference engine.

Every accuracy number in the paper reproduction comes from presenting test
images through the per-timestep loop of
:meth:`repro.snn.network.DiehlCookNetwork.present`.  That loop is exact but
slow: each timestep performs a memory-bound vector-matrix product (the full
weight matrix is re-streamed from memory for every sample) plus a couple of
dozen small NumPy operations whose fixed overhead dominates at the
population sizes the paper sweeps.  This module batches the *sample*
dimension instead: all neuron state becomes ``(batch, n_neurons)`` arrays
(:class:`BatchedLIFState`), the input currents of a whole batch are produced
by one ``(batch * timesteps, n_inputs) @ (n_inputs, n_neurons)`` matrix
multiplication that reuses the weight matrix across samples, and every LIF
hardware operation of :meth:`repro.snn.neuron.LIFNeuronGroup.step` — leak,
increase, reset, spike generation, each with its per-neuron fault switch —
is advanced for all samples at once.

Parity contract
---------------
The engine reproduces the sequential path *spike for spike* under a fixed
RNG:

* Poisson encoding draws the same underlying random stream: one
  ``generator.random((batch, timesteps, n_inputs))`` call consumes exactly
  the same values, in the same order, as the per-sample
  ``generator.random((timesteps, n_inputs))`` calls of the sequential loop.
* Every state update is the same elementwise expression the sequential
  :meth:`~repro.snn.neuron.LIFNeuronGroup.step` evaluates, broadcast over
  the batch dimension; elementwise IEEE operations are bitwise independent
  of the array shape.  The only operation that is not bitwise reproducible
  is the BLAS matrix multiplication that accumulates input currents (BLAS
  kernels reassociate the reduction differently for different operand
  shapes), which can move a membrane potential by an ULP; a spike decision
  changes only if the potential lands within one ULP of the threshold,
  which the parity test suite verifies does not happen on the evaluated
  workloads.

Sequential fault semantics
--------------------------
The paper's *faulty reset* latch couples samples: a neuron whose
``Vmem reset`` operation is broken keeps bursting across sample boundaries
once it has crossed the threshold, so sample ``i`` starts with the latches
accumulated over samples ``0..i-1``.  A naive parallel batch would lose that
ordering.  The engine therefore runs an optimistic parallel pass assuming
the latch state at batch entry, detects the first sample that latched a new
neuron, accepts every sample up to and including it (their assumed latch
state was correct), and re-simulates only the remainder with the updated
latch state.  Each iteration permanently accepts at least one sample and
the latch set is bounded by the number of faulty-reset neurons, so the
fix-up converges in at most ``min(batch, faulty_reset_neurons + 1)``
passes; fault-free batches take exactly one pass with no bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.snn.kernels import (
    DEFAULT_BATCH_SIZE,
    NO_PROTECTION_TRIGGER,
    BoundingCorrection,
    KernelWorkspace,
    OperationMasks,
    apply_bounding_correction,
    bounding_correction_terms,
    exact_gemm_dtype,
    exact_scale,
    plan_bounding_correction,
    register_gemm,
)
from repro.snn.models import NeuronModel, resolve_model
from repro.obs import metrics as _obs
from repro.snn.neuron import LIFParameters, NeuronOperationStatus
from repro.snn.quantization import WeightQuantizer
from repro.snn.synapse import BoundedWeightRule
from repro.utils.rng import RNGLike, resolve_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.snn.network import DiehlCookNetwork

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchedLIFState",
    "BatchResult",
    "BatchedInferenceEngine",
    "MapRow",
    "MapParallelState",
    "MapParallelResult",
    "MapParallelEngine",
]

#: Step-monitor hook signature of the batched engine.  The monitor is called
#: after every timestep with the live :class:`BatchedLIFState`; latching
#: ``spike_disabled`` through :meth:`BatchedLIFState.disable_spiking` gates
#: spike generation from the next timestep on, exactly like the sequential
#: ``step_monitor`` hook.
BatchStepMonitor = Callable[["BatchedLIFState"], None]

# Engine telemetry (docs/observability.md): realized batch sizes per engine
# and latch-driven extra simulation passes — the cost of the faulty-reset
# fix-up loop, invisible before this counter existed.
_ENGINE_BATCHES = _obs.get_registry().counter(
    "softsnn_engine_batches_total",
    "Encoded batches executed, by engine.",
    labels=("engine",),
)
_ENGINE_BATCH_SIZE = _obs.get_registry().histogram(
    "softsnn_engine_batch_size",
    "Realized sample-batch sizes per run_encoded call, by engine.",
    labels=("engine",),
    buckets=_obs.log_buckets(1.0, 10000.0, per_decade=4),
)
_ENGINE_RESIM = _obs.get_registry().counter(
    "softsnn_engine_latch_resimulations_total",
    "Extra simulation passes forced by the faulty-reset latch fix-up.",
    labels=("engine",),
)


@dataclass
class BatchedLIFState:
    """All mutable LIF neuron state for a batch of concurrent samples.

    This is the batched counterpart of the per-sample state held by
    :class:`repro.snn.neuron.LIFNeuronGroup`: every array that is ``(n,)``
    there is ``(batch, n)`` here, advanced for all samples at once.  The
    adaptive threshold ``theta`` stays ``(n,)`` because inference keeps it
    frozen (the learning unit is idle), so all samples share it.

    Attributes
    ----------
    params:
        Shared LIF parameters.
    operation_status:
        Per-neuron health of the four hardware operations (shared by all
        samples: soft errors corrupt the physical neuron, not the sample).
    theta:
        Adaptive-threshold component, shape ``(n_neurons,)``.
    sample_indices:
        Global dataset index of each batch row; used by batched step
        monitors to attribute protection events to samples.
    v / refractory_remaining / comparator_output /
    consecutive_above_threshold / spike_disabled / reset_fault_latched /
    last_spikes:
        The batched ``(batch, n_neurons)`` state arrays, with the same
        meaning as their :class:`~repro.snn.neuron.LIFNeuronGroup`
        counterparts.
    """

    params: LIFParameters
    operation_status: NeuronOperationStatus
    theta: np.ndarray
    sample_indices: np.ndarray
    v: np.ndarray
    refractory_remaining: np.ndarray
    comparator_output: np.ndarray
    consecutive_above_threshold: np.ndarray
    spike_disabled: np.ndarray
    reset_fault_latched: np.ndarray
    last_spikes: np.ndarray

    # ------------------------------------------------------------------ #
    @classmethod
    def initial(
        cls,
        params: LIFParameters,
        operation_status: NeuronOperationStatus,
        theta: np.ndarray,
        sample_indices: np.ndarray,
        initial_reset_latch: Optional[np.ndarray] = None,
    ) -> "BatchedLIFState":
        """Fresh per-sample state, as after ``LIFNeuronGroup.reset_state``.

        ``initial_reset_latch`` carries the faulty-reset latches accumulated
        by the samples processed *before* this batch; latched neurons start
        with their membrane pinned at (or above) the firing threshold, as in
        the sequential :meth:`~repro.snn.neuron.LIFNeuronGroup.reset_state`.
        """
        batch = int(np.asarray(sample_indices).size)
        n = operation_status.n_neurons
        theta = np.asarray(theta, dtype=np.float64)
        v = np.full((batch, n), params.v_rest, dtype=np.float64)
        if initial_reset_latch is None:
            latched = np.zeros((batch, n), dtype=bool)
        else:
            initial_reset_latch = np.asarray(initial_reset_latch, dtype=bool)
            latched = np.broadcast_to(initial_reset_latch, (batch, n)).copy()
            if latched.any():
                threshold = params.v_threshold + theta
                v = np.where(latched, np.maximum(v, threshold), v)
        return cls(
            params=params,
            operation_status=operation_status,
            theta=theta,
            sample_indices=np.asarray(sample_indices, dtype=np.int64),
            v=v,
            refractory_remaining=np.zeros((batch, n), dtype=np.int64),
            comparator_output=np.zeros((batch, n), dtype=bool),
            consecutive_above_threshold=np.zeros((batch, n), dtype=np.int64),
            spike_disabled=np.zeros((batch, n), dtype=bool),
            reset_fault_latched=latched,
            last_spikes=np.zeros((batch, n), dtype=bool),
        )

    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        """Number of samples advanced concurrently."""
        return int(self.v.shape[0])

    @property
    def n_neurons(self) -> int:
        """Population size."""
        return int(self.v.shape[1])

    @property
    def effective_threshold(self) -> np.ndarray:
        """Current firing threshold including the adaptive component."""
        return self.params.v_threshold + self.theta

    def disable_spiking(self, neuron_mask: np.ndarray) -> None:
        """Latch off spike generation for the masked (sample, neuron) pairs.

        Accepts either a ``(batch, n_neurons)`` mask or an ``(n_neurons,)``
        mask applied to every sample (mirroring the sequential
        :meth:`~repro.snn.neuron.LIFNeuronGroup.disable_spiking`).
        """
        neuron_mask = np.asarray(neuron_mask, dtype=bool)
        if neuron_mask.shape not in (
            (self.n_neurons,),
            (self.batch_size, self.n_neurons),
        ):
            raise ValueError(
                "neuron_mask must have shape "
                f"({self.n_neurons},) or ({self.batch_size}, {self.n_neurons}), "
                f"got {neuron_mask.shape}"
            )
        self.spike_disabled |= neuron_mask


@dataclass
class BatchResult:
    """Outcome of running one batch through the engine.

    Attributes
    ----------
    output_spikes:
        Boolean output-spike raster, shape ``(batch, timesteps, n_neurons)``.
    spike_counts:
        Per-sample, per-neuron output spike counts ``(batch, n_neurons)``.
    input_spike_counts:
        Number of input spikes delivered per sample (activity statistic for
        the energy model).
    final_reset_latch:
        Faulty-reset latch state ``(n_neurons,)`` after the *last* sample of
        the batch, accounting for the sequential sample order; feed it as
        ``initial_reset_latch`` of the next batch.
    final_state:
        Per-sample final neuron state (each row taken from the simulation
        pass in which the sample was accepted).
    simulation_passes:
        Number of parallel passes the latch fix-up needed (1 when no new
        faulty-reset latch fired).
    """

    output_spikes: np.ndarray
    spike_counts: np.ndarray
    input_spike_counts: np.ndarray
    final_reset_latch: np.ndarray
    final_state: BatchedLIFState
    simulation_passes: int = 1

    @property
    def batch_size(self) -> int:
        """Number of samples in the batch."""
        return int(self.output_spikes.shape[0])


class BatchedInferenceEngine:
    """Advance a whole batch of samples through a network per timestep.

    The engine reads the network's weights, neuron parameters, adaptive
    thresholds and fault status at :meth:`run` time, so it can be
    constructed once and reused across fault injections or weight updates.

    Parameters
    ----------
    network:
        The (possibly fault-injected) network to run.  Only inference is
        supported — training keeps the sequential per-timestep loop because
        STDP updates the weights between timesteps.
    model:
        Neuron model to simulate — a registered name, a
        :class:`~repro.snn.models.NeuronModel` instance, or ``None``
        (default) to use the network configuration's ``neuron_model``.
    """

    def __init__(
        self,
        network: "DiehlCookNetwork",
        model: Optional[object] = None,
    ) -> None:
        self.network = network
        if model is None:
            model = getattr(network.config, "neuron_model", None)
        self.model: NeuronModel = resolve_model(model)
        # Scratch buffers of the timestep kernel, reused across batches.
        self._workspace = KernelWorkspace()

    # ------------------------------------------------------------------ #
    def run(
        self,
        images: np.ndarray,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[BatchStepMonitor] = None,
        initial_reset_latch: Optional[np.ndarray] = None,
        sample_offset: int = 0,
        carry_reset_latch: bool = True,
    ) -> BatchResult:
        """Encode and classify a batch of images.

        Parameters
        ----------
        images:
            Batch of grayscale images: ``(batch, height, width)``,
            ``(batch, n_inputs)`` flattened, or a single 2-D image (treated
            as a batch of one).
        rng:
            Seed or generator for the Poisson encoding.  Encoding consumes
            the generator's stream exactly as the sequential per-sample
            loop would, so paired comparisons stay aligned.
        effective_weights:
            Optional substitute weight matrix used for current accumulation
            (the Bound-and-Protect weight-bounding hook).
        step_monitor:
            Optional callable invoked with the :class:`BatchedLIFState`
            after every timestep (the neuron-protection hook).
        initial_reset_latch:
            Faulty-reset latches carried over from previously processed
            samples; defaults to the network's current latch state.
        sample_offset:
            Global dataset index of the first batch row (used to label
            rows for batched step monitors).
        carry_reset_latch:
            See :meth:`run_encoded`.
        """
        network = self.network
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 2 and images.shape[1] != network.n_inputs:
            images = images[np.newaxis, ...]
        if images.ndim == 2:
            flat = images
        elif images.ndim == 3:
            flat = images.reshape(images.shape[0], -1)
        else:
            raise ValueError(
                "images must be (batch, height, width), (batch, n_inputs) or "
                f"a single 2-D image, got shape {images.shape}"
            )
        if flat.shape[1] != network.n_inputs:
            raise ValueError(
                f"images have {flat.shape[1]} pixels but the network expects "
                f"{network.n_inputs} inputs"
            )
        generator = resolve_rng(rng)
        rasters = network.encoder.encode_batch(
            flat[:, np.newaxis, :], rng=generator
        )
        return self.run_encoded(
            rasters,
            effective_weights=effective_weights,
            step_monitor=step_monitor,
            initial_reset_latch=initial_reset_latch,
            sample_offset=sample_offset,
            carry_reset_latch=carry_reset_latch,
        )

    # ------------------------------------------------------------------ #
    def run_encoded(
        self,
        rasters: np.ndarray,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[BatchStepMonitor] = None,
        initial_reset_latch: Optional[np.ndarray] = None,
        sample_offset: int = 0,
        carry_reset_latch: bool = True,
    ) -> BatchResult:
        """Run pre-encoded spike rasters of shape ``(batch, timesteps, n_inputs)``.

        Exposed separately so benchmarks, re-executions and the campaign's
        warm pool workers can reuse encodings; see :meth:`run` for the
        other parameters.  The rasters are only read, never written, so
        read-only zero-copy views (for example onto
        ``multiprocessing.shared_memory`` segments published by the
        campaign orchestrator) are accepted directly.

        ``carry_reset_latch`` selects between the two sample-coupling
        semantics.  ``True`` (default) reproduces the paper's sequential
        presentation order: a neuron whose faulty ``Vmem reset`` latches
        during sample ``i`` keeps bursting for samples ``i+1..``, resolved by
        the optimistic re-simulation fix-up.  ``False`` treats every row as
        an *independent presentation* that starts from ``initial_reset_latch``
        — the online-serving semantics, where unrelated requests coalesced
        into one micro-batch must not influence each other.  In that mode the
        result is bitwise identical to running each row in its own
        batch-of-one call, and ``final_reset_latch`` returns the entry latch
        unchanged.
        """
        network = self.network
        neurons = network.neurons
        params = neurons.params
        status = neurons.operation_status
        n_neurons = network.n_neurons

        rasters = np.asarray(rasters)
        if rasters.ndim != 3 or rasters.shape[2] != network.n_inputs:
            raise ValueError(
                "rasters must have shape (batch, timesteps, n_inputs), got "
                f"{rasters.shape}"
            )
        batch, timesteps, n_inputs = rasters.shape
        if batch == 0:
            raise ValueError("batch must not be empty")

        operator = network.synapses.current_operator(effective_weights)

        # One compute-bound GEMM produces the input currents of every
        # (sample, timestep) pair, reusing the weight matrix across the
        # whole batch; the sequential path re-streams it every timestep.
        flat_spikes = rasters.reshape(batch * timesteps, n_inputs)
        currents = operator.compute(flat_spikes).reshape(batch, timesteps, n_neurons)
        # Timestep-major layout so each step touches one contiguous block.
        currents = np.ascontiguousarray(currents.transpose(1, 0, 2))

        if initial_reset_latch is None:
            initial_reset_latch = neurons.reset_fault_latched
        latch = np.asarray(initial_reset_latch, dtype=bool).copy()
        has_reset_faults = bool((~status.vmem_reset_ok).any()) and carry_reset_latch

        sample_indices = sample_offset + np.arange(batch, dtype=np.int64)
        output = np.zeros((timesteps, batch, n_neurons), dtype=bool)
        final = BatchedLIFState.initial(
            params, status, neurons.theta, sample_indices, latch
        )

        start = 0
        passes = 0
        while start < batch:
            state = BatchedLIFState.initial(
                params, status, neurons.theta, sample_indices[start:], latch
            )
            self._simulate(state, currents[:, start:, :], output[:, start:, :], step_monitor)
            passes += 1

            if has_reset_faults:
                new_events = state.reset_fault_latched & ~latch
                event_rows = new_events.any(axis=1)
            else:
                event_rows = None
            if event_rows is None or not event_rows.any():
                accepted = slice(0, batch - start)
            else:
                # Samples up to and including the first one that latched a
                # new neuron saw the correct entry latch state; everything
                # after it must re-run with the updated latches.
                first_event = int(np.argmax(event_rows))
                accepted = slice(0, first_event + 1)
                latch = latch | new_events[first_event]

            self._accept_rows(final, state, start, accepted)
            if step_monitor is not None and hasattr(step_monitor, "commit_batch"):
                step_monitor.commit_batch(
                    state.sample_indices[accepted],
                    state.spike_disabled[accepted],
                )
            start += accepted.stop

        if _obs.enabled():
            _ENGINE_BATCHES.labels(engine="batched").inc()
            _ENGINE_BATCH_SIZE.labels(engine="batched").observe(batch)
            if passes > 1:
                _ENGINE_RESIM.labels(engine="batched").inc(passes - 1)
        output_spikes = np.ascontiguousarray(output.transpose(1, 0, 2))
        return BatchResult(
            output_spikes=output_spikes,
            spike_counts=output_spikes.sum(axis=1, dtype=np.int64),
            input_spike_counts=rasters.sum(axis=(1, 2), dtype=np.int64),
            final_reset_latch=latch,
            final_state=final,
            simulation_passes=passes,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _accept_rows(
        final: BatchedLIFState,
        state: BatchedLIFState,
        start: int,
        rows: slice,
    ) -> None:
        """Copy the accepted rows of a simulation pass into the final state."""
        target = slice(start + rows.start, start + rows.stop)
        final.v[target] = state.v[rows]
        final.refractory_remaining[target] = state.refractory_remaining[rows]
        final.comparator_output[target] = state.comparator_output[rows]
        final.consecutive_above_threshold[target] = (
            state.consecutive_above_threshold[rows]
        )
        final.spike_disabled[target] = state.spike_disabled[rows]
        final.reset_fault_latched[target] = state.reset_fault_latched[rows]
        final.last_spikes[target] = state.last_spikes[rows]

    def _simulate(
        self,
        state: BatchedLIFState,
        currents: np.ndarray,
        output: np.ndarray,
        step_monitor: Optional[BatchStepMonitor],
    ) -> None:
        """One parallel pass over all timesteps for the rows in *state*.

        A thin adapter over the model's advance kernel (for the default
        LIF, :func:`repro.snn.kernels.lif_advance`): the batched
        ``(batch, n)`` state arrays enter the ``(rows, batch, n)`` kernel
        as single-row views (broadcasting never changes elementwise IEEE
        results), and the kernel advances them strictly in place, so the
        ``step_monitor`` observes — and mutates, via
        :meth:`BatchedLIFState.disable_spiking` — the live state after
        every timestep, exactly like the sequential hook.
        """
        hook = None
        if step_monitor is not None:
            hook = lambda: step_monitor(state)  # noqa: E731 - local adapter
        self.model.advance(
            currents[:, np.newaxis, :, :],
            output[:, np.newaxis, :, :],
            state.v[np.newaxis],
            state.refractory_remaining[np.newaxis],
            state.consecutive_above_threshold[np.newaxis],
            state.spike_disabled[np.newaxis],
            state.reset_fault_latched[np.newaxis],
            state.comparator_output[np.newaxis],
            state.last_spikes[np.newaxis],
            OperationMasks.from_status(state.operation_status),
            state.effective_threshold,
            self.model.step_config(state.params),
            self._workspace,
            step_hook=hook,
        )


# ---------------------------------------------------------------------- #
# map-parallel engine
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class MapRow:
    """One simulated compute-engine configuration of a map-parallel unit.

    A *row* pairs a set of weight registers (typically the clean registers
    with one fault map's bit flips applied) with the matching per-neuron
    operation health and the run-time mitigation hooks — the per-row
    counterpart of building one faulty network and evaluating it through
    :class:`BatchedInferenceEngine`.  Several rows that share the same
    ``registers`` *array object* and ``raster_index`` also share their base
    current GEMM inside :class:`MapParallelEngine`, so planners should reuse
    array instances for identical register contents.

    Attributes
    ----------
    raster_index:
        Which encoding group of the unit drives this row (rows of the same
        sweep cell present the same pre-encoded spike rasters).
    registers:
        Integer register codes of the crossbar, shape
        ``(n_inputs, n_neurons)``.
    operation_status:
        Per-neuron health of the four LIF hardware operations.
    weight_rule:
        Optional Bound-and-Protect weight bounding applied between the
        registers and the adder chain (Eq. 1 of the paper).
    protection_trigger_cycles:
        When set, neuron protection gates off spike generation once a
        neuron's comparator stays asserted this many consecutive cycles —
        exactly the :class:`~repro.core.bound_and_protect.NeuronProtection`
        step-monitor semantics of the per-map path.
    """

    raster_index: int
    registers: np.ndarray
    operation_status: NeuronOperationStatus
    weight_rule: Optional[BoundedWeightRule] = None
    protection_trigger_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate shapes and value ranges of the row's assets."""
        registers = np.asarray(self.registers)
        if registers.ndim != 2:
            raise ValueError(
                f"registers must be 2-D (n_inputs, n_neurons), got {registers.shape}"
            )
        if not np.issubdtype(registers.dtype, np.integer):
            raise TypeError("registers must be an integer array")
        if self.operation_status.n_neurons != registers.shape[1]:
            raise ValueError(
                f"operation_status covers {self.operation_status.n_neurons} neurons "
                f"but the registers have {registers.shape[1]} columns"
            )
        if self.raster_index < 0:
            raise ValueError(f"raster_index must be >= 0, got {self.raster_index}")
        if (
            self.protection_trigger_cycles is not None
            and self.protection_trigger_cycles < 1
        ):
            raise ValueError(
                "protection_trigger_cycles must be at least 1, got "
                f"{self.protection_trigger_cycles}"
            )


@dataclass
class MapParallelState:
    """All mutable LIF state of a map-parallel pass: ``(n_rows, batch, n)``.

    The map-parallel counterpart of :class:`BatchedLIFState`: every array
    gains a leading *row* (fault-map / technique) axis, and the per-neuron
    operation masks become per-row ``(n_rows, 1, n_neurons)`` arrays because
    each row simulates its own corrupted engine.  All state updates are the
    same elementwise expressions the batched engine evaluates, broadcast
    over the extra axis, which is what keeps the map-parallel pass bitwise
    identical to running each row through its own batched engine.
    """

    v: np.ndarray
    refractory_remaining: np.ndarray
    comparator_output: np.ndarray
    consecutive_above_threshold: np.ndarray
    spike_disabled: np.ndarray
    reset_fault_latched: np.ndarray
    last_spikes: np.ndarray

    @classmethod
    def initial(
        cls,
        params: LIFParameters,
        theta: np.ndarray,
        n_rows: int,
        batch: int,
        n_neurons: int,
        initial_reset_latch: Optional[np.ndarray] = None,
    ) -> "MapParallelState":
        """Fresh state for *n_rows* concurrent rows of *batch* samples each.

        ``initial_reset_latch`` carries each row's faulty-reset latches
        accumulated by previously processed samples (shape
        ``(n_rows, n_neurons)``); latched membranes start pinned at the
        firing threshold, as in :meth:`BatchedLIFState.initial`.
        """
        shape = (n_rows, batch, n_neurons)
        v = np.full(shape, params.v_rest, dtype=np.float64)
        if initial_reset_latch is None:
            latched = np.zeros(shape, dtype=bool)
        else:
            latch = np.asarray(initial_reset_latch, dtype=bool)
            latched = np.broadcast_to(latch[:, np.newaxis, :], shape).copy()
            if latched.any():
                threshold = params.v_threshold + np.asarray(theta, dtype=np.float64)
                v = np.where(latched, np.maximum(v, threshold), v)
        return cls(
            v=v,
            refractory_remaining=np.zeros(shape, dtype=np.int64),
            comparator_output=np.zeros(shape, dtype=bool),
            consecutive_above_threshold=np.zeros(shape, dtype=np.int64),
            spike_disabled=np.zeros(shape, dtype=bool),
            reset_fault_latched=latched,
            last_spikes=np.zeros(shape, dtype=bool),
        )


@dataclass
class MapParallelResult:
    """Outcome of one map-parallel chunk.

    Attributes
    ----------
    spike_counts:
        Per-row, per-sample output spike counts ``(n_rows, batch, n_neurons)``.
    input_spike_counts:
        Input spikes delivered per *encoding group* and sample, shape
        ``(n_groups, batch)`` — rows sharing a raster group share these.
    final_reset_latch:
        Per-row faulty-reset latch state ``(n_rows, n_neurons)`` after the
        last sample, accounting for the sequential sample order; feed it as
        ``initial_reset_latch`` of the next chunk.
    simulation_passes:
        Total simulation passes including per-row latch fix-ups (1 when no
        row latched a new faulty-reset neuron).
    output_spikes:
        Boolean output raster per row, shape
        ``(n_rows, batch, timesteps, n_neurons)`` — only materialised when
        the chunk was run with ``collect_output_spikes=True`` (the campaign
        hot path needs just the counts), ``None`` otherwise.
    """

    spike_counts: np.ndarray
    input_spike_counts: np.ndarray
    final_reset_latch: np.ndarray
    simulation_passes: int = 1
    output_spikes: Optional[np.ndarray] = None


@dataclass
class _BaseGemm:
    """One shared current GEMM: a (raster group, register array) pair."""

    raster_index: int
    codes: np.ndarray


class MapParallelEngine:
    """Advance many fault maps (and techniques) through the LIF model at once.

    Every :class:`MapRow` stands for one complete per-map evaluation —
    faulty registers, neuron operation status, optional weight bounding and
    neuron protection — and the engine advances all rows' LIF state in one
    broadcast GEMM plus one elementwise pass per timestep.  The arithmetic
    is exactly the batched engine's:

    * input currents come from integer register-code matmuls
      (:mod:`repro.snn.synapse` exactness argument), so any grouping of the
      GEMMs — including the shared-base + bounding-correction decomposition
      used here — produces bitwise identical currents;
    * all state updates are the elementwise expressions of
      :meth:`BatchedInferenceEngine._simulate` broadcast over the row axis;
    * the faulty-reset latch fix-up re-simulates each affected row's suffix
      with the same accept-first-event loop the batched engine uses.

    The parity suite (``tests/test_map_parallel_parity.py``) verifies the
    resulting spikes equal a per-row :class:`BatchedInferenceEngine` run
    bit for bit across clean, faulty and protected modes.

    Parameters
    ----------
    rows:
        The row configurations to simulate concurrently.
    quantizer:
        Register format shared by all rows (defines the exact-GEMM dtype
        and the code-to-weight scale).
    params:
        LIF parameters shared by all rows.
    theta:
        Adaptive-threshold component ``(n_neurons,)`` shared by all rows
        (inference keeps it frozen).
    model:
        Neuron model every row simulates — a registered name, a
        :class:`~repro.snn.models.NeuronModel` instance, or ``None``
        (default) for the default LIF.
    """

    def __init__(
        self,
        rows: Sequence[MapRow],
        quantizer: WeightQuantizer,
        params: LIFParameters,
        theta: np.ndarray,
        model: Optional[object] = None,
    ) -> None:
        rows = list(rows)
        if not rows:
            raise ValueError("at least one row is required")
        shape = rows[0].registers.shape
        for row in rows:
            if row.registers.shape != shape:
                raise ValueError(
                    f"all rows must share the register shape {shape}, "
                    f"got {row.registers.shape}"
                )
        self.rows = rows
        self.quantizer = quantizer
        self.params = params
        self.theta = np.asarray(theta, dtype=np.float64)
        self.n_inputs, self.n_neurons = (int(shape[0]), int(shape[1]))
        if self.theta.shape != (self.n_neurons,):
            raise ValueError(
                f"theta must have shape ({self.n_neurons},), got {self.theta.shape}"
            )
        self._gemm_dtype = exact_gemm_dtype(self.n_inputs, quantizer.max_code)

        # Fully identical rows simulate once and share their results: e.g.
        # the unmitigated row and re-execution's first execution of the
        # same map are the same (registers, status, rule, trigger) tuple.
        # Keyed by array identity, so planners sharing array instances for
        # identical contents get the dedup for free.
        unique_index: Dict[Tuple, int] = {}
        unique_rows: List[MapRow] = []
        self._row_to_unique = np.zeros(len(rows), dtype=np.int64)
        for m, row in enumerate(rows):
            key = (
                row.raster_index,
                id(row.registers),
                id(row.operation_status),
                row.weight_rule,
                row.protection_trigger_cycles,
            )
            if key not in unique_index:
                unique_index[key] = len(unique_rows)
                unique_rows.append(row)
            self._row_to_unique[m] = unique_index[key]
        self._unique_rows = unique_rows
        n_unique = len(unique_rows)

        # Deduplicate the base current GEMMs: rows referencing the same
        # register array object over the same rasters share one matmul
        # (e.g. no-mitigation and the BnP variants all read the same
        # faulty registers of their map).
        base_index: Dict[Tuple[int, int], int] = {}
        self._bases: List[_BaseGemm] = []
        self._row_base = np.zeros(n_unique, dtype=np.int64)
        for m, row in enumerate(unique_rows):
            key = (row.raster_index, id(row.registers))
            if key not in base_index:
                base_index[key] = len(self._bases)
                self._bases.append(
                    _BaseGemm(
                        raster_index=row.raster_index,
                        codes=np.ascontiguousarray(
                            row.registers, dtype=self._gemm_dtype
                        ),
                    )
                )
            self._row_base[m] = base_index[key]

        # Bounding corrections, shared by rows with equal (base, threshold):
        # BnP1/2/3 of the same map differ only in the substitute value.
        self._corrections: Dict[Tuple[int, float], BoundingCorrection] = {}
        self._row_correction: List[Optional[Tuple[int, float]]] = [None] * n_unique
        self._row_substitute = np.zeros(n_unique, dtype=np.float64)
        for m, row in enumerate(unique_rows):
            rule = row.weight_rule
            if rule is None:
                continue
            key = (int(self._row_base[m]), float(rule.threshold))
            if key not in self._corrections:
                self._corrections[key] = plan_bounding_correction(
                    row.registers, rule.threshold, self.quantizer
                )
            self._row_correction[m] = key
            self._row_substitute[m] = float(rule.substitute)

        self._masks = OperationMasks.stack(
            [row.operation_status for row in unique_rows]
        )
        self._row_has_reset_fault = ~self._masks.reset_ok.all(axis=1)
        self._model: NeuronModel = resolve_model(model)
        self._step_config = self._model.step_config(params)
        self._threshold = params.v_threshold + self.theta
        # Separate scratch workspaces for the full-chunk pass and the
        # single-row latch fix-ups, so their different block shapes do not
        # evict each other's buffers between chunks.
        self._workspace = KernelWorkspace()
        self._fixup_workspace = KernelWorkspace()

        self._triggers = np.array(
            [
                NO_PROTECTION_TRIGGER
                if row.protection_trigger_cycles is None
                else int(row.protection_trigger_cycles)
                for row in unique_rows
            ],
            dtype=np.int64,
        )
        self._has_protection = any(
            row.protection_trigger_cycles is not None for row in unique_rows
        )

    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of rows (duplicates included; they share one simulation)."""
        return len(self.rows)

    @property
    def n_unique_rows(self) -> int:
        """Number of distinct row configurations actually simulated."""
        return len(self._unique_rows)

    @property
    def n_groups(self) -> int:
        """Number of encoding groups the rows reference."""
        return max(row.raster_index for row in self.rows) + 1

    # ------------------------------------------------------------------ #
    def run_encoded(
        self,
        rasters: Sequence[np.ndarray],
        initial_reset_latch: Optional[np.ndarray] = None,
        collect_output_spikes: bool = False,
    ) -> MapParallelResult:
        """Run one chunk of pre-encoded rasters through every row.

        Parameters
        ----------
        rasters:
            One boolean spike raster of shape ``(batch, timesteps,
            n_inputs)`` per encoding group; ``rows[m]`` presents
            ``rasters[rows[m].raster_index]``.
        initial_reset_latch:
            Per-row faulty-reset latches ``(n_rows, n_neurons)`` carried
            over from the previous chunk; defaults to all healthy.
        collect_output_spikes:
            Also materialise the per-row boolean output rasters in the
            result (two extra full-raster copies per chunk; accuracy
            consumers need only the spike counts).
        """
        rasters = [np.asarray(raster) for raster in rasters]
        if len(rasters) < self.n_groups:
            raise ValueError(
                f"rows reference {self.n_groups} encoding groups but only "
                f"{len(rasters)} rasters were provided"
            )
        batch, timesteps, n_inputs = rasters[0].shape
        for raster in rasters:
            if raster.shape != (batch, timesteps, n_inputs):
                raise ValueError("all rasters must share one (batch, T, I) shape")
        if n_inputs != self.n_inputs:
            raise ValueError(
                f"rasters have {n_inputs} inputs but the rows expect {self.n_inputs}"
            )
        if batch == 0:
            raise ValueError("batch must not be empty")
        n_rows = self.n_rows

        mapping = self._row_to_unique
        n_unique = self.n_unique_rows
        if initial_reset_latch is None:
            latch = np.zeros((n_unique, self.n_neurons), dtype=bool)
        else:
            full_latch = np.asarray(initial_reset_latch, dtype=bool)
            if full_latch.shape != (n_rows, self.n_neurons):
                raise ValueError(
                    "initial_reset_latch must have shape "
                    f"({n_rows}, {self.n_neurons}), got {full_latch.shape}"
                )
            # Duplicate rows share one simulation, so their carried latches
            # must agree (they do when the caller feeds back what the
            # previous chunk returned).
            for m in range(n_rows):
                if not np.array_equal(
                    full_latch[m], full_latch[np.flatnonzero(mapping == mapping[m])[0]]
                ):
                    raise ValueError(
                        "duplicate rows carry diverging reset latches"
                    )
            latch = np.zeros((n_unique, self.n_neurons), dtype=bool)
            for m in range(n_rows):
                latch[mapping[m]] = full_latch[m]

        currents = self._compute_currents(rasters, batch, timesteps)

        output = np.zeros((timesteps, n_unique, batch, self.n_neurons), dtype=bool)
        state = MapParallelState.initial(
            self.params, self.theta, n_unique, batch, self.n_neurons, latch
        )
        self._simulate(state, currents, output, slice(0, n_unique))
        passes = 1

        # Faulty-reset latch fix-up, per row (see BatchedInferenceEngine):
        # a row whose pass latched a new neuron keeps its samples up to and
        # including the first event and re-simulates the remainder with the
        # updated latch state, repeating until a pass latches nothing new.
        if self._row_has_reset_fault.any():
            for m in np.flatnonzero(self._row_has_reset_fault):
                passes += self._fixup_row(
                    int(m), latch, state.reset_fault_latched[m], currents, output
                )

        if _obs.enabled():
            _ENGINE_BATCHES.labels(engine="map_parallel").inc()
            _ENGINE_BATCH_SIZE.labels(engine="map_parallel").observe(batch)
            if passes > 1:
                _ENGINE_RESIM.labels(engine="map_parallel").inc(passes - 1)
        return MapParallelResult(
            spike_counts=output.sum(axis=0, dtype=np.int64)[mapping],
            input_spike_counts=np.stack(
                [raster.sum(axis=(1, 2), dtype=np.int64) for raster in rasters]
            ),
            final_reset_latch=latch[mapping],
            simulation_passes=passes,
            output_spikes=(
                np.ascontiguousarray(output.transpose(1, 2, 0, 3))[mapping]
                if collect_output_spikes
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _compute_currents(
        self, rasters: Sequence[np.ndarray], batch: int, timesteps: int
    ) -> np.ndarray:
        """Per-unique-row input currents, timestep-major ``(T, U, batch, n)``.

        One base GEMM per distinct (raster group, register array) pair plus
        one small correction GEMM pair per distinct bounding threshold —
        all exact integer sums, combined by the same fixed elementwise
        expressions as the per-map operators.  The rows assemble into one
        sample-major block first and transpose to timestep-major in a
        single pass, so every per-timestep slice of the returned array is
        contiguous.
        """
        flats: Dict[int, np.ndarray] = {}
        for base in self._bases:
            if base.raster_index not in flats:
                flats[base.raster_index] = np.ascontiguousarray(
                    rasters[base.raster_index].reshape(
                        batch * timesteps, self.n_inputs
                    ),
                    dtype=self._gemm_dtype,
                )
        base_currents = [
            register_gemm(flats[base.raster_index], base.codes)
            for base in self._bases
        ]
        correction_terms: Dict[Tuple[int, float], Tuple[np.ndarray, np.ndarray]] = {}
        for key, correction in self._corrections.items():
            if correction.is_empty:
                continue
            flat = flats[self._bases[key[0]].raster_index]
            correction_terms[key] = bounding_correction_terms(flat, correction)

        scale = self.quantizer.scale
        n_unique = self.n_unique_rows
        stacked = np.empty(
            (n_unique, batch * timesteps, self.n_neurons), dtype=np.float64
        )
        for m in range(n_unique):
            accumulated = base_currents[int(self._row_base[m])]
            key = self._row_correction[m]
            if key is None:
                exact_scale(accumulated, scale, out=stacked[m])
            elif self._corrections[key].is_empty:
                # Nothing is out of range: the bounded sum equals the
                # lattice sum plus an exactly-zero substitute term.
                exact_scale(accumulated, scale, out=stacked[m])
                stacked[m] += 0.0
            else:
                masked, hits = correction_terms[key]
                apply_bounding_correction(
                    accumulated,
                    masked,
                    hits,
                    scale,
                    self._row_substitute[m],
                    out=stacked[m],
                )
        return np.ascontiguousarray(
            stacked.reshape(n_unique, batch, timesteps, self.n_neurons).transpose(
                2, 0, 1, 3
            )
        )

    def _fixup_row(
        self,
        m: int,
        latch: np.ndarray,
        simulated_latched: np.ndarray,
        currents: np.ndarray,
        output: np.ndarray,
    ) -> int:
        """Resolve row *m*'s cross-sample faulty-reset coupling.

        ``latch[m]`` is updated in place to the row's final latch state;
        returns the number of extra simulation passes performed.
        """
        batch = output.shape[2]
        offset = 0
        extra_passes = 0
        row_latch = latch[m].copy()
        while True:
            new_events = simulated_latched & ~row_latch
            event_rows = new_events.any(axis=-1)
            if not event_rows.any():
                break
            first_event = int(np.argmax(event_rows))
            row_latch |= new_events[first_event]
            offset += first_event + 1
            if offset >= batch:
                break
            sub_state = MapParallelState.initial(
                self.params,
                self.theta,
                1,
                batch - offset,
                self.n_neurons,
                row_latch[np.newaxis, :],
            )
            # Contiguous copy of the row's remaining currents: the strided
            # view into the fused (T, U, B, n) block would pay its gather
            # cost once per timestep otherwise.
            self._simulate(
                sub_state,
                np.ascontiguousarray(currents[:, m : m + 1, offset:, :]),
                output[:, m : m + 1, offset:, :],
                slice(m, m + 1),
                workspace=self._fixup_workspace,
            )
            extra_passes += 1
            simulated_latched = sub_state.reset_fault_latched[0]
        latch[m] = row_latch
        return extra_passes

    def _simulate(
        self,
        state: MapParallelState,
        currents: np.ndarray,
        output: np.ndarray,
        row_slice: slice,
        workspace: Optional[KernelWorkspace] = None,
    ) -> None:
        """One parallel pass over all timesteps for the rows in *row_slice*.

        A thin adapter over the model's advance kernel (for the default
        LIF, :func:`repro.snn.kernels.lif_advance`) with the engine's
        per-row operation masks and protection triggers sliced to the
        simulated rows.  The kernel advances the state arrays strictly in
        place over its preallocated workspace, and applies neuron
        protection after each timestep's spikes are recorded, exactly like
        the batched engine's post-step monitor hook.
        """
        self._model.advance(
            currents,
            output,
            state.v,
            state.refractory_remaining,
            state.consecutive_above_threshold,
            state.spike_disabled,
            state.reset_fault_latched,
            state.comparator_output,
            state.last_spikes,
            self._masks.rows(row_slice),
            self._threshold,
            self._step_config,
            workspace if workspace is not None else self._workspace,
            triggers=self._triggers[row_slice] if self._has_protection else None,
        )
