"""The fully-connected SNN architecture evaluated in the paper.

:class:`DiehlCookNetwork` wires together the pieces of the substrate —
Poisson input encoding, the synapse crossbar, and the LIF excitatory layer
with direct lateral inhibition — into the network of Fig. 1(a).  The network
exposes two run-time hooks that the SoftSNN methodology plugs into without
the network knowing anything about mitigation:

* ``effective_weights`` — an alternative weight matrix used for current
  accumulation (this is where Bound-and-Protect weight bounding acts: the
  bounding logic sits between the weight register and the adder, so the
  stored/faulty registers are untouched but the value entering the adder is
  bounded);
* ``step_monitor`` — a callable invoked after every timestep with the neuron
  group, used by the neuron-protection logic to watch the ``Vmem >= Vth``
  comparator and latch off spike generation for neurons with a faulty reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.snn.encoding import DEFAULT_ENCODING, PoissonEncoder, get_encoder
from repro.snn.engine import BatchedInferenceEngine
from repro.snn.models import DEFAULT_NEURON_MODEL, get_model
from repro.snn.neuron import LIFNeuronGroup, LIFParameters, NeuronOperationStatus
from repro.snn.quantization import WeightQuantizer
from repro.snn.stdp import STDPConfig, STDPRule
from repro.snn.synapse import SynapseMatrix
from repro.utils.rng import RNGLike, resolve_rng

__all__ = ["NetworkConfig", "DiehlCookNetwork", "SampleResult"]

StepMonitor = Callable[[LIFNeuronGroup], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Static configuration of a :class:`DiehlCookNetwork`.

    Attributes
    ----------
    n_inputs:
        Number of input channels (pixels); 784 for 28x28 images.
    n_neurons:
        Number of excitatory neurons (the paper sweeps 400…3600; tests use
        much smaller populations).
    timesteps:
        Presentation duration of each sample, in timesteps.
    max_rate:
        Peak per-step input spike probability (see
        :class:`~repro.snn.encoding.PoissonEncoder`).
    target_total_intensity:
        Per-sample input-rate normalisation target forwarded to the encoder
        (``None`` disables it); keeps digit-like and garment-like workloads
        in the same activity regime.
    neuron_params:
        LIF parameters shared by all excitatory neurons.
    stdp:
        STDP hyper-parameters used during training.
    weight_bits:
        Weight-register precision of the deployed compute engine (8 in the
        paper).
    weight_full_scale:
        Full-scale value of the deployed register format.  ``None`` (the
        default) means "choose at deployment time": the trained model picks a
        full scale of twice its maximum clean weight, which gives the
        register format realistic headroom and reproduces Fig. 9, where bit
        flips push weights to roughly twice the clean maximum.
    neuron_model:
        Registered neuron-model name the engines simulate
        (:mod:`repro.snn.models`); ``"lif"`` is the paper's model and the
        default every pre-existing configuration (and snapshot sidecar
        written before the model zoo existed) resolves to.
    encoding:
        Registered input-encoding name (:mod:`repro.snn.encoding`);
        ``"poisson"`` is the paper's rate encoding and the default.
    """

    n_inputs: int = 784
    n_neurons: int = 100
    timesteps: int = 150
    max_rate: float = 0.25
    target_total_intensity: Optional[float] = 50.0
    neuron_params: LIFParameters = field(default_factory=LIFParameters)
    stdp: STDPConfig = field(default_factory=STDPConfig)
    weight_bits: int = 8
    weight_full_scale: Optional[float] = None
    neuron_model: str = DEFAULT_NEURON_MODEL
    encoding: str = DEFAULT_ENCODING

    #: Full-scale-to-clean-maximum ratio used when ``weight_full_scale`` is
    #: left on automatic.  A factor of two reproduces the weight range shown
    #: in Fig. 9 of the paper (clean weights up to ``wgh_max``; faulty
    #: weights up to roughly ``2 * wgh_max``).
    AUTO_FULL_SCALE_HEADROOM = 2.0

    def __post_init__(self) -> None:
        if self.n_inputs <= 0:
            raise ValueError(f"n_inputs must be positive, got {self.n_inputs}")
        if self.n_neurons <= 0:
            raise ValueError(f"n_neurons must be positive, got {self.n_neurons}")
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if self.target_total_intensity is not None and self.target_total_intensity <= 0:
            raise ValueError(
                "target_total_intensity must be positive or None, got "
                f"{self.target_total_intensity}"
            )
        if self.weight_full_scale is not None and self.weight_full_scale <= 0:
            raise ValueError(
                f"weight_full_scale must be positive or None, got {self.weight_full_scale}"
            )
        # Fail at configuration time, not deep inside an engine: both names
        # must resolve against their registries (raises with the known
        # names otherwise).
        get_model(self.neuron_model)
        get_encoder(self.encoding)

    def make_quantizer(self, clean_max_weight: Optional[float] = None) -> WeightQuantizer:
        """Construct the deployed (8-bit) register quantiser.

        Parameters
        ----------
        clean_max_weight:
            Maximum weight of the trained clean network.  Required when
            ``weight_full_scale`` is automatic (``None``); ignored otherwise.
        """
        if self.weight_full_scale is not None:
            full_scale = self.weight_full_scale
        else:
            if clean_max_weight is None or clean_max_weight <= 0:
                # Fall back to the STDP clip range with headroom so a network
                # can be built before training (e.g. for training itself).
                full_scale = self.AUTO_FULL_SCALE_HEADROOM * self.stdp.w_max
            else:
                full_scale = self.AUTO_FULL_SCALE_HEADROOM * float(clean_max_weight)
        return WeightQuantizer(bits=self.weight_bits, full_scale=full_scale)

    def make_training_quantizer(self) -> WeightQuantizer:
        """Construct the high-precision format used by the learning unit.

        The paper's fault model targets the inference-time weight registers
        of the compute engine; the STDP learning unit (Fig. 2) keeps its own
        higher-precision copy of the weights.  Training therefore runs with a
        16-bit format so quantisation does not interfere with learning, and
        the trained weights are mapped onto the 8-bit registers at
        deployment time.
        """
        return WeightQuantizer(bits=16, full_scale=self.stdp.w_max)

    def make_encoder(self) -> PoissonEncoder:
        """Construct the registered encoder named by ``encoding``.

        The factory receives the configuration subset encoders derive
        from; with the default ``encoding="poisson"`` this builds exactly
        the :class:`~repro.snn.encoding.PoissonEncoder` it always did.
        """
        factory = get_encoder(self.encoding)
        return factory(
            timesteps=self.timesteps,
            max_rate=self.max_rate,
            target_total_intensity=self.target_total_intensity,
        )


@dataclass
class SampleResult:
    """Outcome of presenting one sample to the network.

    Attributes
    ----------
    spike_counts:
        Per-neuron count of output spikes over the presentation.
    output_spikes:
        Full boolean raster of output spikes, shape ``(timesteps, n_neurons)``.
    input_spike_count:
        Total number of input spikes delivered (useful for activity/energy
        accounting in the hardware model).
    """

    spike_counts: np.ndarray
    output_spikes: np.ndarray
    input_spike_count: int

    @property
    def total_output_spikes(self) -> int:
        """Total number of output spikes across all neurons."""
        return int(self.spike_counts.sum())


class DiehlCookNetwork:
    """Fully-connected SNN with direct lateral inhibition and STDP learning.

    Parameters
    ----------
    config:
        Static network configuration.
    rng:
        Seed or generator used for weight initialisation.
    quantizer:
        Optional explicit weight-register quantiser.  When omitted the
        config's deployed-register format is used; the trainer passes its
        high-precision training format instead.
    """

    def __init__(
        self,
        config: Optional[NetworkConfig] = None,
        rng: RNGLike = None,
        quantizer: Optional[WeightQuantizer] = None,
    ) -> None:
        self.config = config if config is not None else NetworkConfig()
        generator = resolve_rng(rng)
        if quantizer is None:
            quantizer = self.config.make_quantizer()
        self.synapses = SynapseMatrix.random(
            n_inputs=self.config.n_inputs,
            n_neurons=self.config.n_neurons,
            rng=generator,
            low=0.0,
            high=min(0.3 * self.config.stdp.w_max, quantizer.full_scale),
            quantizer=quantizer,
        )
        self.neurons = LIFNeuronGroup(
            n_neurons=self.config.n_neurons, params=self.config.neuron_params
        )
        self.encoder = self.config.make_encoder()
        self.stdp = STDPRule(
            n_inputs=self.config.n_inputs,
            n_neurons=self.config.n_neurons,
            config=self.config.stdp,
        )

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def n_inputs(self) -> int:
        """Number of input channels."""
        return self.config.n_inputs

    @property
    def n_neurons(self) -> int:
        """Number of excitatory neurons."""
        return self.config.n_neurons

    def set_neuron_fault_status(self, status: NeuronOperationStatus) -> None:
        """Install per-neuron operation faults (used by the fault injector)."""
        self.neurons.set_operation_status(status)

    def clear_neuron_faults(self) -> None:
        """Restore all neuron operations to their healthy state."""
        self.neurons.set_operation_status(
            NeuronOperationStatus.healthy(self.n_neurons)
        )

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def present(
        self,
        image: np.ndarray,
        learning: bool = False,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[StepMonitor] = None,
    ) -> SampleResult:
        """Present one image to the network for ``config.timesteps`` steps.

        Inference presentations (``learning=False``) run as a batch of one
        through the vectorized :class:`repro.snn.engine.BatchedInferenceEngine`
        and the neuron group's state is synchronised afterwards, so the
        observable behaviour (spikes, latches, RNG consumption) matches the
        sequential loop, which remains available as
        :meth:`present_sequential`.  Training presentations keep the
        sequential loop because STDP updates the weights between timesteps.

        Parameters
        ----------
        image:
            Grayscale image whose flattened size equals ``n_inputs``.
        learning:
            When True, STDP updates and threshold adaptation are applied;
            inference runs must pass False.
        rng:
            Seed or generator for the Poisson input encoding.
        effective_weights:
            Optional substitute weight matrix used for current accumulation
            (hook used by Bound-and-Protect weight bounding).  Ignored while
            learning.
        step_monitor:
            Optional callable invoked after each timestep (hook used by
            neuron protection).  On the inference path it receives the
            engine's :class:`~repro.snn.engine.BatchedLIFState` (batch of
            one); on the training path it receives the
            :class:`~repro.snn.neuron.LIFNeuronGroup`.
        """
        if learning:
            return self.present_sequential(
                image,
                learning=True,
                rng=rng,
                effective_weights=effective_weights,
                step_monitor=step_monitor,
            )
        image = np.asarray(image, dtype=np.float64)
        if image.size != self.n_inputs:
            raise ValueError(
                f"image has {image.size} pixels but the network expects {self.n_inputs}"
            )
        engine = BatchedInferenceEngine(self)
        result = engine.run(
            image.reshape(1, -1),
            rng=rng,
            effective_weights=effective_weights,
            step_monitor=step_monitor,
            initial_reset_latch=self.neurons.reset_fault_latched,
        )
        self.sync_neuron_state(result)
        return SampleResult(
            spike_counts=result.spike_counts[0],
            output_spikes=result.output_spikes[0],
            input_spike_count=int(result.input_spike_counts[0]),
        )

    def sync_neuron_state(self, result) -> None:
        """Mirror a batch-of-one engine run back into the neuron group.

        Keeps the sequential API contract: after ``present`` the neuron
        group exposes the same final state (membranes, latches, protection
        gates) the per-timestep loop would have left behind.
        """
        state = result.final_state
        neurons = self.neurons
        neurons.v = state.v[-1].copy()
        neurons.refractory_remaining = state.refractory_remaining[-1].copy()
        neurons.comparator_output = state.comparator_output[-1].copy()
        neurons.consecutive_above_threshold = (
            state.consecutive_above_threshold[-1].copy()
        )
        neurons.spike_disabled = state.spike_disabled[-1].copy()
        neurons.reset_fault_latched = result.final_reset_latch.copy()
        neurons.last_spikes = state.last_spikes[-1].copy()

    def present_sequential(
        self,
        image: np.ndarray,
        learning: bool = False,
        rng: RNGLike = None,
        effective_weights: Optional[np.ndarray] = None,
        step_monitor: Optional[StepMonitor] = None,
    ) -> SampleResult:
        """Present one image through the per-timestep reference loop.

        This is the original sequential path the batched engine is verified
        against (see the parity test suite); training always runs through
        it.  Parameters are those of :meth:`present`; ``step_monitor``
        receives the :class:`~repro.snn.neuron.LIFNeuronGroup`.
        """
        image = np.asarray(image, dtype=np.float64)
        if image.size != self.n_inputs:
            raise ValueError(
                f"image has {image.size} pixels but the network expects {self.n_inputs}"
            )
        generator = resolve_rng(rng)
        raster = self.encoder.encode(image.reshape(-1), rng=generator)

        self.neurons.reset_state()
        self.stdp.reset_traces()

        weights = self.synapses.weights if learning else None
        operator = (
            None if learning else self.synapses.current_operator(effective_weights)
        )
        timesteps, n_neurons = raster.shape[0], self.n_neurons
        output_spikes = np.zeros((timesteps, n_neurons), dtype=bool)

        for t in range(timesteps):
            pre_spikes = raster[t]
            if learning:
                current = pre_spikes.astype(np.float64) @ weights
            else:
                current = operator.compute(pre_spikes[np.newaxis, :])[0]
            post_spikes = self.neurons.step(current, learning=learning)
            output_spikes[t] = post_spikes

            if learning:
                weights = self.stdp.step(weights, pre_spikes, post_spikes)
            if step_monitor is not None:
                step_monitor(self.neurons)

        if learning:
            self.synapses.set_weights(weights)

        return SampleResult(
            spike_counts=output_spikes.sum(axis=0).astype(np.int64),
            output_spikes=output_spikes,
            input_spike_count=int(raster.sum()),
        )

    def normalize_weights(self, target_sum: float) -> None:
        """Scale each neuron's incoming weights to a fixed total.

        Diehl & Cook style weight normalisation: after each training sample,
        every excitatory neuron's column of weights is rescaled so its sum
        equals *target_sum*, preventing any single neuron from monopolising
        the input.
        """
        if target_sum <= 0:
            raise ValueError(f"target_sum must be positive, got {target_sum}")
        weights = self.synapses.weights
        column_sums = weights.sum(axis=0)
        column_sums[column_sums == 0] = 1.0
        normalized = weights * (target_sum / column_sums)
        normalized = np.clip(normalized, 0.0, self.synapses.quantizer.full_scale)
        self.synapses.set_weights(normalized)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiehlCookNetwork(n_inputs={self.n_inputs}, n_neurons={self.n_neurons}, "
            f"timesteps={self.config.timesteps})"
        )
