"""Unsupervised training and neuron label assignment.

The paper trains its network with unsupervised STDP (Fig. 1a) and then
assigns a class label to every excitatory neuron from its responses to the
labelled training data; at inference time the predicted class is the label
group with the highest spike count.  :class:`TrainingRunner` (historically
exported as :class:`STDPTrainer`, which remains an alias) implements that
pipeline and produces a :class:`TrainedModel` — the "clean SNN" whose weight
statistics (``wgh_max``, ``wgh_hp``) the Bound-and-Protect techniques use as
their safe range.

Training runs through the vectorized engine of
:mod:`repro.snn.train_engine` by default, which is bit-identical to the
per-timestep reference loop kept available as
:meth:`TrainingRunner.train_sequential` (mirroring how inference keeps
``present_sequential`` next to the batched engine); pass
``vectorized=False`` — or call ``train_sequential`` — to opt out.

Three learning modes are provided (``TrainingConfig.learning_mode``):

``"pairwise_stdp"``
    The classical trace-based pair STDP rule applied at every timestep
    (see :mod:`repro.snn.stdp`).  Most faithful to the biological rule, but
    on the small synthetic workloads used here it needs long training to
    develop class-selective receptive fields.
``"spiking_wta"``
    Sample-level winner-take-all Hebbian learning: each training image is
    presented to the spiking network (with homeostatic thresholds acting as
    a conscience), the neuron with the most output spikes is declared the
    winner, and its receptive field is moved toward the observed input
    pattern.  This is the rate-level fixed point that lateral inhibition
    plus STDP converges to, reached in far fewer presentations — the right
    trade-off for the scaled-down experiments in this reproduction.
``"fast_wta"``
    Identical update rule, but the winner is selected from the linear
    (expected-rate) response instead of a full spiking simulation.  Orders
    of magnitude faster; used by the benchmark harness where dozens of
    models must be trained.

All fault-injection experiments in the paper happen at *inference* time on a
pre-trained network, so the choice of training mode does not interact with
the fault models — it only determines the quality of the clean weights.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.data.datasets import Dataset
from repro.obs.trace import span
from repro.snn.models import DEFAULT_NEURON_MODEL
from repro.snn.network import DiehlCookNetwork, NetworkConfig
from repro.snn.neuron import LIFParameters
from repro.snn.stdp import STDPConfig
from repro.snn.train_engine import (
    VectorizedTrainingEngine,
    record_training_epoch,
    wta_sample_update,
)
from repro.utils.logging import get_logger
from repro.utils.rng import RNGLike, resolve_rng
from repro.utils.serialization import load_json, load_npz, save_json, save_npz
from repro.utils.validation import check_in_choices

__all__ = ["TrainingConfig", "TrainedModel", "TrainingRunner", "STDPTrainer"]

_LOGGER = get_logger("snn.training")

LEARNING_MODES = ("pairwise_stdp", "spiking_wta", "fast_wta")
LABEL_ASSIGNMENT_MODES = ("spiking", "fast")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the unsupervised training loop.

    Attributes
    ----------
    epochs:
        Number of passes over the training set (the paper uses 3).
    weight_norm_total:
        Target per-neuron incoming-weight sum applied after every update
        (Diehl & Cook style weight normalisation).
    learning_mode:
        One of ``"pairwise_stdp"``, ``"spiking_wta"``, ``"fast_wta"``
        (see the module docstring).
    label_assignment_mode:
        ``"spiking"`` assigns neuron labels from spiking responses (as the
        paper's framework does); ``"fast"`` uses the linear expected-rate
        response, which is much faster and produces near-identical labels.
    wta_learning_rate:
        Blend factor of the winner-take-all update (how far the winner's
        receptive field moves toward the presented pattern).
    conscience_increment:
        Homeostatic penalty added to a neuron's selection bias each time it
        wins, spreading wins across the population.
    conscience_decay:
        Multiplicative decay of the conscience bias applied once per sample.
    shuffle:
        Whether to reshuffle the training set every epoch.
    label_smoothing:
        Small constant added to per-class response averages before the
        argmax that assigns neuron labels, avoiding ties on silent neurons.
    """

    epochs: int = 2
    weight_norm_total: float = 3.0
    learning_mode: str = "spiking_wta"
    label_assignment_mode: str = "spiking"
    wta_learning_rate: float = 0.6
    conscience_increment: float = 0.3
    conscience_decay: float = 0.999
    shuffle: bool = True
    label_smoothing: float = 1e-9

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.weight_norm_total <= 0:
            raise ValueError(
                f"weight_norm_total must be positive, got {self.weight_norm_total}"
            )
        check_in_choices(self.learning_mode, "learning_mode", LEARNING_MODES)
        check_in_choices(
            self.label_assignment_mode,
            "label_assignment_mode",
            LABEL_ASSIGNMENT_MODES,
        )
        if not 0.0 < self.wta_learning_rate <= 1.0:
            raise ValueError(
                f"wta_learning_rate must lie in (0, 1], got {self.wta_learning_rate}"
            )
        if self.conscience_increment < 0:
            raise ValueError(
                f"conscience_increment must be non-negative, got {self.conscience_increment}"
            )
        if not 0.0 < self.conscience_decay <= 1.0:
            raise ValueError(
                f"conscience_decay must lie in (0, 1], got {self.conscience_decay}"
            )
        if self.label_smoothing < 0:
            raise ValueError(
                f"label_smoothing must be non-negative, got {self.label_smoothing}"
            )


@dataclass
class TrainedModel:
    """A trained "clean SNN": weights, homeostasis state and neuron labels.

    This object is the handover point between training and every
    fault-injection experiment: experiments copy its weights into a fresh
    network, inject faults, and run inference.  It also carries the
    clean-weight statistics the Bound-and-Protect techniques need.

    Attributes
    ----------
    network_config:
        Configuration the network was trained with.
    weights:
        Clean trained weight matrix ``(n_inputs, n_neurons)``.
    theta:
        Adaptive-threshold values carried into inference.
    neuron_labels:
        Class label assigned to each excitatory neuron.
    clean_max_weight:
        Maximum clean weight (the paper's ``wgh_max`` / ``wgh_th``).
    clean_most_probable_weight:
        Mode of the clean weight distribution (the paper's ``wgh_hp``).
    training_history:
        Per-epoch diagnostic statistics recorded during training.
    """

    network_config: NetworkConfig
    weights: np.ndarray
    theta: np.ndarray
    neuron_labels: np.ndarray
    clean_max_weight: float
    clean_most_probable_weight: float
    training_history: Dict[str, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.theta = np.asarray(self.theta, dtype=np.float64)
        self.neuron_labels = np.asarray(self.neuron_labels, dtype=np.int64)
        expected = (self.network_config.n_inputs, self.network_config.n_neurons)
        if self.weights.shape != expected:
            raise ValueError(
                f"weights must have shape {expected}, got {self.weights.shape}"
            )
        if self.theta.shape != (self.network_config.n_neurons,):
            raise ValueError(
                f"theta must have shape ({self.network_config.n_neurons},), "
                f"got {self.theta.shape}"
            )
        if self.neuron_labels.shape != (self.network_config.n_neurons,):
            raise ValueError(
                f"neuron_labels must have shape ({self.network_config.n_neurons},), "
                f"got {self.neuron_labels.shape}"
            )
        if self.clean_max_weight < 0:
            raise ValueError("clean_max_weight must be non-negative")
        if self.clean_most_probable_weight < 0:
            raise ValueError("clean_most_probable_weight must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def n_neurons(self) -> int:
        """Number of excitatory neurons in the trained network."""
        return self.network_config.n_neurons

    @property
    def n_classes(self) -> int:
        """Number of distinct classes the neurons are labelled with."""
        if self.neuron_labels.size == 0:
            return 0
        return int(self.neuron_labels.max()) + 1

    @property
    def deployment_full_scale(self) -> float:
        """Full-scale weight value of the deployed 8-bit register format."""
        return self.network_config.make_quantizer(self.clean_max_weight).full_scale

    def build_network(self, rng: RNGLike = None) -> DiehlCookNetwork:
        """Instantiate a fresh inference network loaded with the trained parameters.

        The network uses the deployed 8-bit register format (full scale set
        to twice the clean maximum weight unless the configuration pins it
        explicitly), so every fault-injection experiment operates on exactly
        the registers the accelerator would hold.  Every call returns an
        independent network, so trials never contaminate the trained model
        or each other.
        """
        quantizer = self.network_config.make_quantizer(self.clean_max_weight)
        network = DiehlCookNetwork(
            config=self.network_config, rng=rng, quantizer=quantizer
        )
        network.synapses.set_weights(
            np.clip(self.weights, 0.0, quantizer.full_scale)
        )
        network.neurons.theta = self.theta.copy()
        return network

    def to_dict(self) -> Dict[str, object]:
        """Serialisable summary (weights included) of the trained model."""
        return {
            "n_inputs": self.network_config.n_inputs,
            "n_neurons": self.network_config.n_neurons,
            "timesteps": self.network_config.timesteps,
            "clean_max_weight": self.clean_max_weight,
            "clean_most_probable_weight": self.clean_most_probable_weight,
            "neuron_labels": self.neuron_labels.tolist(),
            "theta": self.theta.tolist(),
            "weights": self.weights.tolist(),
        }

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    #: Snapshot format version written into the metadata sidecar.
    SNAPSHOT_FORMAT = 1

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the model as an ``.npz`` archive plus a ``.json`` sidecar.

        The arrays (weights, theta, neuron labels) go into ``<base>.npz``;
        everything JSON-friendly (network configuration, clean weight
        statistics, training history) into ``<base>.json``.  Campaign
        workers load this snapshot instead of retraining the clean model in
        every process.  Returns the path of the ``.npz`` archive.
        """
        base = Path(path)
        if base.suffix == ".npz":
            base = base.with_suffix("")
        npz_path = save_npz(
            {
                "weights": self.weights,
                "theta": self.theta,
                "neuron_labels": self.neuron_labels,
            },
            base.with_suffix(".npz"),
        )
        save_json(
            {
                "format": self.SNAPSHOT_FORMAT,
                "network_config": asdict(self.network_config),
                "clean_max_weight": self.clean_max_weight,
                "clean_most_probable_weight": self.clean_most_probable_weight,
                "training_history": self.training_history,
            },
            base.with_suffix(".json"),
        )
        return npz_path

    @classmethod
    def load_network_config(cls, path: Union[str, Path]) -> NetworkConfig:
        """Read just the network configuration from a snapshot's sidecar.

        Cheap metadata access for callers that need the architecture but
        not the arrays — e.g. the serving registry's in-place retrain,
        which rebuilds a model of the same shape without decoding (or
        warm-caching) the one it is about to replace.

        Parameters
        ----------
        path:
            The ``.npz`` archive, the ``.json`` sidecar or the common base
            path of a snapshot written by :meth:`save`.

        Returns
        -------
        NetworkConfig
            The configuration the snapshot's model was trained with.

        Raises
        ------
        ValueError
            If the sidecar's snapshot format is unsupported.
        """
        base = Path(path)
        if base.suffix in (".npz", ".json"):
            base = base.with_suffix("")
        metadata = load_json(base.with_suffix(".json"))
        return cls._network_config_from_metadata(metadata)

    @classmethod
    def _network_config_from_metadata(cls, metadata: Dict) -> NetworkConfig:
        """Validate a snapshot sidecar dict and rebuild its network config."""
        fmt = metadata.get("format")
        if fmt != cls.SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported trained-model snapshot format {fmt!r} "
                f"(expected {cls.SNAPSHOT_FORMAT})"
            )
        config_data = dict(metadata["network_config"])
        config_data["neuron_params"] = LIFParameters(**config_data["neuron_params"])
        config_data["stdp"] = STDPConfig(**config_data["stdp"])
        return NetworkConfig(**config_data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TrainedModel":
        """Load a model previously written by :meth:`save`.

        *path* may point at the ``.npz`` archive, the ``.json`` sidecar or
        the common base path.
        """
        base = Path(path)
        if base.suffix in (".npz", ".json"):
            base = base.with_suffix("")
        metadata = load_json(base.with_suffix(".json"))
        network_config = cls._network_config_from_metadata(metadata)
        arrays = load_npz(base.with_suffix(".npz"))
        return cls(
            network_config=network_config,
            weights=arrays["weights"],
            theta=arrays["theta"],
            neuron_labels=arrays["neuron_labels"],
            clean_max_weight=float(metadata["clean_max_weight"]),
            clean_most_probable_weight=float(
                metadata["clean_most_probable_weight"]
            ),
            training_history=dict(metadata.get("training_history", {})),
        )


class TrainingRunner:
    """Unsupervised trainer producing a :class:`TrainedModel`.

    The runner owns the full training pipeline: unsupervised weight
    learning in one of the three modes of :class:`TrainingConfig`, neuron
    label assignment, and clean-weight statistics extraction.  By default
    the weight learning and the spiking label assignment execute through
    the bit-exact :class:`~repro.snn.train_engine.VectorizedTrainingEngine`;
    the original per-timestep loop remains available via
    :meth:`train_sequential` and serves as the parity reference.

    Parameters
    ----------
    network_config:
        Configuration of the network to train.
    training_config:
        Training-loop hyper-parameters, including the learning mode.
    """

    def __init__(
        self,
        network_config: Optional[NetworkConfig] = None,
        training_config: Optional[TrainingConfig] = None,
    ) -> None:
        self.network_config = (
            network_config if network_config is not None else NetworkConfig()
        )
        self.training_config = (
            training_config if training_config is not None else TrainingConfig()
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def train(
        self,
        dataset: Dataset,
        rng: RNGLike = None,
        vectorized: bool = True,
    ) -> TrainedModel:
        """Run unsupervised training followed by neuron label assignment.

        Parameters
        ----------
        dataset:
            Labelled training images whose pixel count matches the
            network's input dimension.
        rng:
            Seed or generator driving every random choice of the run
            (weight initialisation, epoch shuffles, Poisson encodings).
        vectorized:
            When True (default) the weight learning and the spiking label
            assignment execute through the
            :class:`~repro.snn.train_engine.VectorizedTrainingEngine`,
            which is bit-identical to the sequential reference but several
            times faster; pass False to force the original per-timestep
            loop.  Configurations the engine cannot reproduce exactly
            (currently: pairwise STDP with ``stdp.w_min > 0``) fall back
            to the sequential path automatically.

        Returns
        -------
        TrainedModel
            The trained clean model, including neuron labels, clean-weight
            statistics, and the per-epoch training history.

        Raises
        ------
        ValueError
            If the dataset is empty or its pixel count does not match the
            network's input dimension.
        """
        if len(dataset) == 0:
            raise ValueError("training dataset must not be empty")
        if dataset.n_pixels != self.network_config.n_inputs:
            raise ValueError(
                f"dataset has {dataset.n_pixels} pixels per image but the network "
                f"expects {self.network_config.n_inputs} inputs"
            )
        generator = resolve_rng(rng)
        mode = self.training_config.learning_mode
        neuron_model = getattr(
            self.network_config, "neuron_model", DEFAULT_NEURON_MODEL
        )
        if mode == "pairwise_stdp" and neuron_model != DEFAULT_NEURON_MODEL:
            # Both pairwise implementations (the vectorized
            # lif_learning_step fast path and the sequential
            # LIFNeuronGroup reference) advance LIF dynamics only.
            raise ValueError(
                "pairwise_stdp training supports only the "
                f"{DEFAULT_NEURON_MODEL!r} neuron model, got {neuron_model!r}; "
                "use spiking_wta or fast_wta for other models"
            )

        engine: Optional[VectorizedTrainingEngine] = None
        if vectorized:
            reason = VectorizedTrainingEngine.unsupported_reason(
                self.network_config, self.training_config
            )
            if reason is None:
                engine = VectorizedTrainingEngine(
                    self.network_config, self.training_config
                )
            else:
                _LOGGER.info("vectorized training unavailable: %s", reason)

        if engine is not None:
            if mode == "pairwise_stdp":
                weights, history = engine.train_pairwise(dataset, generator)
            else:
                weights, history = engine.train_wta(
                    dataset, generator, spiking=(mode == "spiking_wta")
                )
            if self.training_config.label_assignment_mode == "spiking":
                neuron_labels = engine.assign_labels_spiking(
                    weights, dataset, generator
                )
            else:
                neuron_labels = self._assign_labels(weights, dataset, generator)
        else:
            if mode == "pairwise_stdp":
                weights, history = self._train_pairwise_stdp(dataset, generator)
            else:
                weights, history = self._train_wta(
                    dataset, generator, spiking=(mode == "spiking_wta")
                )
            neuron_labels = self._assign_labels(weights, dataset, generator)

        clean_max = float(weights.max())
        most_probable = self._most_probable_weight(weights)
        return TrainedModel(
            network_config=self.network_config,
            weights=weights,
            # Homeostatic bias is a training-time device; inference starts
            # from the base threshold, as in the deployed accelerator whose
            # neuron parameters are loaded fresh for the inference phase.
            theta=np.zeros(self.network_config.n_neurons),
            neuron_labels=neuron_labels,
            clean_max_weight=clean_max,
            clean_most_probable_weight=most_probable,
            training_history=history,
        )

    def train_sequential(self, dataset: Dataset, rng: RNGLike = None) -> TrainedModel:
        """Train through the per-timestep reference loop.

        This is the original implementation the vectorized engine is
        verified against, kept callable for parity tests and as the
        fallback for configurations the engine does not support —
        mirroring ``present_sequential`` next to the batched inference
        engine.  Under a fixed *rng* it returns a model whose weights,
        neuron labels and training history are bit-identical to
        :meth:`train`'s.

        Parameters
        ----------
        dataset:
            Labelled training images.
        rng:
            Seed or generator; consumed exactly as :meth:`train` does.

        Returns
        -------
        TrainedModel
            The trained clean model.
        """
        return self.train(dataset, rng=rng, vectorized=False)

    # ------------------------------------------------------------------ #
    # learning modes (sequential reference implementations)
    # ------------------------------------------------------------------ #
    def _train_pairwise_stdp(
        self, dataset: Dataset, generator: np.random.Generator
    ) -> tuple:
        """Per-timestep pair-based STDP (the classical rule)."""
        network = DiehlCookNetwork(
            config=self.network_config,
            rng=generator,
            quantizer=self.network_config.make_training_quantizer(),
        )
        network.normalize_weights(self.training_config.weight_norm_total)

        history: Dict[str, list] = {"epoch_mean_spikes": []}
        for epoch in range(self.training_config.epochs):
            epoch_began = time.perf_counter()
            with span("train.epoch", mode="pairwise_stdp", epoch=epoch + 1):
                order = self._epoch_order(len(dataset), generator)
                epoch_spikes = []
                for index in order:
                    image, _ = dataset[int(index)]
                    result = network.present(image, learning=True, rng=generator)
                    network.normalize_weights(
                        self.training_config.weight_norm_total
                    )
                    epoch_spikes.append(result.total_output_spikes)
            mean_spikes = float(np.mean(epoch_spikes))
            history["epoch_mean_spikes"].append(mean_spikes)
            record_training_epoch(
                "pairwise_stdp", time.perf_counter() - epoch_began
            )
            _LOGGER.info(
                "pairwise_stdp epoch %d/%d: mean output spikes per sample %.2f",
                epoch + 1,
                self.training_config.epochs,
                mean_spikes,
            )
        return network.synapses.weights, history

    def _train_wta(
        self,
        dataset: Dataset,
        generator: np.random.Generator,
        spiking: bool,
    ) -> tuple:
        """Sample-level winner-take-all Hebbian learning.

        The per-sample update is the shared
        :func:`~repro.snn.train_engine.wta_sample_update`, so this path
        and ``VectorizedTrainingEngine.train_wta`` differ only in how a
        sample is presented.
        """
        config = self.training_config
        n_inputs = self.network_config.n_inputs
        n_neurons = self.network_config.n_neurons

        network = DiehlCookNetwork(
            config=self.network_config,
            rng=generator,
            quantizer=self.network_config.make_training_quantizer(),
        )
        network.normalize_weights(config.weight_norm_total)
        weights = network.synapses.weights
        conscience = np.zeros(n_neurons, dtype=np.float64)
        wins = np.zeros(n_neurons, dtype=np.int64)

        mode = "spiking_wta" if spiking else "fast_wta"
        history: Dict[str, list] = {"epoch_neurons_used": [], "epoch_mean_spikes": []}
        for epoch in range(self.training_config.epochs):
            epoch_began = time.perf_counter()
            with span("train.epoch", mode=mode, epoch=epoch + 1):
                order = self._epoch_order(len(dataset), generator)
                epoch_spikes = []
                for index in order:
                    image, _ = dataset[int(index)]
                    flat = image.reshape(-1)
                    if spiking:
                        network.synapses.set_weights(weights)
                        network.neurons.theta = conscience.copy()
                        result = network.present(
                            image, learning=False, rng=generator
                        )
                        epoch_spikes.append(result.total_output_spikes)
                        responses = result.spike_counts.astype(np.float64)
                        if responses.max() <= 0:
                            # Silent presentation: fall back to the linear
                            # response so every sample still contributes.
                            responses = flat @ weights - conscience
                    else:
                        responses = flat @ weights - conscience
                        epoch_spikes.append(0)
                    weights = wta_sample_update(
                        weights, conscience, wins, flat, responses, config
                    )

            neurons_used = int((wins > 0).sum())
            history["epoch_neurons_used"].append(neurons_used)
            history["epoch_mean_spikes"].append(
                float(np.mean(epoch_spikes)) if epoch_spikes else 0.0
            )
            record_training_epoch(mode, time.perf_counter() - epoch_began)
            _LOGGER.info(
                "%s epoch %d/%d: %d of %d neurons selected as winners",
                mode,
                epoch + 1,
                self.training_config.epochs,
                neurons_used,
                n_neurons,
            )
        weights = np.clip(weights, 0.0, self.network_config.stdp.w_max)
        return weights.reshape(n_inputs, n_neurons), history

    # ------------------------------------------------------------------ #
    # label assignment
    # ------------------------------------------------------------------ #
    def _assign_labels(
        self,
        weights: np.ndarray,
        dataset: Dataset,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Assign a class label to each neuron from its mean class response."""
        n_classes = dataset.n_classes
        n_neurons = self.network_config.n_neurons
        response_sums = np.zeros((n_classes, n_neurons), dtype=np.float64)
        class_counts = np.zeros(n_classes, dtype=np.float64)

        if self.training_config.label_assignment_mode == "spiking":
            network = DiehlCookNetwork(
                config=self.network_config,
                rng=generator,
                quantizer=self.network_config.make_training_quantizer(),
            )
            network.synapses.set_weights(weights)
            for image, label in dataset:
                result = network.present(image, learning=False, rng=generator)
                response_sums[label] += result.spike_counts
                class_counts[label] += 1
        else:
            flat_images = dataset.flattened_images()
            # Normalise each image to unit total intensity so the linear
            # responses are comparable across samples with different amounts
            # of "ink", mirroring the encoder's per-sample rate normalisation.
            totals = flat_images.sum(axis=1, keepdims=True)
            totals[totals == 0] = 1.0
            responses = (flat_images / totals) @ weights
            for index, label in enumerate(dataset.labels):
                response_sums[label] += responses[index]
                class_counts[label] += 1

        class_counts[class_counts == 0] = 1.0
        mean_responses = response_sums / class_counts[:, np.newaxis]
        mean_responses += self.training_config.label_smoothing
        return np.argmax(mean_responses, axis=0).astype(np.int64)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _epoch_order(
        self, n_samples: int, generator: np.random.Generator
    ) -> np.ndarray:
        if self.training_config.shuffle:
            return generator.permutation(n_samples)
        return np.arange(n_samples)

    def _most_probable_weight(self, weights: np.ndarray, bins: int = 64) -> float:
        """Mode of the non-zero clean weight distribution (``wgh_hp``)."""
        max_weight = float(weights.max())
        if max_weight <= 0:
            return 0.0
        counts, edges = np.histogram(weights, bins=bins, range=(0.0, max_weight))
        if counts.size > 1:
            counts = counts[1:]
            edges = edges[1:]
        if counts.sum() == 0:
            return 0.0
        index = int(np.argmax(counts))
        return float(min(0.5 * (edges[index] + edges[index + 1]), max_weight))


#: Backward-compatible alias: the trainer predates the vectorized engine
#: and was exported as ``STDPTrainer``; existing imports keep working.
STDPTrainer = TrainingRunner
