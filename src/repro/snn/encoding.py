"""Spike encoders: rate (Poisson) and time-to-first-spike, name-registered.

The paper's SNN (like the Diehl & Cook network it follows) receives each
input image as a set of Poisson spike trains whose rates are proportional to
pixel intensity.  The encoder here works in discrete timesteps: a pixel of
intensity ``p`` emits a spike in each timestep independently with probability
``max_rate * p``, where ``max_rate`` is the per-step firing probability of a
fully bright pixel.

Beside the Poisson encoder sits a deterministic time-to-first-spike
(TTFS) encoder — brighter pixels spike earlier, each active pixel exactly
once — and a small registry (:func:`register_encoder`) so network
configurations, campaigns and CLIs select the encoding by name
(``NetworkConfig.encoding``).  All encoders share one interface:
``encode`` (one image → ``(timesteps, n_pixels)``), ``encode_batch``
(``(n, …)`` images → ``(n, timesteps, n_pixels)``, with batch/sequential
stream equality), ``spike_probabilities`` and ``expected_spike_counts``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.utils.rng import RNGLike, resolve_rng
from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "DEFAULT_ENCODING",
    "PoissonEncoder",
    "TTFSEncoder",
    "available_encodings",
    "get_encoder",
    "register_encoder",
]

#: Name of the encoding every pre-existing configuration resolves to.
DEFAULT_ENCODING = "poisson"


class PoissonEncoder:
    """Convert grayscale images into Bernoulli/Poisson spike trains.

    Parameters
    ----------
    timesteps:
        Number of simulation timesteps each image is presented for.
    max_rate:
        Per-timestep spike probability of a pixel with intensity 1.0.  Must
        lie in ``(0, 1]``.
    intensity_scale:
        Optional multiplicative gain applied to pixel intensities before
        encoding (the Diehl & Cook pipeline boosts input intensity when the
        network is too quiet); the effective per-step probability is clipped
        to 1.0.
    target_total_intensity:
        When set, every image is rescaled so the sum of its pixel
        intensities equals this value before encoding (per-sample firing-rate
        normalisation).  This removes the "amount of ink" confound between
        workloads — garment silhouettes carry several times more bright
        pixels than digit strokes — so the same network parameters work for
        both MNIST-like and Fashion-MNIST-like inputs.  ``None`` disables
        the normalisation.
    """

    def __init__(
        self,
        timesteps: int = 150,
        max_rate: float = 0.25,
        intensity_scale: float = 1.0,
        target_total_intensity: float = None,
    ) -> None:
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        self.timesteps = int(timesteps)
        self.max_rate = check_fraction(max_rate, "max_rate")
        self.intensity_scale = check_positive(intensity_scale, "intensity_scale")
        if target_total_intensity is not None:
            target_total_intensity = check_positive(
                target_total_intensity, "target_total_intensity"
            )
        self.target_total_intensity = target_total_intensity

    # ------------------------------------------------------------------ #
    def spike_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Return the per-pixel, per-step spike probability for *image*."""
        image = np.asarray(image, dtype=np.float64)
        if image.size == 0:
            raise ValueError("image must not be empty")
        if image.min() < 0.0 or image.max() > 1.0:
            raise ValueError("image values must lie in [0, 1]")
        flat = image.reshape(-1).astype(np.float64)
        if self.target_total_intensity is not None:
            total = flat.sum()
            if total > 0:
                flat = np.clip(flat * (self.target_total_intensity / total), 0.0, 1.0)
        return np.clip(flat * self.max_rate * self.intensity_scale, 0.0, 1.0)

    def encode(self, image: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        """Encode *image* into a boolean spike raster.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(timesteps, n_pixels)`` where entry
            ``[t, i]`` is True when input *i* spikes at timestep *t*.
        """
        generator = resolve_rng(rng)
        probabilities = self.spike_probabilities(image)
        raster = (
            generator.random((self.timesteps, probabilities.size)) < probabilities
        )
        return raster

    def encode_batch(self, images: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        """Encode a batch of images into one boolean spike raster array.

        Parameters
        ----------
        images:
            Batch of images ``(n, height, width)`` — any trailing shape
            works, each ``images[i]`` is flattened — or a single 2-D image
            (encoded as a batch of one).  Pass a flattened batch as
            ``(n, 1, n_pixels)``.
        rng:
            Seed or generator.  The whole batch is drawn with a single
            ``generator.random((n, timesteps, n_pixels))`` call, which
            consumes exactly the same stream values, in the same order, as
            ``n`` successive :meth:`encode` calls — so batched and
            sequential presentations of the same samples see bitwise
            identical rasters.

        Returns
        -------
        numpy.ndarray
            Boolean array of shape ``(n, timesteps, n_pixels)``.
        """
        generator = resolve_rng(rng)
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 2:
            images = images[np.newaxis, ...]
        if images.ndim != 3:
            raise ValueError(
                f"images must have shape (n, height, width), got {images.shape}"
            )
        probabilities = np.stack(
            [self.spike_probabilities(image) for image in images]
        )
        draws = generator.random((images.shape[0], self.timesteps, probabilities.shape[1]))
        return draws < probabilities[:, np.newaxis, :]

    def expected_spike_counts(self, image: np.ndarray) -> np.ndarray:
        """Expected number of spikes per pixel over the full presentation."""
        return self.spike_probabilities(image) * self.timesteps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoissonEncoder(timesteps={self.timesteps}, max_rate={self.max_rate}, "
            f"intensity_scale={self.intensity_scale})"
        )


class TTFSEncoder:
    """Deterministic time-to-first-spike (latency) encoding.

    Each pixel with a nonzero per-step probability ``p`` (computed exactly
    like the Poisson encoder's, so both encodings share the same intensity
    normalisation) emits exactly one spike, at timestep
    ``min(timesteps - 1, floor((1 - p / max_rate) * timesteps))`` — the
    brighter the pixel, the earlier the spike; dark pixels stay silent.

    The encoder is deterministic: it accepts the ``rng`` argument of the
    shared interface but consumes no random values — identically in
    :meth:`encode` and :meth:`encode_batch`, so batched and sequential
    presentations of the same samples leave any shared generator in the
    same state and see bitwise identical rasters.

    Parameters are those of :class:`PoissonEncoder` (``intensity_scale``
    and ``target_total_intensity`` feed the shared probability pipeline;
    ``max_rate`` normalises the latency ramp).
    """

    def __init__(
        self,
        timesteps: int = 150,
        max_rate: float = 0.25,
        intensity_scale: float = 1.0,
        target_total_intensity: float = None,
    ) -> None:
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        self.timesteps = int(timesteps)
        self.max_rate = check_fraction(max_rate, "max_rate")
        self.intensity_scale = check_positive(intensity_scale, "intensity_scale")
        if target_total_intensity is not None:
            target_total_intensity = check_positive(
                target_total_intensity, "target_total_intensity"
            )
        self.target_total_intensity = target_total_intensity
        # The probability pipeline is shared with the Poisson encoder so
        # both encodings see identical per-pixel intensity normalisation.
        self._rate = PoissonEncoder(
            timesteps=self.timesteps,
            max_rate=self.max_rate,
            intensity_scale=self.intensity_scale,
            target_total_intensity=self.target_total_intensity,
        )

    # ------------------------------------------------------------------ #
    def spike_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Per-pixel intensity proxy (the Poisson per-step probability)."""
        return self._rate.spike_probabilities(image)

    def spike_times(self, image: np.ndarray) -> np.ndarray:
        """First-spike timestep per pixel (``-1`` for silent pixels)."""
        probabilities = self.spike_probabilities(image)
        ramp = 1.0 - probabilities / self.max_rate
        times = np.clip(
            np.floor(ramp * self.timesteps), 0, self.timesteps - 1
        ).astype(np.int64)
        times[probabilities <= 0.0] = -1
        return times

    def encode(self, image: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        """Encode *image* into a boolean ``(timesteps, n_pixels)`` raster.

        ``rng`` is accepted for interface parity and never consumed.
        """
        del rng  # deterministic encoding consumes no randomness
        times = self.spike_times(image)
        raster = np.zeros((self.timesteps, times.size), dtype=bool)
        firing = np.flatnonzero(times >= 0)
        raster[times[firing], firing] = True
        return raster

    def encode_batch(self, images: np.ndarray, rng: RNGLike = None) -> np.ndarray:
        """Encode a batch into ``(n, timesteps, n_pixels)``.

        Deterministic, so it is trivially stream-identical to ``n``
        successive :meth:`encode` calls (neither consumes the generator).
        """
        del rng  # deterministic encoding consumes no randomness
        images = np.asarray(images, dtype=np.float64)
        if images.ndim == 2:
            images = images[np.newaxis, ...]
        if images.ndim != 3:
            raise ValueError(
                f"images must have shape (n, height, width), got {images.shape}"
            )
        rasters = [self.encode(image) for image in images]
        return np.stack(rasters)

    def expected_spike_counts(self, image: np.ndarray) -> np.ndarray:
        """Expected spikes per pixel: exactly one for each active pixel."""
        return (self.spike_probabilities(image) > 0.0).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TTFSEncoder(timesteps={self.timesteps}, max_rate={self.max_rate}, "
            f"intensity_scale={self.intensity_scale})"
        )


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_ENCODERS: Dict[str, Callable[..., object]] = {}


def register_encoder(
    name: str, factory: Callable[..., object], replace: bool = False
) -> None:
    """Register an encoder *factory* under *name*.

    The factory is called with the keyword arguments
    ``timesteps`` / ``max_rate`` / ``target_total_intensity`` (the subset
    of :class:`~repro.snn.network.NetworkConfig` an encoder derives from)
    and must return an object implementing the shared encoder interface.
    Re-registering an existing name requires ``replace=True``.
    """
    if not name:
        raise ValueError("encoder name must be non-empty")
    if name in _ENCODERS and not replace:
        raise ValueError(
            f"encoding {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _ENCODERS[name] = factory


def get_encoder(name: str) -> Callable[..., object]:
    """Return the factory registered for *name*; raise with known names."""
    try:
        return _ENCODERS[name]
    except KeyError:
        raise ValueError(
            f"unknown encoding {name!r}; available: "
            f"{', '.join(available_encodings())}"
        ) from None


def available_encodings() -> List[str]:
    """Sorted names of every registered encoding."""
    return sorted(_ENCODERS)


register_encoder("poisson", PoissonEncoder)
register_encoder("ttfs", TTFSEncoder)
