"""Synapse crossbar: float weights paired with their 8-bit register view.

In the modelled accelerator every synapse stores its weight in a local
register inside the compute engine (Fig. 5 of the paper).  The simulator
works with floating-point weights for speed, but all fault injection and all
Bound-and-Protect weight bounding happen on (or relative to) the register
representation.  :class:`SynapseMatrix` keeps the two views consistent:

* ``weights`` — the float matrix the simulator multiplies spikes with,
* ``registers`` — the unsigned integer codes the accelerator would hold,
  obtained through a :class:`~repro.snn.quantization.WeightQuantizer`.

Loading the matrix into registers is a lossy (quantising) operation; reading
back the registers is exact.  Bit-flip faults are applied to the register
view and then propagated back to the float view, exactly as a particle
strike on the physical register would be observed by the adder tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.snn.kernels import exact_gemm_dtype, exact_scale, register_gemm
from repro.snn.quantization import WeightQuantizer
from repro.utils.bits import flip_bits_in_array

__all__ = ["BoundedWeightRule", "SynapseMatrix"]


@dataclass(frozen=True)
class BoundedWeightRule:
    """Declarative form of a weight-bounding override.

    Instead of handing the simulator a dense substitute weight matrix, a
    bounding rule describes the per-synapse comparator + mux of the
    Bound-and-Protect hardware: any stored weight ``>= threshold`` enters
    the adder as ``substitute``, everything else enters unchanged.  Keeping
    the rule symbolic lets :meth:`SynapseMatrix.current_operator` evaluate
    the bounded currents through exact integer arithmetic (see below), so
    batched and sequential simulations agree bitwise.
    """

    threshold: float
    substitute: float

    def apply(self, weights: np.ndarray) -> np.ndarray:
        """Dense view of the rule (for inspection; simulation uses codes)."""
        weights = np.asarray(weights, dtype=np.float64)
        return np.where(weights >= self.threshold, self.substitute, weights)


#: Accepted forms of a current-accumulation weight override.
EffectiveWeights = Union[None, np.ndarray, BoundedWeightRule]


# Historical homes of the exact-GEMM helpers; the canonical definitions
# now live in repro.snn.kernels and are shared by every engine.
_exact_gemm_dtype = exact_gemm_dtype
_exact_scale = exact_scale


class _LatticeCurrentOperator:
    """Exact current accumulation for register-backed (lattice) weights.

    Every stored weight is ``code * scale`` with an integer ``code``, so
    the crossbar sum factorises as ``(spikes @ codes) * scale``.  The inner
    matmul only ever adds integers (bounded by ``n_inputs * max_code``),
    which every summation order computes exactly — the result is bitwise
    identical for any batch shape, dtype (see :func:`_exact_gemm_dtype`)
    and BLAS kernel, which is what makes the batched engine spike-exact
    against the sequential loop.
    """

    def __init__(self, codes: np.ndarray, scale: float) -> None:
        self._codes = codes
        self._scale = scale

    def compute(self, spikes: np.ndarray) -> np.ndarray:
        """Per-neuron currents for ``(m, n_inputs)`` spike rows."""
        return exact_scale(register_gemm(spikes, self._codes), self._scale)

    @property
    def is_exact(self) -> bool:
        return True


class _BoundedCurrentOperator:
    """Exact current accumulation under a :class:`BoundedWeightRule`.

    The bounded sum splits into the lattice sum of the kept weights plus
    ``substitute`` times the number of spiking bounded synapses — two
    integer matmuls, both exact, combined by one fixed elementwise
    expression.
    """

    def __init__(
        self,
        kept_codes: np.ndarray,
        bounded_mask: np.ndarray,
        scale: float,
        substitute: float,
    ) -> None:
        self._kept_codes = kept_codes
        self._bounded_mask = bounded_mask
        self._scale = scale
        self._substitute = substitute

    def compute(self, spikes: np.ndarray) -> np.ndarray:
        """Per-neuron currents for ``(m, n_inputs)`` spike rows."""
        spikes = np.asarray(spikes, dtype=self._kept_codes.dtype)
        kept = exact_scale(register_gemm(spikes, self._kept_codes), self._scale)
        bounded = exact_scale(
            register_gemm(spikes, self._bounded_mask), self._substitute
        )
        return kept + bounded

    @property
    def is_exact(self) -> bool:
        return True


class _DenseCurrentOperator:
    """Current accumulation for an arbitrary dense weight override.

    A free-form float matrix has no integer decomposition, so the matmul
    rounding depends on the operand shapes; spike parity between batched
    and sequential runs is then only statistical (a spike decision flips
    only when a membrane lands within an ULP of the threshold).  Prefer
    :class:`BoundedWeightRule` for bounding-style overrides.
    """

    def __init__(self, weights: np.ndarray) -> None:
        self._weights = weights

    def compute(self, spikes: np.ndarray) -> np.ndarray:
        """Per-neuron currents for ``(m, n_inputs)`` spike rows."""
        spikes = np.asarray(spikes, dtype=np.float64)
        return spikes @ self._weights

    @property
    def is_exact(self) -> bool:
        return False


class SynapseMatrix:
    """Weight matrix of a fully-connected input-to-excitatory projection.

    Parameters
    ----------
    weights:
        Float weight matrix of shape ``(n_inputs, n_neurons)``; values must
        be non-negative (STDP in this architecture produces excitatory,
        positive weights).
    quantizer:
        Register quantiser; defaults to the paper's 8-bit format.

    Notes
    -----
    The float view always mirrors the register view after construction:
    the constructor performs one quantise/dequantise round trip, so the
    simulation uses exactly the weights the hardware registers can encode.
    """

    def __init__(
        self,
        weights: np.ndarray,
        quantizer: Optional[WeightQuantizer] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(
                f"weights must be 2-D (n_inputs, n_neurons), got shape {weights.shape}"
            )
        if weights.size == 0:
            raise ValueError("weights must not be empty")
        if weights.min() < 0:
            raise ValueError("weights must be non-negative")
        self.quantizer = quantizer if quantizer is not None else WeightQuantizer()
        if weights.max() > self.quantizer.full_scale:
            raise ValueError(
                "weights exceed the quantizer full-scale range "
                f"({weights.max():.4f} > {self.quantizer.full_scale:.4f})"
            )
        self._registers = self.quantizer.quantize(weights)
        self._weights = self.quantizer.dequantize(self._registers)
        self._float_codes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        n_inputs: int,
        n_neurons: int,
        rng: np.random.Generator,
        low: float = 0.0,
        high: float = 0.3,
        quantizer: Optional[WeightQuantizer] = None,
    ) -> "SynapseMatrix":
        """Create a matrix with uniformly random initial weights."""
        if n_inputs <= 0 or n_neurons <= 0:
            raise ValueError("n_inputs and n_neurons must be positive")
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got low={low}, high={high}")
        weights = rng.uniform(low, high, size=(n_inputs, n_neurons))
        return cls(weights, quantizer=quantizer)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_inputs, n_neurons)``."""
        return self._weights.shape

    @property
    def n_inputs(self) -> int:
        """Number of input (pre-synaptic) channels."""
        return int(self._weights.shape[0])

    @property
    def n_neurons(self) -> int:
        """Number of excitatory (post-synaptic) neurons."""
        return int(self._weights.shape[1])

    @property
    def n_synapses(self) -> int:
        """Total number of synapses (weight registers) in the crossbar."""
        return int(self._weights.size)

    @property
    def weights(self) -> np.ndarray:
        """Float view of the weights (copy; mutate via the provided methods)."""
        return self._weights.copy()

    @property
    def registers(self) -> np.ndarray:
        """Register-code view of the weights (copy)."""
        return self._registers.copy()

    def current_operator(self, effective_weights: EffectiveWeights = None):
        """Build the current-accumulation operator for this crossbar.

        The operator's ``compute(spikes)`` maps ``(m, n_inputs)`` spike
        rows to ``(m, n_neurons)`` input currents.  Stored weights and
        :class:`BoundedWeightRule` overrides evaluate through exact
        integer-code arithmetic, making the result bitwise independent of
        the batch shape; a dense override array falls back to a plain
        float matmul.
        """
        gemm_dtype = exact_gemm_dtype(self.n_inputs, self.quantizer.max_code)
        if effective_weights is None:
            if self._float_codes is None:
                self._float_codes = self._registers.astype(gemm_dtype)
            return _LatticeCurrentOperator(self._float_codes, self.quantizer.scale)
        if isinstance(effective_weights, BoundedWeightRule):
            if self._float_codes is None:
                self._float_codes = self._registers.astype(gemm_dtype)
            bounded_mask = self._weights >= effective_weights.threshold
            kept_codes = np.where(
                bounded_mask, gemm_dtype.type(0.0), self._float_codes
            )
            return _BoundedCurrentOperator(
                kept_codes,
                bounded_mask.astype(gemm_dtype),
                self.quantizer.scale,
                effective_weights.substitute,
            )
        effective_weights = np.asarray(effective_weights, dtype=np.float64)
        if effective_weights.shape != self.shape:
            raise ValueError(
                f"effective_weights must have shape {self.shape}, "
                f"got {effective_weights.shape}"
            )
        return _DenseCurrentOperator(effective_weights)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def set_weights(self, weights: np.ndarray) -> None:
        """Load new float weights (quantised on the way into the registers)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self.shape:
            raise ValueError(
                f"weights must have shape {self.shape}, got {weights.shape}"
            )
        if weights.min() < 0:
            raise ValueError("weights must be non-negative")
        if weights.max() > self.quantizer.full_scale:
            raise ValueError(
                "weights exceed the quantizer full-scale range "
                f"({weights.max():.4f} > {self.quantizer.full_scale:.4f})"
            )
        self._registers = self.quantizer.quantize(weights)
        self._weights = self.quantizer.dequantize(self._registers)
        self._float_codes = None

    def set_registers(self, registers: np.ndarray) -> None:
        """Overwrite the register codes directly (e.g. after fault injection)."""
        registers = np.asarray(registers)
        if registers.shape != self.shape:
            raise ValueError(
                f"registers must have shape {self.shape}, got {registers.shape}"
            )
        if not np.issubdtype(registers.dtype, np.integer):
            raise TypeError("registers must be an integer array")
        if registers.min() < 0 or registers.max() > self.quantizer.max_code:
            raise ValueError(
                f"register codes must lie in [0, {self.quantizer.max_code}]"
            )
        self._registers = registers.astype(self.quantizer.dtype).copy()
        self._weights = self.quantizer.dequantize(self._registers)
        self._float_codes = None

    def apply_bit_flips(
        self, flat_indices: np.ndarray, bit_positions: np.ndarray
    ) -> None:
        """Flip the given register bits in place (soft-error injection).

        Parameters
        ----------
        flat_indices:
            Flat indices into the ``(n_inputs, n_neurons)`` register array.
        bit_positions:
            Struck bit position for each index (0 = least-significant bit).
        """
        flipped = flip_bits_in_array(
            self._registers.astype(np.int64),
            np.asarray(flat_indices, dtype=np.int64),
            np.asarray(bit_positions, dtype=np.int64),
            bit_width=self.quantizer.bits,
        )
        self.set_registers(flipped)

    def copy(self) -> "SynapseMatrix":
        """Return an independent copy of this synapse matrix."""
        clone = SynapseMatrix.__new__(SynapseMatrix)
        clone.quantizer = self.quantizer
        clone._registers = self._registers.copy()
        clone._weights = self._weights.copy()
        clone._float_codes = None
        return clone

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def input_current(
        self, input_spikes: np.ndarray, effective_weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Accumulate the per-neuron current for one timestep of input spikes.

        This models the per-column adder chain of the crossbar: each neuron
        receives the sum of the weights of its synapses whose input spiked.

        Parameters
        ----------
        input_spikes:
            Boolean (or 0/1) vector of length ``n_inputs``.
        effective_weights:
            Optional weight override: a dense substitute matrix or a
            :class:`BoundedWeightRule`; defaults to the stored weights.
        """
        input_spikes = np.asarray(input_spikes)
        if input_spikes.shape != (self.n_inputs,):
            raise ValueError(
                f"input_spikes must have shape ({self.n_inputs},), "
                f"got {input_spikes.shape}"
            )
        operator = self.current_operator(effective_weights)
        return operator.compute(input_spikes[np.newaxis, :])[0]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def max_weight(self) -> float:
        """Maximum weight currently stored (the clean network's ``wgh_max``)."""
        return float(self._weights.max())

    def weight_histogram(
        self, bins: int = 50, value_range: Optional[Tuple[float, float]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of the stored weights (used to reproduce Fig. 9)."""
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        if value_range is None:
            value_range = (0.0, self.quantizer.full_scale)
        counts, edges = np.histogram(self._weights, bins=bins, range=value_range)
        return counts, edges

    def most_probable_weight(self, bins: int = 64, exclude_zero: bool = True) -> float:
        """Mode of the weight distribution (the paper's ``wgh_hp`` for BnP3).

        The histogram is computed over the occupied weight range
        ``[0, max_weight]`` rather than the full register range, so the mode
        is resolved at the granularity of the weights that actually exist.
        The returned value never exceeds the current maximum weight.

        Parameters
        ----------
        bins:
            Histogram resolution used to locate the mode.
        exclude_zero:
            STDP drives many weights to (near) zero; excluding the first bin
            returns the most probable *informative* weight, which is what
            BnP3 substitutes for out-of-range values.
        """
        max_weight = self.max_weight()
        if max_weight <= 0:
            return 0.0
        counts, edges = self.weight_histogram(
            bins=bins, value_range=(0.0, max_weight)
        )
        if exclude_zero and counts.size > 1:
            counts = counts[1:]
            edges = edges[1:]
        if counts.sum() == 0:
            return 0.0
        index = int(np.argmax(counts))
        return float(min(0.5 * (edges[index] + edges[index + 1]), max_weight))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SynapseMatrix(shape={self.shape}, bits={self.quantizer.bits}, "
            f"max_weight={self.max_weight():.4f})"
        )
