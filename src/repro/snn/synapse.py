"""Synapse crossbar: float weights paired with their 8-bit register view.

In the modelled accelerator every synapse stores its weight in a local
register inside the compute engine (Fig. 5 of the paper).  The simulator
works with floating-point weights for speed, but all fault injection and all
Bound-and-Protect weight bounding happen on (or relative to) the register
representation.  :class:`SynapseMatrix` keeps the two views consistent:

* ``weights`` — the float matrix the simulator multiplies spikes with,
* ``registers`` — the unsigned integer codes the accelerator would hold,
  obtained through a :class:`~repro.snn.quantization.WeightQuantizer`.

Loading the matrix into registers is a lossy (quantising) operation; reading
back the registers is exact.  Bit-flip faults are applied to the register
view and then propagated back to the float view, exactly as a particle
strike on the physical register would be observed by the adder tree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.snn.quantization import WeightQuantizer
from repro.utils.bits import flip_bits_in_array

__all__ = ["SynapseMatrix"]


class SynapseMatrix:
    """Weight matrix of a fully-connected input-to-excitatory projection.

    Parameters
    ----------
    weights:
        Float weight matrix of shape ``(n_inputs, n_neurons)``; values must
        be non-negative (STDP in this architecture produces excitatory,
        positive weights).
    quantizer:
        Register quantiser; defaults to the paper's 8-bit format.

    Notes
    -----
    The float view always mirrors the register view after construction:
    the constructor performs one quantise/dequantise round trip, so the
    simulation uses exactly the weights the hardware registers can encode.
    """

    def __init__(
        self,
        weights: np.ndarray,
        quantizer: Optional[WeightQuantizer] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(
                f"weights must be 2-D (n_inputs, n_neurons), got shape {weights.shape}"
            )
        if weights.size == 0:
            raise ValueError("weights must not be empty")
        if weights.min() < 0:
            raise ValueError("weights must be non-negative")
        self.quantizer = quantizer if quantizer is not None else WeightQuantizer()
        if weights.max() > self.quantizer.full_scale:
            raise ValueError(
                "weights exceed the quantizer full-scale range "
                f"({weights.max():.4f} > {self.quantizer.full_scale:.4f})"
            )
        self._registers = self.quantizer.quantize(weights)
        self._weights = self.quantizer.dequantize(self._registers)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        n_inputs: int,
        n_neurons: int,
        rng: np.random.Generator,
        low: float = 0.0,
        high: float = 0.3,
        quantizer: Optional[WeightQuantizer] = None,
    ) -> "SynapseMatrix":
        """Create a matrix with uniformly random initial weights."""
        if n_inputs <= 0 or n_neurons <= 0:
            raise ValueError("n_inputs and n_neurons must be positive")
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got low={low}, high={high}")
        weights = rng.uniform(low, high, size=(n_inputs, n_neurons))
        return cls(weights, quantizer=quantizer)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_inputs, n_neurons)``."""
        return self._weights.shape

    @property
    def n_inputs(self) -> int:
        """Number of input (pre-synaptic) channels."""
        return int(self._weights.shape[0])

    @property
    def n_neurons(self) -> int:
        """Number of excitatory (post-synaptic) neurons."""
        return int(self._weights.shape[1])

    @property
    def n_synapses(self) -> int:
        """Total number of synapses (weight registers) in the crossbar."""
        return int(self._weights.size)

    @property
    def weights(self) -> np.ndarray:
        """Float view of the weights (copy; mutate via the provided methods)."""
        return self._weights.copy()

    @property
    def registers(self) -> np.ndarray:
        """Register-code view of the weights (copy)."""
        return self._registers.copy()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def set_weights(self, weights: np.ndarray) -> None:
        """Load new float weights (quantised on the way into the registers)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self.shape:
            raise ValueError(
                f"weights must have shape {self.shape}, got {weights.shape}"
            )
        if weights.min() < 0:
            raise ValueError("weights must be non-negative")
        if weights.max() > self.quantizer.full_scale:
            raise ValueError(
                "weights exceed the quantizer full-scale range "
                f"({weights.max():.4f} > {self.quantizer.full_scale:.4f})"
            )
        self._registers = self.quantizer.quantize(weights)
        self._weights = self.quantizer.dequantize(self._registers)

    def set_registers(self, registers: np.ndarray) -> None:
        """Overwrite the register codes directly (e.g. after fault injection)."""
        registers = np.asarray(registers)
        if registers.shape != self.shape:
            raise ValueError(
                f"registers must have shape {self.shape}, got {registers.shape}"
            )
        if not np.issubdtype(registers.dtype, np.integer):
            raise TypeError("registers must be an integer array")
        if registers.min() < 0 or registers.max() > self.quantizer.max_code:
            raise ValueError(
                f"register codes must lie in [0, {self.quantizer.max_code}]"
            )
        self._registers = registers.astype(self.quantizer.dtype).copy()
        self._weights = self.quantizer.dequantize(self._registers)

    def apply_bit_flips(
        self, flat_indices: np.ndarray, bit_positions: np.ndarray
    ) -> None:
        """Flip the given register bits in place (soft-error injection).

        Parameters
        ----------
        flat_indices:
            Flat indices into the ``(n_inputs, n_neurons)`` register array.
        bit_positions:
            Struck bit position for each index (0 = least-significant bit).
        """
        flipped = flip_bits_in_array(
            self._registers.astype(np.int64),
            np.asarray(flat_indices, dtype=np.int64),
            np.asarray(bit_positions, dtype=np.int64),
            bit_width=self.quantizer.bits,
        )
        self.set_registers(flipped)

    def copy(self) -> "SynapseMatrix":
        """Return an independent copy of this synapse matrix."""
        clone = SynapseMatrix.__new__(SynapseMatrix)
        clone.quantizer = self.quantizer
        clone._registers = self._registers.copy()
        clone._weights = self._weights.copy()
        return clone

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    def input_current(
        self, input_spikes: np.ndarray, effective_weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Accumulate the per-neuron current for one timestep of input spikes.

        This models the per-column adder chain of the crossbar: each neuron
        receives the sum of the weights of its synapses whose input spiked.

        Parameters
        ----------
        input_spikes:
            Boolean (or 0/1) vector of length ``n_inputs``.
        effective_weights:
            Optional substitute weight matrix (e.g. after Bound-and-Protect
            weight bounding); defaults to the stored weights.
        """
        input_spikes = np.asarray(input_spikes)
        if input_spikes.shape != (self.n_inputs,):
            raise ValueError(
                f"input_spikes must have shape ({self.n_inputs},), "
                f"got {input_spikes.shape}"
            )
        weights = self._weights if effective_weights is None else effective_weights
        if weights.shape != self.shape:
            raise ValueError(
                f"effective_weights must have shape {self.shape}, got {weights.shape}"
            )
        return input_spikes.astype(np.float64) @ weights

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def max_weight(self) -> float:
        """Maximum weight currently stored (the clean network's ``wgh_max``)."""
        return float(self._weights.max())

    def weight_histogram(
        self, bins: int = 50, value_range: Optional[Tuple[float, float]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of the stored weights (used to reproduce Fig. 9)."""
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        if value_range is None:
            value_range = (0.0, self.quantizer.full_scale)
        counts, edges = np.histogram(self._weights, bins=bins, range=value_range)
        return counts, edges

    def most_probable_weight(self, bins: int = 64, exclude_zero: bool = True) -> float:
        """Mode of the weight distribution (the paper's ``wgh_hp`` for BnP3).

        The histogram is computed over the occupied weight range
        ``[0, max_weight]`` rather than the full register range, so the mode
        is resolved at the granularity of the weights that actually exist.
        The returned value never exceeds the current maximum weight.

        Parameters
        ----------
        bins:
            Histogram resolution used to locate the mode.
        exclude_zero:
            STDP drives many weights to (near) zero; excluding the first bin
            returns the most probable *informative* weight, which is what
            BnP3 substitutes for out-of-range values.
        """
        max_weight = self.max_weight()
        if max_weight <= 0:
            return 0.0
        counts, edges = self.weight_histogram(
            bins=bins, value_range=(0.0, max_weight)
        )
        if exclude_zero and counts.size > 1:
            counts = counts[1:]
            edges = edges[1:]
        if counts.sum() == 0:
            return 0.0
        index = int(np.argmax(counts))
        return float(min(0.5 * (edges[index] + edges[index + 1]), max_weight))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SynapseMatrix(shape={self.shape}, bits={self.quantizer.bits}, "
            f"max_weight={self.max_weight():.4f})"
        )
