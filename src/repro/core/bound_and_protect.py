"""The Bound-and-Protect (BnP) mechanisms of Section 3.2.

Two run-time mechanisms make up BnP:

**Weight bounding** (Eq. 1): any weight greater than or equal to the weight
threshold ``wgh_th`` is replaced with a predefined value ``wgh_def``.  The
threshold comes from the fault-tolerance analysis — it is the maximum weight
of the pre-trained clean network (``wgh_max``), because weights above that
value can only exist because of soft errors and they make neurons
hyper-active.  The three variants differ only in the substitute value:

============  =======================================
variant        ``wgh_def``
============  =======================================
BnP1           0
BnP2           ``wgh_max`` (the clean maximum itself)
BnP3           ``wgh_hp`` (most probable clean weight)
============  =======================================

**Neuron protection**: the hardware monitors the ``Vmem >= Vth`` comparator
of every neuron; if it stays asserted for two or more consecutive cycles the
``Vmem reset`` operation must be faulty (a healthy neuron resets immediately
after crossing the threshold), and the neuron's spike generation is gated
off so it cannot flood the network with burst spikes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hardware.enhancements import MitigationKind
from repro.snn.synapse import BoundedWeightRule
from repro.utils.validation import check_non_negative

__all__ = ["BnPVariant", "WeightBounding", "NeuronProtection"]


class BnPVariant(enum.Enum):
    """The three Bound-and-Protect variants of Section 3.2."""

    BNP1 = "bnp1"
    BNP2 = "bnp2"
    BNP3 = "bnp3"

    @property
    def mitigation_kind(self) -> MitigationKind:
        """The hardware-model technique kind corresponding to this variant."""
        return {
            BnPVariant.BNP1: MitigationKind.BNP1,
            BnPVariant.BNP2: MitigationKind.BNP2,
            BnPVariant.BNP3: MitigationKind.BNP3,
        }[self]


@dataclass(frozen=True)
class WeightBounding:
    """Weight bounding as defined by Eq. 1 of the paper.

    Attributes
    ----------
    threshold:
        The weight threshold ``wgh_th``; any weight ``>= threshold`` is
        replaced.  The SoftSNN methodology sets it to the clean network's
        maximum weight.
    substitute:
        The predefined replacement value ``wgh_def``.
    """

    threshold: float
    substitute: float

    def __post_init__(self) -> None:
        check_non_negative(self.threshold, "threshold")
        check_non_negative(self.substitute, "substitute")
        if self.threshold == 0:
            raise ValueError(
                "threshold must be positive; a zero threshold would replace every weight"
            )
        if self.substitute > self.threshold:
            raise ValueError(
                "substitute must not exceed the threshold "
                f"({self.substitute} > {self.threshold}); otherwise bounding would "
                "reintroduce out-of-range weights"
            )

    # ------------------------------------------------------------------ #
    # constructors for the three variants
    # ------------------------------------------------------------------ #
    @classmethod
    def bnp1(cls, clean_max_weight: float) -> "WeightBounding":
        """BnP1: replace out-of-range weights with zero."""
        return cls(threshold=clean_max_weight, substitute=0.0)

    @classmethod
    def bnp2(cls, clean_max_weight: float) -> "WeightBounding":
        """BnP2: replace out-of-range weights with the clean maximum weight."""
        return cls(threshold=clean_max_weight, substitute=clean_max_weight)

    @classmethod
    def bnp3(
        cls, clean_max_weight: float, most_probable_weight: float
    ) -> "WeightBounding":
        """BnP3: replace out-of-range weights with the most probable clean weight."""
        return cls(threshold=clean_max_weight, substitute=most_probable_weight)

    @classmethod
    def for_variant(
        cls,
        variant: BnPVariant,
        clean_max_weight: float,
        most_probable_weight: Optional[float] = None,
    ) -> "WeightBounding":
        """Build the bounding rule for *variant* from clean-network statistics."""
        if variant == BnPVariant.BNP1:
            return cls.bnp1(clean_max_weight)
        if variant == BnPVariant.BNP2:
            return cls.bnp2(clean_max_weight)
        if most_probable_weight is None:
            raise ValueError("BnP3 requires the most probable clean weight (wgh_hp)")
        return cls.bnp3(clean_max_weight, most_probable_weight)

    # ------------------------------------------------------------------ #
    def apply(self, weights: np.ndarray) -> np.ndarray:
        """Return the bounded copy of *weights* (Eq. 1).

        This is the software model of the per-synapse comparator + mux of
        Fig. 11: the stored (possibly corrupted) registers are untouched;
        only the value forwarded to the adder chain is bounded.
        """
        return self.as_weight_rule().apply(weights)

    def as_weight_rule(self) -> BoundedWeightRule:
        """Symbolic form of Eq. 1 consumed by the simulation hot paths.

        Passing the rule (rather than a dense bounded matrix) lets
        :meth:`repro.snn.synapse.SynapseMatrix.current_operator` evaluate
        the bounded currents through exact integer-code arithmetic, keeping
        batched and sequential runs bitwise identical.
        """
        return BoundedWeightRule(
            threshold=self.threshold, substitute=self.substitute
        )

    def out_of_range_mask(self, weights: np.ndarray) -> np.ndarray:
        """Boolean mask of the weights the bounding rule would replace."""
        return np.asarray(weights, dtype=np.float64) >= self.threshold

    def count_bounded(self, weights: np.ndarray) -> int:
        """Number of weights the bounding rule replaces in *weights*."""
        return int(self.out_of_range_mask(weights).sum())


class NeuronProtection:
    """Faulty ``Vmem reset`` detector and spike gate (Section 3.2 / Fig. 11c).

    An instance is used as the ``step_monitor`` hook of the inference
    paths: after every timestep it reads how long each neuron's
    ``Vmem >= Vth`` comparator has stayed asserted, and once that reaches
    ``trigger_cycles`` (two in the paper) it latches the neuron's spike
    generation off for the rest of the presentation.

    The monitor understands both state protocols: the sequential
    :class:`~repro.snn.neuron.LIFNeuronGroup` (1-D comparator counter) and
    the batched :class:`~repro.snn.engine.BatchedLIFState` (a
    ``(batch, n_neurons)`` counter).  On the batched path the gating still
    happens live inside :meth:`__call__`, but the statistics are recorded
    through :meth:`commit_batch` once the engine *accepts* a batch of
    samples — the engine may re-simulate suffixes of a batch to resolve
    cross-sample faulty-reset latches, and only accepted passes count.

    The map-parallel engine (:class:`~repro.snn.engine.MapParallelEngine`)
    applies the identical ``counter >= trigger_cycles`` gate inline per row
    (a :class:`~repro.snn.engine.MapRow` carries the trigger as
    ``protection_trigger_cycles``), so no monitor object — and no
    protection statistics bookkeeping — exists on that path.

    Parameters
    ----------
    trigger_cycles:
        Number of consecutive above-threshold cycles that identify a faulty
        reset operation.
    """

    def __init__(self, trigger_cycles: int = 2) -> None:
        if trigger_cycles < 1:
            raise ValueError(
                f"trigger_cycles must be at least 1, got {trigger_cycles}"
            )
        self.trigger_cycles = int(trigger_cycles)
        self._protected_neurons: set = set()
        self._activations = 0

    # ------------------------------------------------------------------ #
    def __call__(self, neurons) -> None:
        """Inspect the neuron state after one timestep and gate faulty neurons.

        *neurons* is either a :class:`~repro.snn.neuron.LIFNeuronGroup` or
        a :class:`~repro.snn.engine.BatchedLIFState`.
        """
        counter = neurons.consecutive_above_threshold
        stuck = counter >= self.trigger_cycles
        if not stuck.any():
            return
        if counter.ndim == 1:
            newly_protected = stuck & ~neurons.spike_disabled
            if newly_protected.any():
                self._protected_neurons.update(
                    int(index) for index in np.flatnonzero(newly_protected)
                )
                self._activations += int(newly_protected.sum())
        neurons.disable_spiking(stuck)

    def commit_batch(
        self, sample_indices: np.ndarray, spike_disabled: np.ndarray
    ) -> None:
        """Record the protection statistics of accepted batch samples.

        Parameters
        ----------
        sample_indices:
            Global dataset index of each accepted row (unused by the
            default statistics, which aggregate over samples exactly like
            the sequential path, but part of the protocol so subclasses can
            attribute events to samples).
        spike_disabled:
            Final ``(rows, n_neurons)`` spike-gate state of the accepted
            rows; every gated (sample, neuron) pair is one activation,
            matching the sequential count of newly-protected events.
        """
        spike_disabled = np.asarray(spike_disabled, dtype=bool)
        if spike_disabled.any():
            self._activations += int(spike_disabled.sum())
            self._protected_neurons.update(
                int(index) for index in np.flatnonzero(spike_disabled.any(axis=0))
            )

    # ------------------------------------------------------------------ #
    @property
    def protected_neurons(self) -> frozenset:
        """Indices of neurons whose spike generation has been gated off."""
        return frozenset(self._protected_neurons)

    @property
    def n_protected(self) -> int:
        """Number of distinct neurons protected so far."""
        return len(self._protected_neurons)

    @property
    def activation_count(self) -> int:
        """Total number of gate-off events (across all presentations)."""
        return self._activations

    def reset_statistics(self) -> None:
        """Clear the bookkeeping (the per-network latches live in the network)."""
        self._protected_neurons.clear()
        self._activations = 0

    def statistics(self) -> Dict[str, int]:
        """JSON-friendly summary of the protection activity."""
        return {
            "trigger_cycles": self.trigger_cycles,
            "n_protected_neurons": self.n_protected,
            "activation_count": self.activation_count,
        }
