"""SNN fault-tolerance analysis (Section 3.1 of the paper).

The analysis characterises how a given trained SNN behaves under soft
errors, and distils the information the Bound-and-Protect techniques need:

* **Weight-distribution analysis** (Fig. 9): how register bit flips move
  weights outside the clean network's range, and therefore why the clean
  maximum weight is a usable detection threshold (``wgh_th = wgh_max``).
* **Neuron-fault sensitivity** (Fig. 10a): which of the four faulty neuron
  operations actually endanger accuracy.  The paper's conclusion — only the
  faulty ``Vmem reset`` is catastrophic — is what motivates protecting the
  reset path and tolerating the other three fault types.
* **Safe-range derivation**: the concrete ``wgh_th`` / ``wgh_def`` values
  handed to the BnP techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.datasets import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.snn.inference import InferenceEngine
from repro.snn.training import TrainedModel
from repro.utils.rng import RNGLike, resolve_rng

__all__ = [
    "WeightDistributionAnalysis",
    "NeuronFaultSensitivity",
    "FaultToleranceAnalyzer",
]


@dataclass
class WeightDistributionAnalysis:
    """Clean-vs-faulty weight distribution comparison (Fig. 9).

    Attributes
    ----------
    fault_rate:
        Fault rate used for the faulty distribution.
    bin_edges:
        Histogram bin edges shared by both distributions.
    clean_counts / faulty_counts:
        Histogram counts of the clean and faulty weights.
    clean_max_weight:
        Maximum clean weight (``wgh_max``, the top of the safe range).
    most_probable_weight:
        Mode of the non-zero clean weights (``wgh_hp``).
    n_weights_above_clean_max:
        Number of faulty weights exceeding ``wgh_max`` — the weights the
        bounding rule exists to catch.
    n_increased / n_decreased:
        How many weights the bit flips increased / decreased.
    """

    fault_rate: float
    bin_edges: np.ndarray
    clean_counts: np.ndarray
    faulty_counts: np.ndarray
    clean_max_weight: float
    most_probable_weight: float
    n_weights_above_clean_max: int
    n_increased: int
    n_decreased: int

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary (without the raw histograms)."""
        return {
            "fault_rate": self.fault_rate,
            "clean_max_weight": self.clean_max_weight,
            "most_probable_weight": self.most_probable_weight,
            "n_weights_above_clean_max": self.n_weights_above_clean_max,
            "n_increased": self.n_increased,
            "n_decreased": self.n_decreased,
        }


@dataclass
class NeuronFaultSensitivity:
    """Accuracy impact of each faulty neuron-operation type (Fig. 10a).

    Attributes
    ----------
    fault_rates:
        Fault rates the sweep covered.
    accuracy_by_type:
        Mapping from fault type to the list of accuracies (percent), one per
        fault rate, in the order of ``fault_rates``.
    baseline_accuracy:
        Clean (fault-free) accuracy in percent.
    """

    fault_rates: List[float]
    accuracy_by_type: Dict[NeuronFaultType, List[float]]
    baseline_accuracy: float

    def critical_types(self, tolerance_percent: float = 10.0) -> List[NeuronFaultType]:
        """Fault types whose worst-case drop exceeds *tolerance_percent*.

        The paper's analysis flags ``VMEM_RESET`` as the only critical type;
        this method re-derives that conclusion from the measured sweep.
        """
        critical = []
        for fault_type, accuracies in self.accuracy_by_type.items():
            worst = min(accuracies) if accuracies else self.baseline_accuracy
            if self.baseline_accuracy - worst > tolerance_percent:
                critical.append(fault_type)
        return critical

    def summary(self) -> Dict[str, object]:
        """JSON-friendly summary."""
        return {
            "fault_rates": list(self.fault_rates),
            "baseline_accuracy": self.baseline_accuracy,
            "accuracy_by_type": {
                fault_type.value: list(accuracies)
                for fault_type, accuracies in self.accuracy_by_type.items()
            },
        }


@dataclass
class SafeRange:
    """The safe weight range and substitute values derived from a clean model."""

    weight_threshold: float
    bnp1_substitute: float = 0.0
    bnp2_substitute: float = 0.0
    bnp3_substitute: float = 0.0
    notes: Dict[str, object] = field(default_factory=dict)


class FaultToleranceAnalyzer:
    """Performs the Section 3.1 analysis for a trained model.

    Parameters
    ----------
    model:
        The trained clean model to analyse.
    """

    def __init__(self, model: TrainedModel) -> None:
        self.model = model

    # ------------------------------------------------------------------ #
    # weight distribution (Fig. 9)
    # ------------------------------------------------------------------ #
    def weight_distribution(
        self,
        fault_rate: float = 0.1,
        bins: int = 40,
        rng: RNGLike = None,
    ) -> WeightDistributionAnalysis:
        """Compare the clean and bit-flip-corrupted weight distributions."""
        generator = resolve_rng(rng)
        network = self.model.build_network(rng=generator)
        clean_weights = network.synapses.weights

        injector = FaultInjector(network)
        config = ComputeEngineFaultConfig.synapses_only(fault_rate)
        report = injector.inject(config, rng=generator)
        faulty_weights = network.synapses.weights

        full_scale = network.synapses.quantizer.full_scale
        bin_edges = np.linspace(0.0, full_scale, bins + 1)
        clean_counts, _ = np.histogram(clean_weights, bins=bin_edges)
        faulty_counts, _ = np.histogram(faulty_weights, bins=bin_edges)
        summary = report.weight_change_summary

        return WeightDistributionAnalysis(
            fault_rate=fault_rate,
            bin_edges=bin_edges,
            clean_counts=clean_counts,
            faulty_counts=faulty_counts,
            clean_max_weight=float(clean_weights.max()),
            most_probable_weight=self.model.clean_most_probable_weight,
            n_weights_above_clean_max=int(summary["n_above_clean_max"]),
            n_increased=int(summary["n_increased"]),
            n_decreased=int(summary["n_decreased"]),
        )

    # ------------------------------------------------------------------ #
    # neuron-fault sensitivity (Fig. 10a)
    # ------------------------------------------------------------------ #
    def neuron_fault_sensitivity(
        self,
        dataset: Dataset,
        fault_rates: Optional[List[float]] = None,
        rng: RNGLike = None,
    ) -> NeuronFaultSensitivity:
        """Measure accuracy under each neuron fault type across fault rates."""
        if fault_rates is None:
            fault_rates = [0.01, 0.1, 0.5, 1.0]
        generator = resolve_rng(rng)
        baseline = self.accuracy_under_faults(dataset, fault_config=None, rng=generator)

        accuracy_by_type: Dict[NeuronFaultType, List[float]] = {}
        for fault_type in NeuronFaultType.all_types():
            accuracies = []
            for fault_rate in fault_rates:
                config = ComputeEngineFaultConfig.neurons_only(
                    fault_rate, fault_type=fault_type
                )
                accuracies.append(
                    self.accuracy_under_faults(dataset, config, rng=generator)
                )
            accuracy_by_type[fault_type] = accuracies

        return NeuronFaultSensitivity(
            fault_rates=list(fault_rates),
            accuracy_by_type=accuracy_by_type,
            baseline_accuracy=baseline,
        )

    # ------------------------------------------------------------------ #
    # accuracy probes
    # ------------------------------------------------------------------ #
    def accuracy_under_faults(
        self,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig],
        rng: RNGLike = None,
    ) -> float:
        """Accuracy (percent) of the unmitigated network under one scenario."""
        generator = resolve_rng(rng)
        network = self.model.build_network(rng=generator)
        if fault_config is not None and fault_config.fault_rate > 0:
            FaultInjector(network).inject(fault_config, rng=generator)
        engine = InferenceEngine(network, self.model.neuron_labels)
        return engine.evaluate(dataset, rng=generator).accuracy_percent

    # ------------------------------------------------------------------ #
    # safe range derivation
    # ------------------------------------------------------------------ #
    def derive_safe_range(self) -> SafeRange:
        """Derive ``wgh_th`` and the three ``wgh_def`` values from the clean model."""
        return SafeRange(
            weight_threshold=self.model.clean_max_weight,
            bnp1_substitute=0.0,
            bnp2_substitute=self.model.clean_max_weight,
            bnp3_substitute=self.model.clean_most_probable_weight,
            notes={
                "threshold_source": "maximum weight of the pre-trained clean SNN",
                "bnp3_source": "mode of the non-zero clean weight distribution",
            },
        )
