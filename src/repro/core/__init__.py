"""The SoftSNN methodology — the paper's primary contribution.

This subpackage implements Section 3 of the paper on top of the substrates
(:mod:`repro.snn`, :mod:`repro.faults`, :mod:`repro.hardware`):

* :mod:`repro.core.bound_and_protect` — the Bound-and-Protect mechanisms:
  weight bounding (Eq. 1) in its three variants BnP1/BnP2/BnP3, and neuron
  protection (faulty ``Vmem reset`` detection + spike-generation gating).
* :mod:`repro.core.mitigation` — run-time mitigation techniques sharing one
  evaluation interface: ``NoMitigation``, the re-execution (TMR) baseline,
  and the three BnP techniques.
* :mod:`repro.core.fault_analysis` — the SNN fault-tolerance analysis of
  Section 3.1 (weight-distribution analysis behind Fig. 9, fault-type
  sensitivity behind Fig. 10, and the derivation of the safe weight range).
* :mod:`repro.core.methodology` — the end-to-end SoftSNN pipeline of Fig. 8
  tying analysis, technique construction and protected inference together.
"""

from repro.core.bound_and_protect import (
    BnPVariant,
    NeuronProtection,
    WeightBounding,
)
from repro.core.fault_analysis import (
    FaultToleranceAnalyzer,
    NeuronFaultSensitivity,
    WeightDistributionAnalysis,
)
from repro.core.methodology import SoftSNNMethodology
from repro.core.mitigation import (
    BnPTechnique,
    MitigationTechnique,
    NoMitigation,
    ReExecutionTMR,
    build_technique,
)

__all__ = [
    "BnPTechnique",
    "BnPVariant",
    "FaultToleranceAnalyzer",
    "MitigationTechnique",
    "NeuronFaultSensitivity",
    "NeuronProtection",
    "NoMitigation",
    "ReExecutionTMR",
    "SoftSNNMethodology",
    "WeightBounding",
    "WeightDistributionAnalysis",
    "build_technique",
]
