"""Run-time mitigation techniques sharing one evaluation interface.

Every technique answers the same question — *given a trained model, a test
set and a soft-error scenario, what accuracy does the system deliver?* —
through :meth:`MitigationTechnique.evaluate`.  The available techniques are
the paper's comparison partners:

* :class:`NoMitigation` — the unprotected baseline: the faulty compute
  engine is used as-is.
* :class:`ReExecutionTMR` — the conventional fault-tolerance baseline:
  every inference is executed three times (reloading the parameters each
  time, so each execution sees an independently drawn soft-error pattern)
  and the predictions are combined by majority vote.
* :class:`BnPTechnique` — SoftSNN's Bound-and-Protect in its three variants
  (BnP1 / BnP2 / BnP3): weight bounding on the values read from the
  (possibly corrupted) registers plus neuron protection against faulty
  ``Vmem reset`` operations.

The fault map can be drawn inside ``evaluate`` or passed in explicitly; the
experiment harness passes the same map to every technique so comparisons at
a given fault rate are paired.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.data.datasets import Dataset
from repro.faults.fault_map import FaultMap
from repro.faults.injector import FaultInjector
from repro.faults.models import ComputeEngineFaultConfig
from repro.hardware.enhancements import MitigationKind
from repro.snn.inference import InferenceEngine, InferenceResult
from repro.snn.training import TrainedModel
from repro.utils.rng import RNGLike, resolve_rng

__all__ = [
    "MitigationTechnique",
    "NoMitigation",
    "ReExecutionTMR",
    "BnPTechnique",
    "build_technique",
]


class MitigationTechnique(abc.ABC):
    """Common interface of all mitigation techniques."""

    #: Hardware-model identity of the technique (drives cost estimation).
    kind: MitigationKind = MitigationKind.NO_MITIGATION

    @property
    def name(self) -> str:
        """Human-readable technique name used in reports and benches."""
        return self.kind.value

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        """Classify *dataset* under the given soft-error scenario.

        Parameters
        ----------
        model:
            The trained clean model; techniques never mutate it.
        dataset:
            Test samples to classify.
        fault_config:
            Soft-error injection configuration; ``None`` (or a zero fault
            rate) evaluates the clean network.
        rng:
            Seed or generator for fault drawing and Poisson encoding.
        fault_map:
            Optional pre-drawn fault map, replayed instead of drawing a new
            one — used by the harness for paired comparisons.
        batch_size:
            Number of samples the batched inference engine advances
            together; ``None`` uses the engine default.
        """

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_faulty_network(
        model: TrainedModel,
        fault_config: Optional[ComputeEngineFaultConfig],
        generator: np.random.Generator,
        fault_map: Optional[FaultMap],
    ):
        """Build a fresh network from *model* and corrupt it per the scenario."""
        network = model.build_network(rng=generator)
        if fault_map is None and (fault_config is None or fault_config.fault_rate == 0):
            return network, None
        injector = FaultInjector(network)
        if fault_map is not None:
            report = injector.apply_fault_map(fault_map)
        else:
            report = injector.inject(fault_config, rng=generator)
        return network, report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(kind={self.kind.value})"


class NoMitigation(MitigationTechnique):
    """Unprotected baseline: the faulty compute engine is used unchanged."""

    kind = MitigationKind.NO_MITIGATION

    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        generator = resolve_rng(rng)
        network, _ = self._build_faulty_network(
            model, fault_config, generator, fault_map
        )
        engine = InferenceEngine(network, model.neuron_labels)
        return engine.evaluate(dataset, rng=generator, batch_size=batch_size)


class ReExecutionTMR(MitigationTechnique):
    """Re-execution baseline: triple modular redundancy in time.

    Every input is classified ``n_executions`` times and the predictions are
    combined by majority vote (ties resolve to the first execution's
    prediction).

    The fault model follows the paper's Section 2.2 persistence rules: bit
    flips persist *until the register is overwritten* and faulty neuron
    operations persist *until the parameters are replaced*.  Each
    re-execution reloads the network parameters onto the compute engine,
    which clears the soft errors accumulated up to that point; because a
    single execution lasts microseconds while soft errors accumulate over
    much longer mission times, the probability that a fresh particle strike
    lands during a re-execution is negligible.  The first execution
    therefore carries the accumulated fault map and the re-executions run
    (essentially) clean — which is exactly why the paper observes that
    re-execution restores near-clean accuracy at three times the latency and
    energy.  The optional ``reexposure_fraction`` re-injects a scaled-down
    fault rate into the re-executions for users who want to model longer
    exposure windows.

    Parameters
    ----------
    n_executions:
        Number of redundant executions (3 in the paper's TMR mode).
    reexposure_fraction:
        Fraction of the original fault rate that each re-execution is
        exposed to after its parameter reload (0 by default).
    """

    kind = MitigationKind.RE_EXECUTION

    def __init__(
        self, n_executions: int = 3, reexposure_fraction: float = 0.0
    ) -> None:
        if n_executions < 1 or n_executions % 2 == 0:
            raise ValueError(
                f"n_executions must be a positive odd number, got {n_executions}"
            )
        if not 0.0 <= reexposure_fraction <= 1.0:
            raise ValueError(
                f"reexposure_fraction must lie in [0, 1], got {reexposure_fraction}"
            )
        self.n_executions = int(n_executions)
        self.reexposure_fraction = float(reexposure_fraction)

    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        generator = resolve_rng(rng)
        runs = []
        for execution in range(self.n_executions):
            if execution == 0:
                # First execution: the accumulated soft errors are present.
                execution_config = fault_config
                execution_map = fault_map
            else:
                # Re-executions reload the parameters, clearing accumulated
                # errors; optionally expose them to a scaled-down fault rate.
                execution_map = None
                if (
                    fault_config is not None
                    and self.reexposure_fraction > 0.0
                    and fault_config.fault_rate > 0.0
                ):
                    execution_config = ComputeEngineFaultConfig(
                        fault_rate=fault_config.fault_rate * self.reexposure_fraction,
                        inject_synapses=fault_config.inject_synapses,
                        inject_neurons=fault_config.inject_neurons,
                        restrict_neuron_fault_type=(
                            fault_config.restrict_neuron_fault_type
                        ),
                    )
                else:
                    execution_config = None
            network, _ = self._build_faulty_network(
                model, execution_config, generator, execution_map
            )
            engine = InferenceEngine(network, model.neuron_labels)
            runs.append(
                engine.evaluate(dataset, rng=generator, batch_size=batch_size)
            )

        predictions = self._majority_vote([run.predictions for run in runs])
        # Spike counts and activity of the report come from the first run;
        # energy/latency accounting multiplies by the execution count in the
        # hardware model, not here.
        first = runs[0]
        return InferenceResult(
            predictions=predictions,
            labels=first.labels.copy(),
            spike_counts=first.spike_counts.copy(),
            total_input_spikes=sum(run.total_input_spikes for run in runs),
            per_sample_output_spikes=list(first.per_sample_output_spikes),
        )

    @staticmethod
    def _majority_vote(prediction_sets) -> np.ndarray:
        """Per-sample majority vote across executions (ties -> first run)."""
        stacked = np.stack(prediction_sets, axis=0)
        n_runs, n_samples = stacked.shape
        voted = np.empty(n_samples, dtype=np.int64)
        for index in range(n_samples):
            values, counts = np.unique(stacked[:, index], return_counts=True)
            best = counts.max()
            winners = values[counts == best]
            if winners.size == 1:
                voted[index] = winners[0]
            else:
                voted[index] = stacked[0, index]
        return voted


class BnPTechnique(MitigationTechnique):
    """SoftSNN's Bound-and-Protect mitigation (BnP1 / BnP2 / BnP3).

    The technique derives its weight threshold and substitute value from the
    clean model's weight statistics (Section 3.1), bounds the weights read
    out of the possibly corrupted registers (Eq. 1), and monitors every
    neuron's comparator to gate off spike generation when a faulty
    ``Vmem reset`` is detected.

    Parameters
    ----------
    variant:
        Which BnP variant to apply.
    protection_trigger_cycles:
        Consecutive above-threshold cycles that flag a faulty reset (2 in
        the paper).
    """

    def __init__(
        self,
        variant: BnPVariant,
        protection_trigger_cycles: int = 2,
    ) -> None:
        if not isinstance(variant, BnPVariant):
            raise TypeError(
                f"variant must be a BnPVariant, got {type(variant).__name__}"
            )
        self.variant = variant
        self.kind = variant.mitigation_kind
        self.protection_trigger_cycles = int(protection_trigger_cycles)
        if self.protection_trigger_cycles < 1:
            raise ValueError("protection_trigger_cycles must be at least 1")
        self.last_protection: Optional[NeuronProtection] = None
        self.last_bounded_count: int = 0

    # ------------------------------------------------------------------ #
    def bounding_for(self, model: TrainedModel) -> WeightBounding:
        """Derive the Eq. 1 bounding rule from the clean model's statistics."""
        return WeightBounding.for_variant(
            self.variant,
            clean_max_weight=model.clean_max_weight,
            most_probable_weight=model.clean_most_probable_weight,
        )

    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        generator = resolve_rng(rng)
        network, _ = self._build_faulty_network(
            model, fault_config, generator, fault_map
        )
        bounding = self.bounding_for(model)
        self.last_bounded_count = bounding.count_bounded(network.synapses.weights)
        # The symbolic rule lets the crossbar evaluate bounded currents
        # through exact integer-code arithmetic (batch-shape independent).
        effective_weights = bounding.as_weight_rule()

        protection = NeuronProtection(trigger_cycles=self.protection_trigger_cycles)
        self.last_protection = protection

        engine = InferenceEngine(network, model.neuron_labels)
        return engine.evaluate(
            dataset,
            rng=generator,
            effective_weights=effective_weights,
            step_monitor=protection,
            batch_size=batch_size,
        )


def build_technique(kind: MitigationKind, **kwargs) -> MitigationTechnique:
    """Factory mapping a :class:`MitigationKind` onto its technique object.

    Keyword arguments are forwarded to the technique constructor (e.g.
    ``n_executions`` for re-execution, ``protection_trigger_cycles`` for the
    BnP variants).
    """
    if kind == MitigationKind.NO_MITIGATION:
        return NoMitigation(**kwargs)
    if kind == MitigationKind.RE_EXECUTION:
        return ReExecutionTMR(**kwargs)
    if kind == MitigationKind.BNP1:
        return BnPTechnique(BnPVariant.BNP1, **kwargs)
    if kind == MitigationKind.BNP2:
        return BnPTechnique(BnPVariant.BNP2, **kwargs)
    if kind == MitigationKind.BNP3:
        return BnPTechnique(BnPVariant.BNP3, **kwargs)
    raise ValueError(f"unknown mitigation kind: {kind!r}")
