"""Run-time mitigation techniques sharing one evaluation interface.

Every technique answers the same question — *given a trained model, a test
set and a soft-error scenario, what accuracy does the system deliver?* —
through :meth:`MitigationTechnique.evaluate`.  The available techniques are
the paper's comparison partners:

* :class:`NoMitigation` — the unprotected baseline: the faulty compute
  engine is used as-is.
* :class:`ReExecutionTMR` — the conventional fault-tolerance baseline:
  every inference is executed three times (reloading the parameters each
  time, so each execution sees an independently drawn soft-error pattern)
  and the predictions are combined by majority vote.
* :class:`BnPTechnique` — SoftSNN's Bound-and-Protect in its three variants
  (BnP1 / BnP2 / BnP3): weight bounding on the values read from the
  (possibly corrupted) registers plus neuron protection against faulty
  ``Vmem reset`` operations.

The fault map can be drawn inside ``evaluate`` or passed in explicitly; the
experiment harness passes the same map to every technique so comparisons at
a given fault rate are paired.

Besides the one-at-a-time :meth:`MitigationTechnique.evaluate` interface,
techniques participate in *map-parallel* evaluation: given many fault maps,
each technique plans its per-map compute-engine rows — stacked faulty or
bounded registers, per-map operation status, protection triggers — via
:meth:`MitigationTechnique.plan_rows`, and
:func:`evaluate_techniques_mapped` advances all rows of all techniques
through the :class:`~repro.snn.engine.MapParallelEngine` in one fused pass.
Per (technique, map) pair the result is bit-identical to a stand-alone
evaluation of that pair over the same rasters.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.data.datasets import Dataset
from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.injector import FaultInjector
from repro.faults.models import ComputeEngineFaultConfig
from repro.faults.neuron_faults import NeuronFaultInjector
from repro.hardware.enhancements import MitigationKind
from repro.snn.engine import MapRow
from repro.snn.inference import InferenceEngine, InferenceResult, evaluate_rows
from repro.snn.neuron import NeuronOperationStatus
from repro.snn.synapse import SynapseMatrix
from repro.snn.training import TrainedModel
from repro.utils.bits import flip_bits_in_array
from repro.utils.rng import RNGLike, resolve_rng

__all__ = [
    "MitigationTechnique",
    "NoMitigation",
    "ReExecutionTMR",
    "BnPTechnique",
    "MapAssets",
    "TechniqueRowPlan",
    "prepare_map_assets",
    "evaluate_techniques_mapped",
    "build_technique",
]


# ---------------------------------------------------------------------- #
# map-parallel planning
# ---------------------------------------------------------------------- #
@dataclass
class MapAssets:
    """Per-fault-map compute-engine state shared by every technique.

    One instance describes the deployed engine after one fault map struck
    it: the corrupted weight registers and the per-neuron operation health.
    ``clean_registers`` is the *same array object* for every map of a unit,
    and ``faulty_registers`` aliases it when the map contains no synapse
    faults — the map-parallel engine deduplicates base current GEMMs by
    array identity, so aliasing is meaningful, not just an optimisation.
    """

    raster_index: int
    clean_registers: np.ndarray
    faulty_registers: np.ndarray
    status: NeuronOperationStatus
    healthy_status: NeuronOperationStatus


@dataclass
class TechniqueRowPlan:
    """The rows one technique contributes to a map-parallel unit.

    ``rows`` is cell-major: ``rows_per_cell`` consecutive rows per fault
    map, in map order.  The owning technique interprets the per-row results
    back into one :class:`~repro.snn.inference.InferenceResult` per map via
    :meth:`MitigationTechnique.combine_row_results`.
    """

    kind: MitigationKind
    rows: List[MapRow]
    rows_per_cell: int

    @property
    def n_cells(self) -> int:
        """Number of fault maps (sweep cells) the plan covers."""
        return len(self.rows) // self.rows_per_cell


def _corrupt_registers(
    clean_registers: np.ndarray, fault_map: FaultMap, quantizer
) -> np.ndarray:
    """Registers after *fault_map*'s bit flips (aliases clean when none).

    Mirrors :meth:`~repro.snn.synapse.SynapseMatrix.apply_bit_flips`; the
    returned array aliases ``clean_registers`` for maps without synapse
    faults so the map-parallel engine's identity-based GEMM dedup engages.
    """
    if not fault_map.n_synapse_faults:
        return clean_registers
    return flip_bits_in_array(
        clean_registers.astype(np.int64),
        fault_map.synapse_flat_indices,
        fault_map.synapse_bit_positions,
        bit_width=quantizer.bits,
    ).astype(clean_registers.dtype)


def prepare_map_assets(
    model: TrainedModel,
    fault_maps: Optional[Sequence[FaultMap]],
    n_cells: int,
) -> List[MapAssets]:
    """Build the per-map engine state every technique's rows derive from.

    The clean deployed registers are computed once (exactly the registers
    :meth:`~repro.snn.training.TrainedModel.build_network` would load) and
    each fault map's bit flips are applied on top, mirroring
    :meth:`~repro.faults.injector.FaultInjector.apply_fault_map`.  With
    ``fault_maps=None`` every cell gets the clean engine (the fault-free
    reference measurement).
    """
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    if fault_maps is not None and len(fault_maps) != n_cells:
        raise ValueError(
            f"expected {n_cells} fault maps, got {len(fault_maps)}"
        )
    quantizer = model.network_config.make_quantizer(model.clean_max_weight)
    synapses = SynapseMatrix(
        np.clip(model.weights, 0.0, quantizer.full_scale), quantizer=quantizer
    )
    clean_registers = synapses.registers
    crossbar_shape = synapses.shape
    healthy = NeuronOperationStatus.healthy(model.n_neurons)
    injector = NeuronFaultInjector(n_neurons=model.n_neurons)

    assets: List[MapAssets] = []
    for index in range(n_cells):
        fault_map = None if fault_maps is None else fault_maps[index]
        if fault_map is None or fault_map.is_empty:
            faulty_registers = clean_registers
            status = healthy
        else:
            if fault_map.crossbar_shape != crossbar_shape:
                raise ValueError(
                    f"fault map was drawn for crossbar {fault_map.crossbar_shape} "
                    f"but the model has {crossbar_shape}"
                )
            faulty_registers = _corrupt_registers(
                clean_registers, fault_map, quantizer
            )
            status = injector.outcome_from_faults(fault_map.neuron_faults).status
        assets.append(
            MapAssets(
                raster_index=index,
                clean_registers=clean_registers,
                faulty_registers=faulty_registers,
                status=status,
                healthy_status=healthy,
            )
        )
    return assets


def evaluate_techniques_mapped(
    model: TrainedModel,
    dataset: Dataset,
    techniques: Sequence["MitigationTechnique"],
    fault_config: Optional[ComputeEngineFaultConfig],
    fault_maps: Optional[Sequence[FaultMap]],
    generators: Sequence[np.random.Generator],
    rasters: Sequence[np.ndarray],
    batch_size: Optional[int] = None,
) -> Dict[MitigationKind, List[InferenceResult]]:
    """Evaluate every technique against every fault map in one fused pass.

    This is the campaign hot path: each technique plans its per-map rows
    (stacked faulty/bounded registers plus protection triggers), all rows
    advance together through the map-parallel engine over the shared
    pre-encoded rasters, and each technique folds its rows back into one
    result per map.  Per (technique, map) pair the outcome is bit-identical
    to evaluating that pair alone (parity suite), so grouping cells is a
    pure execution-strategy choice.

    Parameters
    ----------
    model:
        Trained clean model under test.
    dataset:
        Test set (supplies the ground-truth labels).
    techniques:
        Techniques to compare; each must implement
        :meth:`MitigationTechnique.plan_rows`.
    fault_config:
        Injection configuration shared by the maps (``None`` for the
        fault-free reference measurement).
    fault_maps:
        One pre-drawn fault map per cell, or ``None`` for clean cells.
    generators:
        One per-cell generator, consumed — in technique order — only by
        techniques that draw additional randomness (re-execution with a
        nonzero ``reexposure_fraction``) and by fallback techniques
        without a row protocol, which evaluate stand-alone from them.
    rasters:
        One pre-encoded spike raster ``(n_samples, T, n_inputs)`` per cell
        — every technique presents the *same* encoded test set of its cell,
        the paired-presentation protocol of the campaign layer.
    batch_size:
        Sample chunk size of the fused engine pass.
    """
    if not techniques:
        raise ValueError("at least one technique is required")
    if not rasters:
        raise ValueError("at least one raster group (cell) is required")
    assets = prepare_map_assets(model, fault_maps, len(rasters))

    # Techniques that implement the row protocol fuse into one engine
    # pass; a technique exposing only the stand-alone ``evaluate``
    # interface falls back to it per map, consuming the cell generators at
    # its turn in technique order (so the per-cell randomness protocol
    # stays deterministic).  Fallback techniques draw their own
    # presentations — the pre-fusion behaviour of ``evaluate``.
    outcomes: Dict[MitigationKind, List[InferenceResult]] = {}
    plans: List[TechniqueRowPlan] = []
    planned: List["MitigationTechnique"] = []
    for technique in techniques:
        try:
            plans.append(
                technique.plan_rows(model, assets, fault_config, generators)
            )
            planned.append(technique)
        except NotImplementedError:
            outcomes[technique.kind] = [
                technique.evaluate(
                    model,
                    dataset,
                    fault_config=fault_config,
                    rng=generators[index],
                    fault_map=None if fault_maps is None else fault_maps[index],
                    batch_size=batch_size,
                )
                for index in range(len(rasters))
            ]

    if plans:
        rows = [row for plan in plans for row in plan.rows]
        quantizer = model.network_config.make_quantizer(model.clean_max_weight)
        row_results = evaluate_rows(
            rows,
            rasters,
            model.neuron_labels,
            dataset.labels,
            quantizer=quantizer,
            params=model.network_config.neuron_params,
            theta=model.theta,
            batch_size=batch_size,
            model=getattr(model.network_config, "neuron_model", None),
        )
        offset = 0
        for technique, plan in zip(planned, plans):
            chunk = row_results[offset : offset + len(plan.rows)]
            offset += len(plan.rows)
            outcomes[technique.kind] = technique.combine_row_results(chunk, plan)
    return outcomes


class MitigationTechnique(abc.ABC):
    """Common interface of all mitigation techniques."""

    #: Hardware-model identity of the technique (drives cost estimation).
    kind: MitigationKind = MitigationKind.NO_MITIGATION

    @property
    def name(self) -> str:
        """Human-readable technique name used in reports and benches."""
        return self.kind.value

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        """Classify *dataset* under the given soft-error scenario.

        Parameters
        ----------
        model:
            The trained clean model; techniques never mutate it.
        dataset:
            Test samples to classify.
        fault_config:
            Soft-error injection configuration; ``None`` (or a zero fault
            rate) evaluates the clean network.
        rng:
            Seed or generator for fault drawing and Poisson encoding.
        fault_map:
            Optional pre-drawn fault map, replayed instead of drawing a new
            one — used by the harness for paired comparisons.
        batch_size:
            Number of samples the batched inference engine advances
            together; ``None`` uses the engine default.
        """

    # ------------------------------------------------------------------ #
    # map-parallel protocol
    # ------------------------------------------------------------------ #
    def plan_rows(
        self,
        model: TrainedModel,
        assets: Sequence[MapAssets],
        fault_config: Optional[ComputeEngineFaultConfig],
        generators: Sequence[np.random.Generator],
    ) -> TechniqueRowPlan:
        """Contribute this technique's per-map rows to a fused unit.

        A technique participates in fused map-parallel execution by
        translating each fault map's :class:`MapAssets` into one or more
        :class:`~repro.snn.engine.MapRow` configurations (stacked
        registers, bounding rule, protection trigger).  ``generators`` are
        the per-cell generators, to be consumed only when the technique
        needs additional random draws.

        The default raises ``NotImplementedError``, which
        :func:`evaluate_techniques_mapped` treats as "no row protocol":
        the technique then runs through its stand-alone :meth:`evaluate`
        per map, outside the fused pass.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement map-parallel row "
            "planning; campaigns fall back to its stand-alone evaluate()"
        )

    def combine_row_results(
        self, row_results: List[InferenceResult], plan: TechniqueRowPlan
    ) -> List[InferenceResult]:
        """Fold per-row engine results back into one result per fault map.

        The default handles the one-row-per-map case (no mitigation, BnP);
        techniques with several rows per map (re-execution) override it.
        """
        if plan.rows_per_cell != 1:
            raise NotImplementedError(
                f"{type(self).__name__} must override combine_row_results for "
                f"{plan.rows_per_cell} rows per cell"
            )
        return list(row_results)

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_faulty_network(
        model: TrainedModel,
        fault_config: Optional[ComputeEngineFaultConfig],
        generator: np.random.Generator,
        fault_map: Optional[FaultMap],
    ):
        """Build a fresh network from *model* and corrupt it per the scenario."""
        network = model.build_network(rng=generator)
        if fault_map is None and (fault_config is None or fault_config.fault_rate == 0):
            return network, None
        injector = FaultInjector(network)
        if fault_map is not None:
            report = injector.apply_fault_map(fault_map)
        else:
            report = injector.inject(fault_config, rng=generator)
        return network, report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(kind={self.kind.value})"


class NoMitigation(MitigationTechnique):
    """Unprotected baseline: the faulty compute engine is used unchanged."""

    kind = MitigationKind.NO_MITIGATION

    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        generator = resolve_rng(rng)
        network, _ = self._build_faulty_network(
            model, fault_config, generator, fault_map
        )
        engine = InferenceEngine(network, model.neuron_labels)
        return engine.evaluate(dataset, rng=generator, batch_size=batch_size)

    def plan_rows(
        self,
        model: TrainedModel,
        assets: Sequence[MapAssets],
        fault_config: Optional[ComputeEngineFaultConfig],
        generators: Sequence[np.random.Generator],
    ) -> TechniqueRowPlan:
        """One row per map: the corrupted engine, used as-is."""
        rows = [
            MapRow(
                raster_index=asset.raster_index,
                registers=asset.faulty_registers,
                operation_status=asset.status,
            )
            for asset in assets
        ]
        return TechniqueRowPlan(kind=self.kind, rows=rows, rows_per_cell=1)


class ReExecutionTMR(MitigationTechnique):
    """Re-execution baseline: triple modular redundancy in time.

    Every input is classified ``n_executions`` times and the predictions are
    combined by majority vote (ties resolve to the first execution's
    prediction).

    The fault model follows the paper's Section 2.2 persistence rules: bit
    flips persist *until the register is overwritten* and faulty neuron
    operations persist *until the parameters are replaced*.  Each
    re-execution reloads the network parameters onto the compute engine,
    which clears the soft errors accumulated up to that point; because a
    single execution lasts microseconds while soft errors accumulate over
    much longer mission times, the probability that a fresh particle strike
    lands during a re-execution is negligible.  The first execution
    therefore carries the accumulated fault map and the re-executions run
    (essentially) clean — which is exactly why the paper observes that
    re-execution restores near-clean accuracy at three times the latency and
    energy.  The optional ``reexposure_fraction`` re-injects a scaled-down
    fault rate into the re-executions for users who want to model longer
    exposure windows.

    Parameters
    ----------
    n_executions:
        Number of redundant executions (3 in the paper's TMR mode).
    reexposure_fraction:
        Fraction of the original fault rate that each re-execution is
        exposed to after its parameter reload (0 by default).
    """

    kind = MitigationKind.RE_EXECUTION

    def __init__(
        self, n_executions: int = 3, reexposure_fraction: float = 0.0
    ) -> None:
        if n_executions < 1 or n_executions % 2 == 0:
            raise ValueError(
                f"n_executions must be a positive odd number, got {n_executions}"
            )
        if not 0.0 <= reexposure_fraction <= 1.0:
            raise ValueError(
                f"reexposure_fraction must lie in [0, 1], got {reexposure_fraction}"
            )
        self.n_executions = int(n_executions)
        self.reexposure_fraction = float(reexposure_fraction)

    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        generator = resolve_rng(rng)
        runs = []
        for execution in range(self.n_executions):
            if execution == 0:
                # First execution: the accumulated soft errors are present.
                execution_config = fault_config
                execution_map = fault_map
            else:
                # Re-executions reload the parameters, clearing accumulated
                # errors; optionally expose them to a scaled-down fault rate.
                execution_map = None
                if (
                    fault_config is not None
                    and self.reexposure_fraction > 0.0
                    and fault_config.fault_rate > 0.0
                ):
                    execution_config = ComputeEngineFaultConfig(
                        fault_rate=fault_config.fault_rate * self.reexposure_fraction,
                        inject_synapses=fault_config.inject_synapses,
                        inject_neurons=fault_config.inject_neurons,
                        restrict_neuron_fault_type=(
                            fault_config.restrict_neuron_fault_type
                        ),
                    )
                else:
                    execution_config = None
            network, _ = self._build_faulty_network(
                model, execution_config, generator, execution_map
            )
            engine = InferenceEngine(network, model.neuron_labels)
            runs.append(
                engine.evaluate(dataset, rng=generator, batch_size=batch_size)
            )

        predictions = self._majority_vote([run.predictions for run in runs])
        # Spike counts and activity of the report come from the first run;
        # energy/latency accounting multiplies by the execution count in the
        # hardware model, not here.
        first = runs[0]
        return InferenceResult(
            predictions=predictions,
            labels=first.labels.copy(),
            spike_counts=first.spike_counts.copy(),
            total_input_spikes=sum(run.total_input_spikes for run in runs),
            per_sample_output_spikes=list(first.per_sample_output_spikes),
        )

    def plan_rows(
        self,
        model: TrainedModel,
        assets: Sequence[MapAssets],
        fault_config: Optional[ComputeEngineFaultConfig],
        generators: Sequence[np.random.Generator],
    ) -> TechniqueRowPlan:
        """First execution carries the map; re-executions run reloaded.

        With the default ``reexposure_fraction = 0`` the parameter reload
        makes every re-execution deterministic on the presented rasters, so
        all ``n_executions - 1`` re-executions share one clean row (the
        combine step replicates its predictions into the vote).  A nonzero
        reexposure draws one scaled-down fault map per re-execution from
        the cell's generator, exactly as :meth:`evaluate` would.
        """
        rows: List[MapRow] = []
        reexposed = (
            self.reexposure_fraction > 0.0
            and fault_config is not None
            and fault_config.fault_rate > 0.0
            and self.n_executions > 1
        )
        if not reexposed:
            for asset in assets:
                rows.append(
                    MapRow(
                        raster_index=asset.raster_index,
                        registers=asset.faulty_registers,
                        operation_status=asset.status,
                    )
                )
                if self.n_executions > 1:
                    rows.append(
                        MapRow(
                            raster_index=asset.raster_index,
                            registers=asset.clean_registers,
                            operation_status=asset.healthy_status,
                        )
                    )
            return TechniqueRowPlan(
                kind=self.kind,
                rows=rows,
                rows_per_cell=1 if self.n_executions == 1 else 2,
            )

        scaled = ComputeEngineFaultConfig(
            fault_rate=fault_config.fault_rate * self.reexposure_fraction,
            inject_synapses=fault_config.inject_synapses,
            inject_neurons=fault_config.inject_neurons,
            restrict_neuron_fault_type=fault_config.restrict_neuron_fault_type,
        )
        quantizer = model.network_config.make_quantizer(model.clean_max_weight)
        map_generator = FaultMapGenerator(
            crossbar_shape=(model.network_config.n_inputs, model.n_neurons),
            quantizer=quantizer,
        )
        injector = NeuronFaultInjector(n_neurons=model.n_neurons)
        for index, asset in enumerate(assets):
            rows.append(
                MapRow(
                    raster_index=asset.raster_index,
                    registers=asset.faulty_registers,
                    operation_status=asset.status,
                )
            )
            for _ in range(self.n_executions - 1):
                re_map = map_generator.generate(scaled, rng=generators[index])
                rows.append(
                    MapRow(
                        raster_index=asset.raster_index,
                        registers=_corrupt_registers(
                            asset.clean_registers, re_map, quantizer
                        ),
                        operation_status=injector.outcome_from_faults(
                            re_map.neuron_faults
                        ).status,
                    )
                )
        return TechniqueRowPlan(
            kind=self.kind, rows=rows, rows_per_cell=self.n_executions
        )

    def combine_row_results(
        self, row_results: List[InferenceResult], plan: TechniqueRowPlan
    ) -> List[InferenceResult]:
        """Majority-vote each map's executions (shared clean row expanded)."""
        per_cell = plan.rows_per_cell
        results: List[InferenceResult] = []
        for start in range(0, len(row_results), per_cell):
            group = row_results[start : start + per_cell]
            if per_cell == 2 and self.n_executions > 2:
                runs = [group[0]] + [group[1]] * (self.n_executions - 1)
            else:
                runs = list(group)
            predictions = self._majority_vote([run.predictions for run in runs])
            first = runs[0]
            results.append(
                InferenceResult(
                    predictions=predictions,
                    labels=first.labels.copy(),
                    spike_counts=first.spike_counts.copy(),
                    total_input_spikes=sum(
                        run.total_input_spikes for run in runs
                    ),
                    per_sample_output_spikes=list(first.per_sample_output_spikes),
                )
            )
        return results

    @staticmethod
    def _majority_vote(prediction_sets) -> np.ndarray:
        """Per-sample majority vote across executions (ties -> first run)."""
        stacked = np.stack(prediction_sets, axis=0)
        n_runs, n_samples = stacked.shape
        voted = np.empty(n_samples, dtype=np.int64)
        for index in range(n_samples):
            values, counts = np.unique(stacked[:, index], return_counts=True)
            best = counts.max()
            winners = values[counts == best]
            if winners.size == 1:
                voted[index] = winners[0]
            else:
                voted[index] = stacked[0, index]
        return voted


class BnPTechnique(MitigationTechnique):
    """SoftSNN's Bound-and-Protect mitigation (BnP1 / BnP2 / BnP3).

    The technique derives its weight threshold and substitute value from the
    clean model's weight statistics (Section 3.1), bounds the weights read
    out of the possibly corrupted registers (Eq. 1), and monitors every
    neuron's comparator to gate off spike generation when a faulty
    ``Vmem reset`` is detected.

    Parameters
    ----------
    variant:
        Which BnP variant to apply.
    protection_trigger_cycles:
        Consecutive above-threshold cycles that flag a faulty reset (2 in
        the paper).
    """

    def __init__(
        self,
        variant: BnPVariant,
        protection_trigger_cycles: int = 2,
    ) -> None:
        if not isinstance(variant, BnPVariant):
            raise TypeError(
                f"variant must be a BnPVariant, got {type(variant).__name__}"
            )
        self.variant = variant
        self.kind = variant.mitigation_kind
        self.protection_trigger_cycles = int(protection_trigger_cycles)
        if self.protection_trigger_cycles < 1:
            raise ValueError("protection_trigger_cycles must be at least 1")
        self.last_protection: Optional[NeuronProtection] = None
        self.last_bounded_count: int = 0

    # ------------------------------------------------------------------ #
    def bounding_for(self, model: TrainedModel) -> WeightBounding:
        """Derive the Eq. 1 bounding rule from the clean model's statistics."""
        return WeightBounding.for_variant(
            self.variant,
            clean_max_weight=model.clean_max_weight,
            most_probable_weight=model.clean_most_probable_weight,
        )

    def evaluate(
        self,
        model: TrainedModel,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
        batch_size: Optional[int] = None,
    ) -> InferenceResult:
        generator = resolve_rng(rng)
        network, _ = self._build_faulty_network(
            model, fault_config, generator, fault_map
        )
        bounding = self.bounding_for(model)
        self.last_bounded_count = bounding.count_bounded(network.synapses.weights)
        # The symbolic rule lets the crossbar evaluate bounded currents
        # through exact integer-code arithmetic (batch-shape independent).
        effective_weights = bounding.as_weight_rule()

        protection = NeuronProtection(trigger_cycles=self.protection_trigger_cycles)
        self.last_protection = protection

        engine = InferenceEngine(network, model.neuron_labels)
        return engine.evaluate(
            dataset,
            rng=generator,
            effective_weights=effective_weights,
            step_monitor=protection,
            batch_size=batch_size,
        )

    def plan_rows(
        self,
        model: TrainedModel,
        assets: Sequence[MapAssets],
        fault_config: Optional[ComputeEngineFaultConfig],
        generators: Sequence[np.random.Generator],
    ) -> TechniqueRowPlan:
        """One bounded-and-protected row per map.

        Every row reads its map's corrupted registers through the Eq. 1
        bounding rule and gates faulty-reset neurons at the configured
        trigger count.  The per-run statistics of :meth:`evaluate`
        (``last_protection``, ``last_bounded_count``) are not tracked on
        the map-parallel path.
        """
        rule = self.bounding_for(model).as_weight_rule()
        rows = [
            MapRow(
                raster_index=asset.raster_index,
                registers=asset.faulty_registers,
                operation_status=asset.status,
                weight_rule=rule,
                protection_trigger_cycles=self.protection_trigger_cycles,
            )
            for asset in assets
        ]
        return TechniqueRowPlan(kind=self.kind, rows=rows, rows_per_cell=1)


def build_technique(kind: MitigationKind, **kwargs) -> MitigationTechnique:
    """Factory mapping a :class:`MitigationKind` onto its technique object.

    Keyword arguments are forwarded to the technique constructor (e.g.
    ``n_executions`` for re-execution, ``protection_trigger_cycles`` for the
    BnP variants).
    """
    if kind == MitigationKind.NO_MITIGATION:
        return NoMitigation(**kwargs)
    if kind == MitigationKind.RE_EXECUTION:
        return ReExecutionTMR(**kwargs)
    if kind == MitigationKind.BNP1:
        return BnPTechnique(BnPVariant.BNP1, **kwargs)
    if kind == MitigationKind.BNP2:
        return BnPTechnique(BnPVariant.BNP2, **kwargs)
    if kind == MitigationKind.BNP3:
        return BnPTechnique(BnPVariant.BNP3, **kwargs)
    raise ValueError(f"unknown mitigation kind: {kind!r}")
