"""The end-to-end SoftSNN methodology (Fig. 8 of the paper).

:class:`SoftSNNMethodology` ties the three steps of the paper together for a
single trained model:

1. **Analyse** the SNN's fault tolerance (Section 3.1) — weight-distribution
   statistics and neuron-fault criticality — via
   :class:`~repro.core.fault_analysis.FaultToleranceAnalyzer`.
2. **Bound and protect** (Section 3.2) — construct the chosen BnP variant's
   weight-bounding rule and neuron protection from the analysis results.
3. **Deploy** (Section 3.3) — report the hardware cost of the required
   enhancements through the accelerator model, and run protected inference.

The class is a convenience façade: everything it does can also be done by
composing the underlying pieces directly, which is what the benchmark
harness does for its parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bound_and_protect import BnPVariant, WeightBounding
from repro.core.fault_analysis import FaultToleranceAnalyzer, SafeRange
from repro.core.mitigation import BnPTechnique
from repro.data.datasets import Dataset
from repro.faults.models import ComputeEngineFaultConfig
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import MitigationKind
from repro.snn.inference import InferenceResult
from repro.snn.training import TrainedModel
from repro.utils.rng import RNGLike

__all__ = ["SoftSNNMethodology", "SoftSNNDeployment"]


@dataclass
class SoftSNNDeployment:
    """Everything needed to run SoftSNN-protected inference on one model.

    Attributes
    ----------
    variant:
        The selected BnP variant.
    safe_range:
        The derived safe weight range and substitute values.
    bounding:
        The concrete Eq. 1 bounding rule.
    technique:
        The ready-to-use mitigation technique.
    hardware_overheads:
        Normalised latency / energy / area of the enhanced engine relative
        to the unmodified one (for the mapped network size).
    """

    variant: BnPVariant
    safe_range: SafeRange
    bounding: WeightBounding
    technique: BnPTechnique
    hardware_overheads: Dict[str, float]


class SoftSNNMethodology:
    """Applies the SoftSNN methodology to a trained model.

    Parameters
    ----------
    model:
        The trained clean model to protect.
    variant:
        Which BnP variant to deploy (BnP3 is the paper's most broadly
        applicable choice; BnP1 is the cheapest in area).
    engine_config:
        Optional compute-engine configuration used for the hardware-cost
        report; defaults to the paper's 256x256 engine mapped to the model's
        network size.
    """

    def __init__(
        self,
        model: TrainedModel,
        variant: BnPVariant = BnPVariant.BNP3,
        engine_config: Optional[ComputeEngineConfig] = None,
    ) -> None:
        if not isinstance(variant, BnPVariant):
            raise TypeError(
                f"variant must be a BnPVariant, got {type(variant).__name__}"
            )
        self.model = model
        self.variant = variant
        if engine_config is None:
            engine_config = ComputeEngineConfig(
                n_inputs=model.network_config.n_inputs,
                n_neurons=model.network_config.n_neurons,
                timesteps=model.network_config.timesteps,
            )
        self.engine_config = engine_config
        self.analyzer = FaultToleranceAnalyzer(model)

    # ------------------------------------------------------------------ #
    def deploy(self) -> SoftSNNDeployment:
        """Run the analysis and construct the protected deployment."""
        safe_range = self.analyzer.derive_safe_range()
        bounding = WeightBounding.for_variant(
            self.variant,
            clean_max_weight=safe_range.weight_threshold,
            most_probable_weight=safe_range.bnp3_substitute,
        )
        technique = BnPTechnique(self.variant)
        accelerator = AcceleratorModel(self.engine_config)
        kind = self.variant.mitigation_kind
        overheads = {
            "latency": accelerator.normalized_latency()[kind],
            "energy": accelerator.normalized_energy()[kind],
            "area": accelerator.normalized_area()[kind],
        }
        return SoftSNNDeployment(
            variant=self.variant,
            safe_range=safe_range,
            bounding=bounding,
            technique=technique,
            hardware_overheads=overheads,
        )

    def protected_inference(
        self,
        dataset: Dataset,
        fault_config: Optional[ComputeEngineFaultConfig] = None,
        rng: RNGLike = None,
    ) -> InferenceResult:
        """Classify *dataset* with the deployed BnP technique."""
        deployment = self.deploy()
        return deployment.technique.evaluate(
            self.model, dataset, fault_config=fault_config, rng=rng
        )

    def hardware_report(self) -> Dict[str, Dict[str, float]]:
        """Normalised hardware cost of every technique for this model's size."""
        accelerator = AcceleratorModel(self.engine_config)
        latency = accelerator.normalized_latency()
        energy = accelerator.normalized_energy()
        area = accelerator.normalized_area()
        return {
            kind.value: {
                "latency": latency[kind],
                "energy": energy[kind],
                "area": area[kind],
            }
            for kind in MitigationKind.all_kinds()
        }
