"""Command-line front end of the online serving layer.

Two subcommands cover the deployment and verification paths:

``run``
    Start the HTTP classifier service over a directory of trained-model
    snapshots.  ``--port 0`` binds an ephemeral port (printed, and
    optionally written to ``--port-file`` so scripts can find it);
    ``--bootstrap-demo`` trains and registers a small demo model when the
    models directory is empty, giving a zero-to-serving path with no
    separate training step.

``smoke``
    Self-contained end-to-end check used by CI: trains a tiny model,
    registers it, starts the service on an ephemeral port, classifies a
    handful of samples over HTTP in all three serving modes (``clean``,
    ``faulty``, ``protected``), and asserts the served predictions are
    identical to direct :class:`~repro.snn.inference.InferenceEngine`
    evaluation of the same ``(image, seed)`` pairs.  Exit code 0 means the
    serving path preserved the engine's exactness guarantee.

Usage::

    softsnn-serve run --models-dir models --port 8080
    softsnn-serve run --models-dir models --port 0 --bootstrap-demo
    softsnn-serve smoke
    softsnn-serve --version
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

import repro
from repro.data.datasets import Dataset, load_workload, train_test_split
from repro.serve.modes import ServingMode, build_session
from repro.serve.registry import ModelRegistry
from repro.serve.service import (
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SoftSNNService,
)
from repro.snn.network import NetworkConfig
from repro.snn.training import TrainedModel, TrainingConfig, TrainingRunner
from repro.utils.logging import configure_logging, get_logger

__all__ = ["build_parser", "main", "train_demo_model"]

_LOGGER = get_logger("server")

#: Name under which the bootstrap/smoke demo model is registered.
DEMO_MODEL_NAME = "demo-mnist"


def train_demo_model(
    n_neurons: int = 16,
    timesteps: int = 50,
    n_train: int = 48,
    n_test: int = 16,
    workload: str = "mnist",
    seed: int = 2022,
) -> Tuple[TrainedModel, Dataset]:
    """Train a small demo model; returns ``(model, test_set)``.

    Sized like the campaign CLI's ``smoke`` preset, so it finishes in
    seconds — enough to serve real classifications, not enough to matter
    for accuracy claims.
    """
    dataset = load_workload(workload, n_samples=n_train + n_test, rng=seed)
    train_set, test_set = train_test_split(
        dataset, test_fraction=n_test / (n_train + n_test), rng=seed + 1
    )
    trainer = TrainingRunner(
        NetworkConfig(n_inputs=784, n_neurons=n_neurons, timesteps=timesteps),
        TrainingConfig(
            epochs=1, learning_mode="fast_wta", label_assignment_mode="fast"
        ),
    )
    model = trainer.train(train_set, rng=seed + 2)
    return model, test_set


# ---------------------------------------------------------------------- #
# argument parsing
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The serving CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="softsnn-serve",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="start the HTTP classifier service")
    run.add_argument(
        "--models-dir",
        type=Path,
        default=Path("models"),
        help="directory of TrainedModel snapshots (default: models/)",
    )
    run.add_argument("--host", default="127.0.0.1", help="bind address")
    run.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    run.add_argument(
        "--port-file",
        type=Path,
        help="write the bound port to this file once listening",
    )
    run.add_argument(
        "--max-batch-size",
        type=int,
        default=None,
        help=(
            "micro-batch flush size (1 disables coalescing); default "
            "autotunes per served model geometry"
        ),
    )
    run.add_argument(
        "--max-delay-ms",
        type=float,
        default=5.0,
        help="micro-batch latency budget in milliseconds",
    )
    run.add_argument(
        "--fault-rate",
        type=float,
        default=0.05,
        help="default fault rate of faulty/protected requests",
    )
    run.add_argument(
        "--bootstrap-demo",
        action="store_true",
        help="train and register a small demo model when the directory has none",
    )
    run.add_argument("--quiet", action="store_true", help="warnings only")

    smoke = subparsers.add_parser(
        "smoke", help="end-to-end serving self-test (used by CI)"
    )
    smoke.add_argument("--host", default="127.0.0.1", help="bind address")
    smoke.add_argument(
        "--port", type=int, default=0, help="bind port (default: ephemeral)"
    )
    smoke.add_argument(
        "--n-samples", type=int, default=6, help="samples classified per mode"
    )
    smoke.add_argument(
        "--fault-rate", type=float, default=0.2, help="fault rate of the faulty modes"
    )
    smoke.add_argument(
        "--models-dir",
        type=Path,
        help="register the smoke model here (default: a temp directory)",
    )
    smoke.add_argument("--quiet", action="store_true", help="warnings only")
    return parser


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        models_dir=args.models_dir,
        max_batch_size=args.max_batch_size,
        max_delay_ms=args.max_delay_ms,
        default_fault_rate=args.fault_rate,
    )
    service = SoftSNNService(config)
    if not service.registry.names():
        if args.bootstrap_demo:
            _LOGGER.info("models directory is empty; training demo model")
            model, _ = train_demo_model()
            service.register_model(model, DEMO_MODEL_NAME, workload="mnist")
        else:
            print(
                f"error: no model snapshots found in {args.models_dir} "
                "(train one, or pass --bootstrap-demo)",
                file=sys.stderr,
            )
            return 2
    server = ServiceServer(service, host=args.host, port=args.port)
    if args.port_file is not None:
        args.port_file.parent.mkdir(parents=True, exist_ok=True)
        args.port_file.write_text(f"{server.port}\n")
    print(f"softsnn-serve: serving {service.registry.names()} on {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("softsnn-serve: shutting down")
    return 0


def _reference_predictions(
    model: TrainedModel,
    mode: ServingMode,
    images: Sequence[np.ndarray],
    seeds: Sequence[int],
) -> List[int]:
    """Direct (scheduler-free) evaluation of the same ``(image, seed)`` pairs.

    Each sample is evaluated through a freshly built session — the
    stateless per-request semantics of the serving layer — via the plain
    :meth:`~repro.snn.inference.InferenceEngine.evaluate` path.
    """
    reference: List[int] = []
    for image, seed in zip(images, seeds):
        session = build_session(model, mode)
        sample_set = Dataset(
            images=np.asarray(image, dtype=np.float64).reshape(1, 28, 28),
            labels=np.zeros(1, dtype=np.int64),
        )
        result = session.inference.evaluate(
            sample_set,
            rng=int(seed),
            effective_weights=session.effective_weights,
            step_monitor=session.protection,
        )
        reference.append(int(result.predictions[0]))
    return reference


def _cmd_smoke(args: argparse.Namespace) -> int:
    import tempfile

    print("softsnn-serve smoke: training demo model…")
    model, test_set = train_demo_model()
    models_dir = (
        args.models_dir
        if args.models_dir is not None
        else Path(tempfile.mkdtemp(prefix="softsnn-serve-smoke-"))
    )
    registry = ModelRegistry(models_dir)
    registry.register(model, DEMO_MODEL_NAME, workload="mnist")

    service = SoftSNNService(
        ServiceConfig(
            models_dir=models_dir,
            max_batch_size=4,
            max_delay_ms=3.0,
            default_fault_rate=args.fault_rate,
        ),
        registry=registry,
    )
    n_samples = min(args.n_samples, len(test_set))
    images = [test_set.images[index].reshape(-1) for index in range(n_samples)]
    seeds = [9000 + index for index in range(n_samples)]

    failures = 0
    with ServiceServer(service, host=args.host, port=args.port) as server:
        print(f"softsnn-serve smoke: service on {server.url}")
        client = ServiceClient(server.url)
        health = client.healthz()
        assert health["status"] == "ok", health
        assert DEMO_MODEL_NAME in health["models"], health

        for spec in ("clean", "faulty", "protected"):
            response = client.classify(
                [image.tolist() for image in images],
                model=DEMO_MODEL_NAME,
                mode=spec,
                seeds=seeds,
            )
            served = response["predictions"]
            mode = service.resolve_mode(spec)
            expected = _reference_predictions(model, mode, images, seeds)
            status = "OK" if served == expected else "MISMATCH"
            if served != expected:
                failures += 1
            print(
                f"  mode={spec:9s} served={served} direct={expected} [{status}]"
            )

        metrics = client.metrics()
        print(
            "softsnn-serve smoke: "
            f"{metrics['requests_total']} requests, "
            f"mean batch size {metrics['mean_batch_size']}, "
            f"p99 latency {metrics['latency']['p99_ms']}ms"
        )
    if failures:
        print(
            f"softsnn-serve smoke: FAILED ({failures} mode(s) diverged from "
            "direct evaluation)",
            file=sys.stderr,
        )
        return 1
    print("softsnn-serve smoke: all modes parity-exact with direct evaluation")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(
        level=logging.WARNING if getattr(args, "quiet", False) else logging.INFO
    )
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
