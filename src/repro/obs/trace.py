"""Low-overhead hierarchical span timing with an optional JSONL sink.

Spans are the narrative complement to the aggregates in
:mod:`repro.obs.metrics`: ``with span("campaign.unit", experiment=key):``
times the enclosed block with :func:`time.perf_counter_ns`, remembers its
parent via a thread-local stack (so nested spans form a tree without any
explicit plumbing), and — when a sink is configured — appends one JSON
event per completed span to an append-only JSONL file via
:func:`repro.utils.serialization.append_jsonl`.

Span names follow a ``subsystem.operation`` convention (catalog in
``docs/observability.md``); every span also feeds the
``softsnn_span_seconds{name=...}`` histogram so duration percentiles are
available even with no sink configured.

Determinism: span ids come from a plain :class:`itertools.count` and
timing reads clocks only — no RNG stream is ever touched, which is what
keeps the parity suites bit-identical with tracing enabled.  When neither
a sink nor telemetry is active a span costs two clock reads and a few
attribute operations.

Configure the sink with :func:`configure` or the ``SOFTSNN_TRACE``
environment variable (a path; empty/unset disables the sink).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs import metrics as _metrics

__all__ = ["TRACE_ENV", "Tracer", "configure", "span"]

#: Environment variable naming the JSONL sink path (unset = no sink).
TRACE_ENV = "SOFTSNN_TRACE"


class Tracer:
    """Produces timed, parented spans; optionally persists them as JSONL."""

    def __init__(
        self,
        sink_path: Optional[str] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self._sink_path = sink_path
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._registry = registry if registry is not None else _metrics.get_registry()
        self._span_seconds = self._registry.histogram(
            "softsnn_span_seconds",
            "Duration of traced spans by span name.",
            labels=("name",),
        )

    def configure(self, sink_path: Optional[str]) -> None:
        """Set (or clear, with ``None``/empty) the JSONL sink path."""
        self._sink_path = sink_path or None

    @property
    def sink_path(self) -> Optional[str]:
        """Current JSONL sink path, or ``None`` when no sink is active."""
        return self._sink_path

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Dict[str, object]]:
        """Time a block as a span named *name* with free-form attributes.

        Yields the (mutable) event dict so callers can attach results
        discovered inside the block — e.g. ``event["n_faults"] = k`` —
        before it is emitted.  ``duration_ns`` is filled in on exit.
        """
        stack = self._stack()
        span_id = next(self._ids)
        parent_id = stack[-1] if stack else None
        event: Dict[str, object] = {
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
        }
        if attributes:
            event["attributes"] = dict(attributes)
        stack.append(span_id)
        start_ns = time.perf_counter_ns()
        try:
            yield event
        finally:
            duration_ns = time.perf_counter_ns() - start_ns
            stack.pop()
            event["duration_ns"] = duration_ns
            if _metrics.enabled():
                self._span_seconds.labels(name=name).observe(duration_ns / 1e9)
            if self._sink_path is not None:
                self._emit(event)

    def _emit(self, event: Dict[str, object]) -> None:
        # Imported lazily: serialization pulls in numpy, which spans must
        # not require when no sink is configured (e.g. in pool workers
        # before the context message arrives).
        from repro.utils.serialization import append_jsonl

        record = dict(event)
        record["ts"] = time.time()
        try:
            append_jsonl(record, self._sink_path)
        except OSError:
            # A full disk or revoked path must never take down the run —
            # tracing is diagnostic, the computation is the product.
            pass


_DEFAULT_TRACER = Tracer(sink_path=os.environ.get(TRACE_ENV) or None)


def configure(sink_path: Optional[str]) -> None:
    """Point the default tracer's JSONL sink at *sink_path* (None clears)."""
    _DEFAULT_TRACER.configure(sink_path)


def span(name: str, **attributes: object):
    """Span context manager on the process-wide default tracer."""
    return _DEFAULT_TRACER.span(name, **attributes)
