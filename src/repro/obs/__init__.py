"""Dependency-free observability layer: metrics registry + tracing spans.

Every subsystem records into the process-wide
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
log-bucketed histograms) and may wrap phases in
:func:`~repro.obs.trace.span` blocks.  Two surfaces expose the data: the
serving tier's ``GET /metrics`` (JSON, or Prometheus text format 0.0.4
with ``?format=prometheus``) and the campaign CLI's ``--run-report``
artifact.  See ``docs/observability.md`` for the metric catalog, span
naming convention, and run-report schema.

Telemetry never touches an RNG stream and budgets ≤ 2 % overhead on the
kernel perf benches; ``SOFTSNN_TELEMETRY=off`` disables recording
entirely and ``SOFTSNN_TRACE=<path>`` enables the span JSONL sink.
"""

from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    enabled,
    get_registry,
    log_buckets,
    set_enabled,
)
from repro.obs.trace import Tracer, configure as configure_trace, span

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "MetricsRegistry",
    "Tracer",
    "configure_trace",
    "enabled",
    "get_registry",
    "log_buckets",
    "set_enabled",
    "span",
]
