"""Thread-safe metrics registry: counters, gauges, log-bucketed histograms.

This module is the substrate of the repo's observability layer (see
``docs/observability.md`` for the metric catalog): every subsystem —
kernels, engines, the campaign orchestrator and its warm worker pool,
training, serving — records into one process-wide
:class:`MetricsRegistry` (:func:`get_registry`), and two renderers expose
it: :meth:`MetricsRegistry.snapshot` for JSON consumers (the campaign run
report, tests) and :meth:`MetricsRegistry.render_prometheus` for the
Prometheus text exposition format 0.0.4 served by
``GET /metrics?format=prometheus``.

Design constraints, in order:

* **Never perturb results.**  Recording reads clocks and mutates plain
  Python numbers under a lock; it never touches an RNG stream, so every
  parity suite stays bit-identical with telemetry enabled.  The
  ``SOFTSNN_TELEMETRY=off`` kill switch (:func:`set_enabled` /
  :func:`enabled`) exists for overhead A/B measurements, not correctness.
* **Cheap on the hot path.**  A labeled child is resolved once and cached
  by the call site; ``inc``/``observe`` is then one lock acquisition and a
  few arithmetic operations (~1 µs).  The kernel perf bench enforces a
  ≤ 2 % overhead budget on the instrumented primitives
  (``benchmarks/test_perf_kernels.py``).
* **Dependency-free.**  Standard library only — the registry must be
  importable from kernels, pool workers and the serving tier alike.

Histograms use fixed log-scaled buckets (:func:`log_buckets`) so one
family covers microseconds to minutes with bounded memory, and estimate
p50/p95/p99 by linear interpolation inside the bucket containing the
target rank — accurate to one bucket width by construction
(``tests/test_obs.py`` pins this against ``np.percentile``).
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "TELEMETRY_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "get_registry",
    "log_buckets",
    "set_enabled",
]

#: Environment variable disabling all metric recording (``off`` / ``0``).
TELEMETRY_ENV = "SOFTSNN_TELEMETRY"

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _env_enabled() -> bool:
    """Resolve the kill switch from :data:`TELEMETRY_ENV` (default on)."""
    value = os.environ.get(TELEMETRY_ENV, "").strip().lower()
    return value not in ("off", "0", "false", "no", "disable", "disabled")


_ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether metric recording is currently active."""
    return _ENABLED


def set_enabled(value: Optional[bool]) -> bool:
    """Enable/disable all recording; ``None`` re-resolves the environment.

    Returns the state actually activated.  Disabling turns every
    ``inc``/``set``/``observe`` into an immediate no-op — used by the
    perf-bench overhead guard to measure the instrumented-vs-raw delta.
    """
    global _ENABLED
    _ENABLED = _env_enabled() if value is None else bool(value)
    return _ENABLED


def log_buckets(
    start: float, stop: float, per_decade: int = 4
) -> Tuple[float, ...]:
    """Geometric bucket bounds from *start* to at least *stop* (inclusive).

    ``per_decade`` bounds per factor of ten; the classic shape for latency
    and duration histograms, where relative (not absolute) resolution is
    what matters.  Bounds are finite and strictly increasing; the implicit
    ``+Inf`` overflow bucket is added by :class:`Histogram` itself.
    """
    if start <= 0 or stop <= start:
        raise ValueError("need 0 < start < stop")
    if per_decade < 1:
        raise ValueError("per_decade must be at least 1")
    bounds: List[float] = []
    exponent = math.log10(start)
    step = 1.0 / per_decade
    while True:
        bound = 10.0 ** exponent
        bounds.append(bound)
        if bound >= stop:
            break
        exponent += step
    return tuple(bounds)


#: Default histogram bounds: 10 µs … 100 s, four buckets per decade.
DEFAULT_SECONDS_BUCKETS = log_buckets(1e-5, 100.0, per_decade=4)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text-format rules (``\\``, ``\"``, LF)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _validate_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _METRIC_NAME_OK:
        raise ValueError(f"invalid metric name: {name!r}")
    return name


class _Child:
    """One labeled time series of a family; holds the actual numbers."""

    __slots__ = ("_family", "_label_values")

    def __init__(self, family: "_Family", label_values: Tuple[str, ...]) -> None:
        self._family = family
        self._label_values = label_values


class _CounterChild(_Child):
    """Monotonically increasing value (one label combination)."""

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        family = self._family
        with family._lock:
            family._values[self._label_values] = (
                family._values.get(self._label_values, 0.0) + amount
            )

    def set_to(self, value: float) -> None:
        """Raise the counter to *value* if it is ahead of the current total.

        For syncing pre-aggregated cumulative totals maintained elsewhere
        (e.g. scheduler flush counts) into the registry at scrape time:
        the counter stays monotonic even if the source resets.
        """
        if not _ENABLED:
            return
        family = self._family
        with family._lock:
            current = family._values.get(self._label_values, 0.0)
            if value > current:
                family._values[self._label_values] = float(value)

    @property
    def value(self) -> float:
        """Current counter value."""
        family = self._family
        with family._lock:
            return family._values.get(self._label_values, 0.0)


class _GaugeChild(_Child):
    """Freely settable value (one label combination)."""

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        if not _ENABLED:
            return
        family = self._family
        with family._lock:
            family._values[self._label_values] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative) to the gauge."""
        if not _ENABLED:
            return
        family = self._family
        with family._lock:
            family._values[self._label_values] = (
                family._values.get(self._label_values, 0.0) + amount
            )

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        family = self._family
        with family._lock:
            return family._values.get(self._label_values, 0.0)


class _HistogramState:
    """Bucket counts, sum, count and observed range of one histogram child."""

    __slots__ = ("bucket_counts", "total", "count", "minimum", "maximum")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # finite bounds + overflow
        self.total = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf


class _HistogramChild(_Child):
    """Log-bucketed distribution (one label combination)."""

    def observe(self, value: float) -> None:
        """Record one sample into its bucket."""
        if not _ENABLED:
            return
        family = self._family
        value = float(value)
        with family._lock:
            state = family._values.get(self._label_values)
            if state is None:
                state = _HistogramState(len(family.buckets))
                family._values[self._label_values] = state
            index = bisect_left(family.buckets, value)
            state.bucket_counts[index] += 1
            state.total += value
            state.count += 1
            if value < state.minimum:
                state.minimum = value
            if value > state.maximum:
                state.maximum = value

    def percentile(self, q: float) -> float:
        """Estimate the *q*-th percentile from the bucket counts.

        Uses the continuous rank ``r = q/100 * (count - 1)`` (matching
        ``np.percentile``'s linear interpolation) located in cumulative
        bucket counts, then interpolates linearly inside the bucket.  The
        estimate and the true percentile always land in the same bucket,
        so the error is bounded by one bucket width.
        """
        family = self._family
        with family._lock:
            state = family._values.get(self._label_values)
            if state is None or state.count == 0:
                return 0.0
            counts = list(state.bucket_counts)
            count = state.count
            minimum = state.minimum
            maximum = state.maximum
        rank = max(0.0, min(100.0, q)) / 100.0 * (count - 1)
        bounds = family.buckets
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                cumulative += bucket_count
                continue
            # The samples of this bucket occupy ranks
            # [cumulative, cumulative + bucket_count - 1].
            if rank <= cumulative + bucket_count - 1 or index == len(counts) - 1:
                lower = bounds[index - 1] if index > 0 else min(minimum, bounds[0])
                upper = bounds[index] if index < len(bounds) else maximum
                lower = max(lower, minimum) if index == 0 else lower
                upper = min(upper, maximum)
                lower = min(lower, upper)
                if bucket_count == 1:
                    return lower + (upper - lower) * 0.5
                position = (rank - cumulative) / (bucket_count - 1)
                position = max(0.0, min(1.0, position))
                return lower + (upper - lower) * position
            cumulative += bucket_count
        return maximum  # pragma: no cover - unreachable (count > 0)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        family = self._family
        with family._lock:
            state = family._values.get(self._label_values)
            return 0 if state is None else state.count

    @property
    def sum(self) -> float:
        """Sum of recorded samples."""
        family = self._family
        with family._lock:
            state = family._values.get(self._label_values)
            return 0.0 if state is None else state.total


class _Family:
    """One named metric family: kind, help text, label names, children."""

    kind = "untyped"
    _child_class = _Child

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = _validate_name(name)
        self.help_text = help_text
        self.label_names = label_names
        self._lock = lock
        self._values: Dict[Tuple[str, ...], object] = {}
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._default: Optional[_Child] = None

    def labels(self, **labels: object) -> _Child:
        """Child for one label-value combination (cached; order-insensitive).

        Hot call sites should resolve their child once and keep it — the
        lookup validates label names and takes the family lock.
        """
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._child_class(self, values)
                self._children[values] = child
            return child

    def _unlabeled(self) -> _Child:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled ({self.label_names}); "
                "use .labels(...)"
            )
        if self._default is None:
            self._default = self.labels()
        return self._default


class Counter(_Family):
    """Monotonically increasing counter family."""

    kind = "counter"
    _child_class = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series (see :class:`_CounterChild`)."""
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        """Value of the label-less series."""
        return self._unlabeled().value


class Gauge(_Family):
    """Set-to-current-value gauge family."""

    kind = "gauge"
    _child_class = _GaugeChild

    def set(self, value: float) -> None:
        """Set the label-less series."""
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series."""
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less series."""
        self._unlabeled().dec(amount)

    @property
    def value(self) -> float:
        """Value of the label-less series."""
        return self._unlabeled().value


class Histogram(_Family):
    """Fixed log-bucketed histogram family with percentile estimation."""

    kind = "histogram"
    _child_class = _HistogramChild

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help_text, label_names, lock)
        bounds = tuple(
            float(b) for b in (buckets if buckets is not None else DEFAULT_SECONDS_BUCKETS)
        )
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float) -> None:
        """Record a sample into the label-less series."""
        self._unlabeled().observe(value)

    def percentile(self, q: float) -> float:
        """Percentile estimate of the label-less series."""
        return self._unlabeled().percentile(q)


class MetricsRegistry:
    """Process-wide collection of metric families with two renderers.

    Families are created idempotently: asking for an existing name with
    the same kind and labels returns the existing family (so modules can
    declare their metrics at import time without coordination); a kind or
    label mismatch raises.  One lock guards both the family table and all
    child values — contention is negligible at the recording rates this
    repo produces, and a single lock keeps snapshots consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # ------------------------------------------------------------------ #
    # family creation
    # ------------------------------------------------------------------ #
    def _family(
        self,
        cls,
        name: str,
        help_text: str,
        labels: Iterable[str],
        **kwargs: object,
    ) -> _Family:
        label_names = tuple(str(label) for label in labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            family = cls(name, help_text, label_names, self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> Counter:
        """Get or create a counter family."""
        return self._family(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str, labels: Iterable[str] = ()
    ) -> Gauge:
        """Get or create a gauge family."""
        return self._family(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Iterable[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create a histogram family (default: seconds log buckets)."""
        return self._family(Histogram, name, help_text, labels, buckets=buckets)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Optional[_Family]:
        """The family registered under *name*, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: object) -> float:
        """Current value of one counter/gauge series (0.0 when absent)."""
        family = self.get(name)
        if family is None:
            return 0.0
        values = tuple(str(labels[n]) for n in family.label_names)
        with self._lock:
            value = family._values.get(values, 0.0)
        return float(value) if isinstance(value, (int, float)) else 0.0

    def reset(self) -> None:
        """Drop every family (tests; never called on the serving path)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------ #
    # renderers
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every family, deterministic ordering.

        Histograms include count/sum/min/max and estimated p50/p95/p99
        next to the raw cumulative bucket counts, so a run report is
        self-contained without a Prometheus server.
        """
        with self._lock:
            families = sorted(self._families.items())
        out: Dict[str, object] = {}
        for name, family in families:
            series: Dict[str, object] = {}
            with self._lock:
                items = sorted(family._values.items())
            for values, value in items:
                key = ",".join(
                    f"{n}={v}" for n, v in zip(family.label_names, values)
                ) or ""
                if isinstance(value, _HistogramState):
                    child = family.labels(
                        **dict(zip(family.label_names, values))
                    )
                    cumulative = 0
                    buckets: Dict[str, int] = {}
                    for bound, count in zip(
                        tuple(family.buckets) + (math.inf,), value.bucket_counts
                    ):
                        cumulative += count
                        buckets[_format_value(bound)] = cumulative
                    series[key] = {
                        "count": value.count,
                        "sum": value.total,
                        "min": None if value.count == 0 else value.minimum,
                        "max": None if value.count == 0 else value.maximum,
                        "p50": child.percentile(50),
                        "p95": child.percentile(95),
                        "p99": child.percentile(99),
                        "buckets": buckets,
                    }
                else:
                    series[key] = value
            out[name] = {
                "kind": family.kind,
                "help": family.help_text,
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Render every family in the Prometheus text format (0.0.4).

        Counters and gauges render one sample per labeled series;
        histograms render the cumulative ``_bucket{le=...}`` series
        (monotone by construction, closed by ``le="+Inf"``) plus ``_sum``
        and ``_count``.  Serve with :data:`PROMETHEUS_CONTENT_TYPE`.
        """
        with self._lock:
            families = sorted(self._families.items())
        lines: List[str] = []
        for name, family in families:
            with self._lock:
                items = sorted(family._values.items())
            if not items:
                continue
            lines.append(f"# HELP {name} {self._escape_help(family.help_text)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for values, value in items:
                label_str = self._render_labels(family.label_names, values)
                if isinstance(value, _HistogramState):
                    cumulative = 0
                    for bound, count in zip(
                        tuple(family.buckets) + (math.inf,), value.bucket_counts
                    ):
                        cumulative += count
                        bucket_labels = self._render_labels(
                            family.label_names + ("le",),
                            values + (_format_value(bound),),
                        )
                        lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                    lines.append(
                        f"{name}_sum{label_str} {_format_value(value.total)}"
                    )
                    lines.append(f"{name}_count{label_str} {value.count}")
                else:
                    lines.append(f"{name}{label_str} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _escape_help(text: str) -> str:
        return text.replace("\\", "\\\\").replace("\n", "\\n")

    @staticmethod
    def _render_labels(
        names: Tuple[str, ...], values: Tuple[str, ...]
    ) -> str:
        if not names:
            return ""
        pairs = ",".join(
            f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
        )
        return "{" + pairs + "}"


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every subsystem records into."""
    return _DEFAULT_REGISTRY
