"""Logging configuration shared by the examples and benchmark harness.

The library itself never configures the root logger (a library should not
hijack the host application's logging); it only creates namespaced loggers
under ``repro.*``.  The examples and benches call :func:`configure_logging`
once at start-up to get readable console output.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["configure_logging", "get_logger"]

_LIBRARY_ROOT = "repro"
_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger namespaced under the library root.

    ``get_logger("snn.training")`` returns the ``repro.snn.training`` logger.
    Passing ``None`` returns the library root logger.
    """
    if name is None:
        return logging.getLogger(_LIBRARY_ROOT)
    if name.startswith(_LIBRARY_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_ROOT}.{name}")


def configure_logging(level: int = logging.INFO, fmt: str = _DEFAULT_FORMAT) -> None:
    """Attach a console handler to the library root logger.

    Safe to call multiple times: existing handlers installed by this function
    are replaced rather than duplicated, so repeated example runs inside one
    interpreter do not multiply log lines.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(fmt))
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
