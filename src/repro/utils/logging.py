"""Logging configuration shared by the examples and benchmark harness.

The library itself never configures the root logger (a library should not
hijack the host application's logging); it only creates namespaced loggers
under ``repro.*``.  The examples and benches call :func:`configure_logging`
once at start-up to get readable console output.

The ``SOFTSNN_LOG_LEVEL`` environment variable (a level name like
``DEBUG`` or a numeric value) overrides the level passed to
:func:`configure_logging` — the knob that turns on worker-side debug
logging in a campaign run without touching the CLI, because pool workers
resolve it independently when installing their log relay
(:mod:`repro.eval.pool`).
"""

from __future__ import annotations

import logging
import os
from typing import Optional

__all__ = ["LOG_LEVEL_ENV", "configure_logging", "env_log_level", "get_logger"]

#: Environment variable overriding the console log level.
LOG_LEVEL_ENV = "SOFTSNN_LOG_LEVEL"

_LIBRARY_ROOT = "repro"
_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger namespaced under the library root.

    ``get_logger("snn.training")`` returns the ``repro.snn.training`` logger.
    Passing ``None`` returns the library root logger.
    """
    if name is None:
        return logging.getLogger(_LIBRARY_ROOT)
    if name.startswith(_LIBRARY_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_ROOT}.{name}")


def env_log_level(default: Optional[int] = None) -> Optional[int]:
    """Resolve :data:`LOG_LEVEL_ENV` to a logging level, or *default*.

    Accepts standard level names (case-insensitive) and bare integers;
    unknown values are ignored with a one-line warning rather than raised —
    a typo in an environment variable must not kill a campaign.
    """
    raw = os.environ.get(LOG_LEVEL_ENV, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    if isinstance(level, int):
        return level
    logging.getLogger(_LIBRARY_ROOT).warning(
        "ignoring unrecognised %s=%r", LOG_LEVEL_ENV, raw
    )
    return default


def configure_logging(level: int = logging.INFO, fmt: str = _DEFAULT_FORMAT) -> None:
    """Attach a console handler to the library root logger.

    Safe to call multiple times: existing handlers installed by this function
    are replaced rather than duplicated, so repeated example runs inside one
    interpreter do not multiply log lines.  ``SOFTSNN_LOG_LEVEL`` in the
    environment wins over the *level* argument.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    root.setLevel(env_log_level(level))
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(fmt))
    handler._repro_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
