"""Bit-level helpers for the 8-bit weight-register model.

The SoftSNN accelerator stores each synaptic weight in an 8-bit register
(Section 2.1 of the paper).  A soft error in a synapse flips exactly one bit
of that register (Section 2.2).  The fault-injection subpackage therefore
needs fast, vectorised helpers to convert between integer register contents
and bit vectors and to flip chosen bit positions, both for scalars and for
whole weight matrices.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "bits_to_int",
    "count_set_bits",
    "flip_bit",
    "flip_bits",
    "flip_bits_in_array",
    "int_to_bits",
]


def _check_bit_width(bit_width: int) -> None:
    if not isinstance(bit_width, (int, np.integer)) or bit_width <= 0:
        raise ValueError(f"bit_width must be a positive integer, got {bit_width}")
    if bit_width > 64:
        raise ValueError(f"bit_width must be <= 64, got {bit_width}")


def int_to_bits(value: int, bit_width: int = 8) -> np.ndarray:
    """Return the little-endian bit vector of *value*.

    Bit index 0 is the least-significant bit, matching the convention used by
    :func:`flip_bit` and the fault model.

    >>> int_to_bits(5, bit_width=4).tolist()
    [1, 0, 1, 0]
    """
    _check_bit_width(bit_width)
    value = int(value)
    if value < 0 or value >= (1 << bit_width):
        raise ValueError(
            f"value {value} does not fit in an unsigned {bit_width}-bit register"
        )
    return np.array([(value >> i) & 1 for i in range(bit_width)], dtype=np.uint8)


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian bit order)."""
    bits = np.asarray(bits, dtype=np.int64)
    if bits.ndim != 1:
        raise ValueError(f"bits must be a 1-D sequence, got shape {bits.shape}")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must contain only 0 and 1")
    return int(np.sum(bits << np.arange(bits.size, dtype=np.int64)))


def flip_bit(value: int, bit_position: int, bit_width: int = 8) -> int:
    """Flip a single bit of an unsigned register value.

    Parameters
    ----------
    value:
        Current register contents (unsigned).
    bit_position:
        Bit index to flip; 0 is the least-significant bit.
    bit_width:
        Register width in bits.
    """
    _check_bit_width(bit_width)
    value = int(value)
    if value < 0 or value >= (1 << bit_width):
        raise ValueError(
            f"value {value} does not fit in an unsigned {bit_width}-bit register"
        )
    if not 0 <= bit_position < bit_width:
        raise ValueError(
            f"bit_position must be in [0, {bit_width}), got {bit_position}"
        )
    return value ^ (1 << bit_position)


def flip_bits(value: int, bit_positions: Iterable[int], bit_width: int = 8) -> int:
    """Flip multiple bit positions of a single register value."""
    result = int(value)
    for position in bit_positions:
        result = flip_bit(result, position, bit_width=bit_width)
    return result


def flip_bits_in_array(
    values: np.ndarray,
    flat_indices: np.ndarray,
    bit_positions: np.ndarray,
    bit_width: int = 8,
) -> np.ndarray:
    """Flip one bit per selected element of an unsigned integer array.

    This is the vectorised primitive used by the weight-register fault model:
    given a flattened weight-register array, the flat indices of the faulty
    registers and the bit position struck in each, it returns a copy of the
    array with those bits flipped.  When the same register appears multiple
    times in *flat_indices*, each listed strike is applied (two strikes on the
    same bit cancel, matching real double-flip physics).

    Parameters
    ----------
    values:
        Integer array of register contents (any shape).
    flat_indices:
        Flat indices (into ``values.ravel()``) of the registers hit by faults.
    bit_positions:
        Bit position struck for each entry of *flat_indices*.
    bit_width:
        Register width; all values must fit in it.
    """
    _check_bit_width(bit_width)
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"values must be an integer array, got dtype {values.dtype}")
    flat_indices = np.asarray(flat_indices, dtype=np.int64)
    bit_positions = np.asarray(bit_positions, dtype=np.int64)
    if flat_indices.shape != bit_positions.shape:
        raise ValueError(
            "flat_indices and bit_positions must have identical shapes, got "
            f"{flat_indices.shape} and {bit_positions.shape}"
        )
    if flat_indices.size and (
        flat_indices.min() < 0 or flat_indices.max() >= values.size
    ):
        raise IndexError("flat_indices out of range for the given array")
    if bit_positions.size and (
        bit_positions.min() < 0 or bit_positions.max() >= bit_width
    ):
        raise ValueError(f"bit_positions must lie in [0, {bit_width})")
    if values.size and (values.min() < 0 or values.max() >= (1 << bit_width)):
        raise ValueError(
            f"all values must fit in an unsigned {bit_width}-bit register"
        )

    flat = values.ravel().copy()
    # Sequential XOR so repeated strikes on the same register compose.
    masks = (np.int64(1) << bit_positions).astype(flat.dtype)
    np.bitwise_xor.at(flat, flat_indices, masks)
    return flat.reshape(values.shape)


def count_set_bits(values: np.ndarray) -> np.ndarray:
    """Population count of each element of an unsigned integer array."""
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"values must be an integer array, got dtype {values.dtype}")
    if values.size and values.min() < 0:
        raise ValueError("values must be non-negative")
    result = np.zeros(values.shape, dtype=np.int64)
    remaining = values.astype(np.int64).copy()
    while np.any(remaining):
        result += remaining & 1
        remaining >>= 1
    return result
