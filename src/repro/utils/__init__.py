"""Shared utilities for the SoftSNN reproduction.

This subpackage contains infrastructure that every other subpackage relies
on but which is not itself part of the paper's contribution:

* :mod:`repro.utils.rng` — reproducible random-number-generator management.
  Every stochastic component in the library (Poisson encoding, fault-map
  generation, dataset synthesis) accepts either a seed or a
  :class:`numpy.random.Generator` and funnels it through
  :func:`~repro.utils.rng.resolve_rng` so experiments are repeatable.
* :mod:`repro.utils.bits` — bit-level helpers used by the 8-bit weight
  register model and the bit-flip fault model.
* :mod:`repro.utils.serialization` — small JSON-based persistence for
  experiment results and trained-network snapshots.
* :mod:`repro.utils.logging` — a thin, dependency-free logging configuration
  helper shared by the examples and benchmark harness.
* :mod:`repro.utils.validation` — argument validation helpers that raise
  consistent, descriptive errors across the public API.
"""

from repro.utils.bits import (
    bits_to_int,
    count_set_bits,
    flip_bit,
    flip_bits,
    int_to_bits,
)
from repro.utils.rng import SeedSequenceFactory, resolve_rng, spawn_rngs
from repro.utils.serialization import (
    load_json,
    numpy_to_native,
    save_json,
)
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "SeedSequenceFactory",
    "bits_to_int",
    "check_fraction",
    "check_in_choices",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_shape",
    "count_set_bits",
    "flip_bit",
    "flip_bits",
    "int_to_bits",
    "load_json",
    "numpy_to_native",
    "resolve_rng",
    "save_json",
    "spawn_rngs",
]
