"""Lightweight persistence for experiment results and model snapshots.

Three formats cover every artefact the library writes:

* plain JSON (:func:`save_json` / :func:`load_json`) — benchmark outputs
  and model metadata, inspectable and diffable without binary tooling;
* NumPy ``.npz`` archives (:func:`save_npz` / :func:`load_npz`) — the
  array payload of trained-model snapshots that campaign workers load
  instead of retraining;
* append-only JSON lines (:func:`append_jsonl` / :func:`read_jsonl`) —
  the campaign result store, where each finished sweep cell is streamed
  out as one self-contained record so a killed run loses at most the
  line being written.

NumPy scalars and arrays are converted to native Python types on the way
out of the JSON writers.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Union

import numpy as np

__all__ = [
    "numpy_to_native",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "append_jsonl",
    "read_jsonl",
]

PathLike = Union[str, Path]

# mkstemp creates temp files 0600; atomically replaced files must instead get
# the permissions a plain open() would have produced.  The umask is read once
# at import (reading requires a set/restore round trip, which is process-global
# and would race concurrent writers if done per call).
_UMASK = os.umask(0)
os.umask(_UMASK)


def numpy_to_native(obj: Any) -> Any:
    """Recursively convert NumPy containers/scalars into JSON-safe values.

    Handles nested dictionaries, lists, tuples, NumPy arrays, NumPy scalar
    types and leaves native Python values untouched.  Dictionary keys are
    converted to strings when they are NumPy scalars so the result is always
    JSON-serialisable.
    """
    if isinstance(obj, dict):
        return {_native_key(key): numpy_to_native(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [numpy_to_native(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return numpy_to_native(obj.tolist())
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def _native_key(key: Any) -> Any:
    if isinstance(key, (np.integer, np.floating, np.bool_)):
        return str(key)
    return key


@contextmanager
def _atomic_write(path: Path, mode: str) -> Iterator[Any]:
    """Write to a temp file in *path*'s directory, then ``os.replace`` it in.

    Readers — the model registry, campaign pool workers — either see the
    previous complete file or the new complete file, never a torn mixture: a
    writer killed mid-write leaves only an orphaned ``*.tmp`` file behind.
    The payload is flushed and fsynced before the rename so the replacement
    is durable, not merely atomic.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        if hasattr(os, "fchmod"):  # absent on Windows; 0600 is acceptable there
            os.fchmod(descriptor, 0o666 & ~_UMASK)
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(descriptor, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced or removed
            pass
        raise


def save_json(data: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialise *data* to JSON at *path*, creating parent directories.

    The write is atomic (temp file + rename), so a killed process can never
    leave a torn JSON document for a later reader to choke on.  Returns the
    resolved :class:`~pathlib.Path` the data was written to.
    """
    path = Path(path)
    with _atomic_write(path, "w") as handle:
        json.dump(numpy_to_native(data), handle, indent=indent, sort_keys=False)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Any:
    """Load JSON previously written by :func:`save_json`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such results file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Write named arrays to a compressed ``.npz`` archive at *path*.

    Parent directories are created as needed; the resolved path (with the
    ``.npz`` suffix NumPy enforces) is returned.  Like :func:`save_json` the
    write is atomic — the archive is assembled in a temp file and renamed
    into place — so registry discovery and pool workers can never load a
    half-written snapshot.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with _atomic_write(path, "wb") as handle:
        # Writing through the handle (not the path) stops numpy from
        # appending another .npz suffix to the temp file name.
        np.savez_compressed(
            handle, **{str(k): np.asarray(v) for k, v in arrays.items()}
        )
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` archive written by :func:`save_npz` into a dict."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such array archive: {path}")
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name].copy() for name in archive.files}


def append_jsonl(record: Any, path: PathLike) -> Path:
    """Append one JSON record as a single line to *path* (created if absent).

    The line is flushed and fsynced before returning so that a process
    killed right after the call leaves a complete, replayable record on
    disk — the property the campaign store's resume logic relies on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(numpy_to_native(record), sort_keys=False)
    if "\n" in line:  # pragma: no cover - json.dumps never emits newlines
        raise ValueError("JSONL records must serialise to a single line")
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def read_jsonl(path: PathLike, tolerate_truncated_tail: bool = True) -> List[Any]:
    """Read every record of a JSON-lines file written by :func:`append_jsonl`.

    Parameters
    ----------
    path:
        File to read; a missing file raises :class:`FileNotFoundError`.
    tolerate_truncated_tail:
        When true (default) a final line that does not parse — the footprint
        of a writer killed mid-append — is silently dropped.  A malformed
        line anywhere *before* the tail always raises ``ValueError``, since
        that indicates real corruption rather than an interrupted append.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such JSONL file: {path}")
    records: List[Any] = []
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError:
            if tolerate_truncated_tail and index == len(lines) - 1:
                break
            raise ValueError(f"corrupt JSONL record at {path}:{index + 1}")
    return records
