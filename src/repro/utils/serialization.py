"""Lightweight JSON persistence for experiment results and model snapshots.

The benchmark harness (one bench per paper figure) and the examples write
their outputs as plain JSON so the regenerated series can be inspected,
diffed and committed without any binary tooling.  NumPy scalars and arrays
are converted to native Python types on the way out.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

__all__ = ["numpy_to_native", "save_json", "load_json"]

PathLike = Union[str, Path]


def numpy_to_native(obj: Any) -> Any:
    """Recursively convert NumPy containers/scalars into JSON-safe values.

    Handles nested dictionaries, lists, tuples, NumPy arrays, NumPy scalar
    types and leaves native Python values untouched.  Dictionary keys are
    converted to strings when they are NumPy scalars so the result is always
    JSON-serialisable.
    """
    if isinstance(obj, dict):
        return {_native_key(key): numpy_to_native(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [numpy_to_native(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return numpy_to_native(obj.tolist())
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def _native_key(key: Any) -> Any:
    if isinstance(key, (np.integer, np.floating, np.bool_)):
        return str(key)
    return key


def save_json(data: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialise *data* to JSON at *path*, creating parent directories.

    Returns the resolved :class:`~pathlib.Path` the data was written to.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(numpy_to_native(data), handle, indent=indent, sort_keys=False)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Any:
    """Load JSON previously written by :func:`save_json`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such results file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)
