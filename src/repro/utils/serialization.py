"""Lightweight persistence for experiment results and model snapshots.

Three formats cover every artefact the library writes:

* plain JSON (:func:`save_json` / :func:`load_json`) — benchmark outputs
  and model metadata, inspectable and diffable without binary tooling;
* NumPy ``.npz`` archives (:func:`save_npz` / :func:`load_npz`) — the
  array payload of trained-model snapshots that campaign workers load
  instead of retraining;
* append-only JSON lines (:func:`append_jsonl` / :func:`read_jsonl`) —
  the campaign result store, where each finished sweep cell is streamed
  out as one self-contained record so a killed run loses at most the
  line being written.

A fourth mechanism is process-to-process, not disk: POSIX shared memory
(:class:`SharedArrayPublisher` / :class:`SharedArrayView`) publishes numpy
arrays once and lets worker processes attach zero-copy views instead of
regenerating or re-receiving the data.  The warm campaign worker pool uses
it to share pre-encoded test-set presentations and the test images
themselves.  Lifecycle contract: the publishing process owns every segment
and unlinks it (:meth:`SharedArrayPublisher.close` is crash-safe to call
from ``finally``); attaching processes only map and unmap, and
attach without registering with the ``multiprocessing`` resource tracker so
a worker exiting — cleanly or not — can never tear a segment away from its
owner.

NumPy scalars and arrays are converted to native Python types on the way
out of the JSON writers.
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Tuple, Union

import numpy as np

__all__ = [
    "numpy_to_native",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "append_jsonl",
    "read_jsonl",
    "SharedArrayHandle",
    "SharedArrayPublisher",
    "SharedArrayView",
    "reap_stale_segments",
]

PathLike = Union[str, Path]

# mkstemp creates temp files 0600; atomically replaced files must instead get
# the permissions a plain open() would have produced.  The umask is read once
# at import (reading requires a set/restore round trip, which is process-global
# and would race concurrent writers if done per call).
_UMASK = os.umask(0)
os.umask(_UMASK)


def numpy_to_native(obj: Any) -> Any:
    """Recursively convert NumPy containers/scalars into JSON-safe values.

    Handles nested dictionaries, lists, tuples, NumPy arrays, NumPy scalar
    types and leaves native Python values untouched.  Dictionary keys are
    converted to strings when they are NumPy scalars so the result is always
    JSON-serialisable.
    """
    if isinstance(obj, dict):
        return {_native_key(key): numpy_to_native(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [numpy_to_native(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return numpy_to_native(obj.tolist())
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def _native_key(key: Any) -> Any:
    if isinstance(key, (np.integer, np.floating, np.bool_)):
        return str(key)
    return key


@contextmanager
def _atomic_write(path: Path, mode: str) -> Iterator[Any]:
    """Write to a temp file in *path*'s directory, then ``os.replace`` it in.

    Readers — the model registry, campaign pool workers — either see the
    previous complete file or the new complete file, never a torn mixture: a
    writer killed mid-write leaves only an orphaned ``*.tmp`` file behind.
    The payload is flushed and fsynced before the rename so the replacement
    is durable, not merely atomic.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        if hasattr(os, "fchmod"):  # absent on Windows; 0600 is acceptable there
            os.fchmod(descriptor, 0o666 & ~_UMASK)
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(descriptor, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced or removed
            pass
        raise


def save_json(data: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialise *data* to JSON at *path*, creating parent directories.

    The write is atomic (temp file + rename), so a killed process can never
    leave a torn JSON document for a later reader to choke on.  Returns the
    resolved :class:`~pathlib.Path` the data was written to.
    """
    path = Path(path)
    with _atomic_write(path, "w") as handle:
        json.dump(numpy_to_native(data), handle, indent=indent, sort_keys=False)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Any:
    """Load JSON previously written by :func:`save_json`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such results file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Write named arrays to a compressed ``.npz`` archive at *path*.

    Parent directories are created as needed; the resolved path (with the
    ``.npz`` suffix NumPy enforces) is returned.  Like :func:`save_json` the
    write is atomic — the archive is assembled in a temp file and renamed
    into place — so registry discovery and pool workers can never load a
    half-written snapshot.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with _atomic_write(path, "wb") as handle:
        # Writing through the handle (not the path) stops numpy from
        # appending another .npz suffix to the temp file name.
        np.savez_compressed(
            handle, **{str(k): np.asarray(v) for k, v in arrays.items()}
        )
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` archive written by :func:`save_npz` into a dict."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such array archive: {path}")
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name].copy() for name in archive.files}


def append_jsonl(record: Any, path: PathLike) -> Path:
    """Append one JSON record as a single line to *path* (created if absent).

    The line is flushed and fsynced before returning so that a process
    killed right after the call leaves a complete, replayable record on
    disk — the property the campaign store's resume logic relies on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(numpy_to_native(record), sort_keys=False)
    if "\n" in line:  # pragma: no cover - json.dumps never emits newlines
        raise ValueError("JSONL records must serialise to a single line")
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def read_jsonl(path: PathLike, tolerate_truncated_tail: bool = True) -> List[Any]:
    """Read every record of a JSON-lines file written by :func:`append_jsonl`.

    Parameters
    ----------
    path:
        File to read; a missing file raises :class:`FileNotFoundError`.
    tolerate_truncated_tail:
        When true (default) a final line that does not parse — the footprint
        of a writer killed mid-append — is silently dropped.  A malformed
        line anywhere *before* the tail always raises ``ValueError``, since
        that indicates real corruption rather than an interrupted append.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such JSONL file: {path}")
    records: List[Any] = []
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError:
            if tolerate_truncated_tail and index == len(lines) - 1:
                break
            raise ValueError(f"corrupt JSONL record at {path}:{index + 1}")
    return records


# ---------------------------------------------------------------------- #
# shared-memory array publication
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedArrayHandle:
    """Address of one numpy array published in POSIX shared memory.

    A handle is a tiny picklable value — segment name plus the array's
    shape and dtype — that travels over a task queue so the receiving
    process can map the same physical pages with :class:`SharedArrayView`
    instead of copying the array through the pipe.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size of the described array in bytes."""
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return count * np.dtype(self.dtype).itemsize


@contextmanager
def _untracked_attachment() -> Iterator[None]:
    """Attach to a segment without registering it with the resource tracker.

    CPython (< 3.13, where ``track=False`` lands) registers every
    ``SharedMemory`` attachment with the ``multiprocessing`` resource
    tracker, which then treats the segment as leaked when the attaching
    process exits.  Attachers must not own the segment lifetime — the
    publisher unlinks — and under the default ``fork`` start method all
    processes share one tracker, so an attach-side registration (or a
    compensating ``unregister``) corrupts the publisher's own
    bookkeeping.  Suppressing the registration for the duration of the
    attach keeps the tracker's view exactly what the publisher declared.
    """
    try:  # pragma: no cover - interpreter-internal API, absent on some builds
        from multiprocessing import resource_tracker
    except Exception:
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


class SharedArrayView:
    """Zero-copy numpy view of a published segment, on the attaching side.

    The view holds the mapping open for as long as the object lives;
    :meth:`close` unmaps it (tolerating still-exported buffers, which are
    then released when the process exits).  Attachers never unlink — the
    publishing process owns the segment.
    """

    def __init__(self, handle: SharedArrayHandle) -> None:
        with _untracked_attachment():
            self._segment = shared_memory.SharedMemory(name=handle.name)
        self.array: np.ndarray = np.ndarray(
            tuple(handle.shape),
            dtype=np.dtype(handle.dtype),
            buffer=self._segment.buf,
        )

    def close(self) -> None:
        """Unmap the segment; safe to call twice."""
        self.array = None  # drop the exported buffer if nothing else holds it
        try:
            self._segment.close()
        except BufferError:  # a live slice still references the mapping;
            pass  # the OS reclaims it when the process exits


class SharedArrayPublisher:
    """Publish numpy arrays in shared memory and own their lifetime.

    Every :meth:`publish` copies an array into a fresh uniquely named
    segment and returns its :class:`SharedArrayHandle`.  The publisher —
    and only the publisher — unlinks segments, either individually
    (:meth:`unlink`, e.g. when a work unit completes) or wholesale
    (:meth:`close`, idempotent and safe in ``finally``/``except`` paths, so
    a crash or ``KeyboardInterrupt`` in the owning process cannot leak
    segments as long as the process gets to unwind).
    """

    def __init__(self, prefix: str = "softsnn") -> None:
        self.prefix = prefix
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def __enter__(self) -> "SharedArrayPublisher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, array: np.ndarray) -> SharedArrayHandle:
        """Copy *array* into a new shared segment and return its handle."""
        array = np.ascontiguousarray(array)
        name = f"{self.prefix}-{os.getpid():x}-{uuid.uuid4().hex[:16]}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, array.nbytes)
        )
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            del view
        self._segments[name] = segment
        return SharedArrayHandle(
            name=name, shape=tuple(array.shape), dtype=str(array.dtype)
        )

    def unlink(self, handle: SharedArrayHandle) -> None:
        """Destroy one published segment; unknown/already-freed is a no-op.

        Unlinking while workers are still attached is safe (POSIX keeps the
        pages alive until the last mapping closes); the name just becomes
        unavailable for new attachments.
        """
        segment = self._segments.pop(handle.name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - publisher views are transient
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup raced us
            pass

    def close(self) -> None:
        """Unlink every remaining segment this publisher created."""
        for name in list(self._segments):
            self.unlink(
                SharedArrayHandle(name=name, shape=(), dtype="uint8")
            )


def _pid_can_still_run(pid: int) -> bool:
    """Whether *pid* names a process that could still touch its segments.

    A zombie counts as dead: it keeps its pid (``kill(pid, 0)`` succeeds)
    but can never execute again — and on minimal containers whose pid 1
    does not reap orphans, a SIGKILLed orchestrator stays a zombie
    forever, which is exactly the case the reaper exists for.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - no /proc: fall back to a signal probe
        try:
            os.kill(pid, 0)
            return True
        except ProcessLookupError:
            return False
        except PermissionError:
            return True
    # The state letter follows the parenthesised comm (which may itself
    # contain spaces and parentheses, hence rpartition).
    state = stat.rpartition(b")")[2].split()
    return bool(state) and state[0] != b"Z"


def reap_stale_segments(prefix: str) -> List[str]:
    """Unlink published segments whose owning process no longer exists.

    ``close()`` in a ``finally`` and the multiprocessing resource tracker
    cover every exit path except the one nothing can: ``SIGKILL``
    delivered to the whole process group (OOM killer, ``timeout -sKILL``)
    takes the tracker down with the publisher, and the segments stay in
    ``/dev/shm`` forever.  Segment names embed the publishing pid
    (``{prefix}-{pid:x}-{uuid}``), so a later run can sweep them: any
    segment under *prefix* whose pid is dead is unlinked.  A live pid —
    including a recycled one — is left alone; recycling therefore only
    ever delays a reap, never destroys a live run's data.

    Returns the reaped segment names.  No-op on platforms without a
    ``/dev/shm`` namespace.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-POSIX-shm platform
        return []
    reaped = []
    for path in shm_dir.iterdir():
        if not path.name.startswith(prefix + "-"):
            continue
        suffix = path.name[len(prefix) + 1 :]
        pid_hex, _, _ = suffix.partition("-")
        try:
            pid = int(pid_hex, 16)
        except ValueError:
            continue
        if pid == os.getpid():
            continue
        if _pid_can_still_run(pid):
            continue  # owner is alive (or its pid was recycled): keep
        try:
            path.unlink()
            reaped.append(path.name)
        except FileNotFoundError:  # pragma: no cover - another reaper raced us
            pass
    return reaped
