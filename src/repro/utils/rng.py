"""Reproducible random-number-generator management.

The SoftSNN evaluation is heavily stochastic: Poisson spike encoding,
fault-map generation, dataset synthesis and STDP-driven training all draw
random numbers.  The paper's central observation in Fig. 3(a) — that
different *fault maps* at the same fault rate yield different accuracy —
only makes sense when fault maps are reproducible objects.  This module
gives every stochastic component in the library a single, consistent way to
obtain a generator:

* pass nothing → a fresh, OS-seeded generator,
* pass an ``int`` seed → a deterministic generator,
* pass an existing :class:`numpy.random.Generator` → used as-is.

The helper :func:`spawn_rngs` derives independent child generators for
parallel or repeated experiments without correlated streams, and
:class:`SeedSequenceFactory` hands out deterministic per-purpose seeds for
large experiment sweeps.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator]

__all__ = [
    "RNGLike",
    "SeedSequenceFactory",
    "derive_cell_seed",
    "derive_clean_seed",
    "derive_root_seed",
    "resolve_rng",
    "spawn_rngs",
]


def resolve_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a flexible specifier.

    Parameters
    ----------
    rng:
        ``None`` for a freshly seeded generator, an ``int`` seed for a
        deterministic generator, or an existing generator which is returned
        unchanged.

    Raises
    ------
    TypeError
        If *rng* is none of the accepted types.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed, or a numpy.random.Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_rngs(rng: RNGLike, count: int) -> List[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning
    so repeated experiments (e.g. the per-fault-map trials of Fig. 3a) do not
    share correlated random streams.

    Parameters
    ----------
    rng:
        Parent generator specifier (see :func:`resolve_rng`).
    count:
        Number of child generators to create.  Must be positive.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    parent = resolve_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_root_seed(rng: RNGLike = None) -> int:
    """Collapse a flexible rng specifier into a single 63-bit root seed.

    Campaign execution needs one integer to anchor per-cell seed derivation
    (see :func:`derive_cell_seed`), independent of execution order.  An
    ``int`` specifier is used as-is; ``None`` or a generator draw one value
    from the (fresh or given) generator so repeated calls with the same
    generator state are reproducible.
    """
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return int(rng)
    generator = resolve_rng(rng)
    return int(generator.integers(0, 2**63 - 1, dtype=np.int64))


def derive_cell_seed(
    root_seed: int, experiment_key: str, rate_index: int, trial_index: int
) -> int:
    """Deterministic seed of one sweep cell, independent of execution order.

    A *cell* is one ``(experiment, fault rate, trial)`` coordinate of a
    campaign grid.  Deriving its seed from the grid coordinates (rather than
    from a shared generator's mutable state, as the pre-campaign serial loop
    did) makes the cell a self-contained unit of work: serial and
    process-pool execution draw bit-identical fault maps and encoder
    streams, and any single cell can be re-run in isolation.

    Rate and trial are identified by their *indices* in the spec so that
    float formatting of the rate can never change the seed.
    """
    factory = SeedSequenceFactory(root_seed=root_seed)
    return factory.seed_for(
        f"campaign/cell/{experiment_key}/rate[{int(rate_index)}]"
        f"/trial[{int(trial_index)}]"
    )


def derive_clean_seed(root_seed: int, experiment_key: str) -> int:
    """Deterministic seed of an experiment's fault-free reference cell."""
    factory = SeedSequenceFactory(root_seed=root_seed)
    return factory.seed_for(f"campaign/clean/{experiment_key}")


class SeedSequenceFactory:
    """Deterministic per-purpose seed dispenser for experiment sweeps.

    Large sweeps (Fig. 13 covers five network sizes, five fault rates, five
    techniques and two workloads) need a stable mapping from "experiment
    coordinates" to seeds so any single cell of the grid can be re-run in
    isolation and reproduce exactly.  The factory hashes a textual *purpose*
    together with a root seed to produce that mapping.

    Examples
    --------
    >>> factory = SeedSequenceFactory(root_seed=42)
    >>> a = factory.seed_for("fig13/mnist/N400/rate=0.01/BnP1")
    >>> b = factory.seed_for("fig13/mnist/N400/rate=0.01/BnP1")
    >>> a == b
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed every derived seed is anchored to."""
        return self._root_seed

    def seed_for(self, purpose: str) -> int:
        """Return a deterministic 63-bit seed for *purpose*."""
        if not isinstance(purpose, str) or not purpose:
            raise ValueError("purpose must be a non-empty string")
        # A simple, stable polynomial hash.  ``hash()`` is salted per process
        # so it cannot be used for reproducibility.
        acc = self._root_seed & 0x7FFFFFFFFFFFFFFF
        for char in purpose:
            acc = (acc * 1000003 + ord(char)) & 0x7FFFFFFFFFFFFFFF
        return acc

    def rng_for(self, purpose: str) -> np.random.Generator:
        """Return a deterministic generator for *purpose*."""
        return np.random.default_rng(self.seed_for(purpose))

    def iter_rngs(self, purposes: List[str]) -> Iterator[np.random.Generator]:
        """Yield one deterministic generator per purpose string."""
        for purpose in purposes:
            yield self.rng_for(purpose)

    def child(self, namespace: str) -> "SeedSequenceFactory":
        """Return a factory whose seeds are namespaced under *namespace*."""
        return SeedSequenceFactory(root_seed=self.seed_for(namespace))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self._root_seed})"


def _check_optional_generator(rng: Optional[np.random.Generator]) -> None:
    """Internal guard used by modules that require an already-resolved rng."""
    if rng is not None and not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"expected numpy.random.Generator or None, got {type(rng).__name__}"
        )
