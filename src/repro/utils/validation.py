"""Argument-validation helpers shared across the public API.

Every public constructor in the library validates its arguments eagerly and
raises a descriptive error; these helpers keep the error messages uniform so
users get the same style of feedback whether the mistake is an out-of-range
fault rate, a negative membrane threshold or a mis-shaped weight matrix.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

import numpy as np

__all__ = [
    "check_fraction",
    "check_in_choices",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_shape",
]


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0`` and return it as a float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0`` and return it as a float."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1`` and return it as a float."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``0 < value <= 1`` and return it as a float."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value}")
    return value


def check_in_choices(value: Any, name: str, choices: Sequence[Any]) -> Any:
    """Require *value* to be one of *choices* and return it unchanged."""
    if value not in choices:
        rendered = ", ".join(repr(choice) for choice in choices)
        raise ValueError(f"{name} must be one of {rendered}; got {value!r}")
    return value


def check_shape(array: np.ndarray, expected: Tuple[int, ...], name: str) -> np.ndarray:
    """Require *array* to have exactly the *expected* shape.

    ``-1`` in *expected* matches any extent along that axis.
    """
    array = np.asarray(array)
    if array.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got {array.ndim}"
        )
    for axis, (actual, wanted) in enumerate(zip(array.shape, expected)):
        if wanted != -1 and actual != wanted:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {expected} "
                f"(mismatch on axis {axis})"
            )
    return array
