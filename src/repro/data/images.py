"""Rasterisation primitives for the synthetic datasets.

All synthetic classes are drawn from a handful of simple primitives —
anti-aliased line segments, ellipse outlines and filled rectangles — on a
28x28 canvas, followed by a separable Gaussian blur that gives the images the
soft pen-stroke appearance of MNIST digits.  Keeping the primitives in one
module means both dataset generators share identical rendering behaviour.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "IMAGE_SIDE",
    "blank_canvas",
    "draw_ellipse",
    "draw_line",
    "draw_rectangle",
    "gaussian_blur",
    "normalize_image",
]

#: Canvas side length used throughout the library (matches MNIST).
IMAGE_SIDE = 28


def blank_canvas(side: int = IMAGE_SIDE) -> np.ndarray:
    """Return an all-zero float canvas of shape ``(side, side)``."""
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return np.zeros((side, side), dtype=np.float64)


def _check_canvas(canvas: np.ndarray) -> np.ndarray:
    canvas = np.asarray(canvas, dtype=np.float64)
    if canvas.ndim != 2 or canvas.shape[0] != canvas.shape[1]:
        raise ValueError(f"canvas must be a square 2-D array, got {canvas.shape}")
    return canvas


def draw_line(
    canvas: np.ndarray,
    start: Tuple[float, float],
    end: Tuple[float, float],
    thickness: float = 1.6,
    intensity: float = 1.0,
) -> np.ndarray:
    """Draw an anti-aliased line segment onto a copy of *canvas*.

    Coordinates are ``(row, col)`` in pixel units and may be fractional.
    The stroke falls off smoothly over *thickness* pixels, which is what
    gives the synthetic digits their MNIST-like soft edges.
    """
    canvas = _check_canvas(canvas).copy()
    side = canvas.shape[0]
    r0, c0 = float(start[0]), float(start[1])
    r1, c1 = float(end[0]), float(end[1])
    rows, cols = np.mgrid[0:side, 0:side].astype(np.float64)

    d_r, d_c = r1 - r0, c1 - c0
    length_sq = d_r * d_r + d_c * d_c
    if length_sq < 1e-12:
        distance = np.hypot(rows - r0, cols - c0)
    else:
        # Project every pixel onto the segment and clamp to its extent.
        t = ((rows - r0) * d_r + (cols - c0) * d_c) / length_sq
        t = np.clip(t, 0.0, 1.0)
        nearest_r = r0 + t * d_r
        nearest_c = c0 + t * d_c
        distance = np.hypot(rows - nearest_r, cols - nearest_c)

    stroke = np.clip(1.0 - distance / max(thickness, 1e-6), 0.0, 1.0) * intensity
    return np.maximum(canvas, stroke)


def draw_ellipse(
    canvas: np.ndarray,
    center: Tuple[float, float],
    radii: Tuple[float, float],
    thickness: float = 1.6,
    intensity: float = 1.0,
    filled: bool = False,
) -> np.ndarray:
    """Draw an ellipse outline (or filled ellipse) onto a copy of *canvas*."""
    canvas = _check_canvas(canvas).copy()
    side = canvas.shape[0]
    cr, cc = float(center[0]), float(center[1])
    rr, rc = max(float(radii[0]), 1e-6), max(float(radii[1]), 1e-6)
    rows, cols = np.mgrid[0:side, 0:side].astype(np.float64)

    # Normalised radial coordinate: 1.0 exactly on the ellipse boundary.
    radial = np.sqrt(((rows - cr) / rr) ** 2 + ((cols - cc) / rc) ** 2)
    if filled:
        stroke = np.clip(1.0 - np.maximum(radial - 1.0, 0.0) / 0.15, 0.0, 1.0)
    else:
        mean_radius = 0.5 * (rr + rc)
        boundary_distance = np.abs(radial - 1.0) * mean_radius
        stroke = np.clip(1.0 - boundary_distance / max(thickness, 1e-6), 0.0, 1.0)
    return np.maximum(canvas, stroke * intensity)


def draw_rectangle(
    canvas: np.ndarray,
    top_left: Tuple[float, float],
    bottom_right: Tuple[float, float],
    intensity: float = 1.0,
    filled: bool = True,
) -> np.ndarray:
    """Draw an axis-aligned rectangle onto a copy of *canvas*."""
    canvas = _check_canvas(canvas).copy()
    side = canvas.shape[0]
    r0, c0 = float(top_left[0]), float(top_left[1])
    r1, c1 = float(bottom_right[0]), float(bottom_right[1])
    if r1 < r0 or c1 < c0:
        raise ValueError("bottom_right must be below/right of top_left")
    rows, cols = np.mgrid[0:side, 0:side].astype(np.float64)
    inside = (rows >= r0) & (rows <= r1) & (cols >= c0) & (cols <= c1)
    if filled:
        stroke = inside.astype(np.float64)
    else:
        border = inside & (
            (rows <= r0 + 1.0)
            | (rows >= r1 - 1.0)
            | (cols <= c0 + 1.0)
            | (cols >= c1 - 1.0)
        )
        stroke = border.astype(np.float64)
    return np.maximum(canvas, stroke * intensity)


def gaussian_blur(canvas: np.ndarray, sigma: float = 0.7) -> np.ndarray:
    """Separable Gaussian blur used to soften stroke edges.

    Implemented directly with 1-D convolutions so the library needs nothing
    beyond NumPy.
    """
    canvas = _check_canvas(canvas)
    if sigma <= 0:
        return canvas.copy()
    radius = max(1, int(np.ceil(3.0 * sigma)))
    offsets = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    kernel /= kernel.sum()

    padded = np.pad(canvas, radius, mode="constant")
    blurred_rows = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="same"), 1, padded
    )
    blurred = np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="same"), 0, blurred_rows
    )
    return blurred[radius:-radius, radius:-radius]


def normalize_image(canvas: np.ndarray) -> np.ndarray:
    """Clip to ``[0, 1]`` and rescale so the brightest pixel is 1.0."""
    canvas = _check_canvas(canvas)
    clipped = np.clip(canvas, 0.0, None)
    peak = clipped.max()
    if peak <= 0:
        return np.zeros_like(clipped)
    return np.clip(clipped / peak, 0.0, 1.0)
