"""Procedural garment-like dataset (synthetic Fashion-MNIST substitute).

Fashion-MNIST's ten classes (t-shirt, trouser, pullover, dress, coat,
sandal, shirt, sneaker, bag, ankle boot) are silhouettes with large filled
regions rather than thin pen strokes.  The synthetic substitute mirrors that
visual character: each class is a filled-shape program with per-sample
jitter, making it a harder workload than the digit set — matching the
paper's observation that Fashion-MNIST accuracies sit well below MNIST ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.data.datasets import Dataset
from repro.data.images import (
    IMAGE_SIDE,
    blank_canvas,
    draw_ellipse,
    draw_line,
    draw_rectangle,
    gaussian_blur,
    normalize_image,
)
from repro.utils.rng import RNGLike, resolve_rng

__all__ = ["SyntheticFashionMNIST"]

#: Human-readable class names matching the real Fashion-MNIST ordering.
CLASS_NAMES = (
    "t-shirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle-boot",
)


@dataclass(frozen=True)
class _Jitter:
    """Per-sample geometric perturbation applied to a garment prototype."""

    shift_row: float
    shift_col: float
    scale: float
    fill: float


class SyntheticFashionMNIST:
    """Generator producing garment-silhouette 28x28 images for 10 classes.

    Parameters mirror :class:`repro.data.synthetic_mnist.SyntheticMNIST`.
    """

    #: Number of classes produced by the generator.
    N_CLASSES = 10

    def __init__(
        self,
        side: int = IMAGE_SIDE,
        noise_std: float = 0.04,
        max_shift: float = 1.0,
        scale_jitter: float = 0.05,
        blur_sigma: float = 0.6,
    ) -> None:
        if side < 12:
            raise ValueError(f"side must be at least 12 pixels, got {side}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        if max_shift < 0:
            raise ValueError(f"max_shift must be non-negative, got {max_shift}")
        if not 0 <= scale_jitter < 0.5:
            raise ValueError(f"scale_jitter must lie in [0, 0.5), got {scale_jitter}")
        self.side = int(side)
        self.noise_std = float(noise_std)
        self.max_shift = float(max_shift)
        self.scale_jitter = float(scale_jitter)
        self.blur_sigma = float(blur_sigma)
        self._renderers: Dict[int, Callable[[_Jitter], np.ndarray]] = {
            0: self._tshirt,
            1: self._trouser,
            2: self._pullover,
            3: self._dress,
            4: self._coat,
            5: self._sandal,
            6: self._shirt,
            7: self._sneaker,
            8: self._bag,
            9: self._ankle_boot,
        }

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @staticmethod
    def class_name(label: int) -> str:
        """Return the garment name for a class id."""
        if not 0 <= label < len(CLASS_NAMES):
            raise ValueError(f"unknown fashion class {label}")
        return CLASS_NAMES[label]

    def generate(
        self,
        n_samples: int,
        rng: RNGLike = None,
        classes: List[int] = None,
    ) -> Dataset:
        """Generate *n_samples* garment images with balanced classes."""
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        selected = list(range(self.N_CLASSES)) if classes is None else list(classes)
        if not selected:
            raise ValueError("classes must not be empty")
        for cls in selected:
            if cls not in self._renderers:
                raise ValueError(f"unknown fashion class {cls}")
        generator = resolve_rng(rng)

        labels = np.array(
            [selected[i % len(selected)] for i in range(n_samples)], dtype=np.int64
        )
        generator.shuffle(labels)
        images = np.stack([self.render(int(cls), generator) for cls in labels])
        return Dataset(
            images=images,
            labels=labels,
            name="synthetic-fashion-mnist",
            metadata={
                "generator": "SyntheticFashionMNIST",
                "side": self.side,
                "noise_std": self.noise_std,
                "max_shift": self.max_shift,
                "scale_jitter": self.scale_jitter,
                "classes": selected,
                "class_names": list(CLASS_NAMES),
            },
        )

    def render(self, label: int, rng: RNGLike = None) -> np.ndarray:
        """Render a single jittered, noisy image of garment class *label*."""
        if label not in self._renderers:
            raise ValueError(f"unknown fashion class {label}")
        generator = resolve_rng(rng)
        jitter = _Jitter(
            shift_row=generator.uniform(-self.max_shift, self.max_shift),
            shift_col=generator.uniform(-self.max_shift, self.max_shift),
            scale=1.0 + generator.uniform(-self.scale_jitter, self.scale_jitter),
            fill=generator.uniform(0.7, 1.0),
        )
        canvas = self._renderers[label](jitter)
        canvas = gaussian_blur(canvas, sigma=self.blur_sigma)
        if self.noise_std > 0:
            canvas = canvas + generator.normal(0.0, self.noise_std, size=canvas.shape)
        return normalize_image(canvas)

    def prototype(self, label: int) -> np.ndarray:
        """Render the un-jittered, noise-free prototype of class *label*."""
        if label not in self._renderers:
            raise ValueError(f"unknown fashion class {label}")
        jitter = _Jitter(shift_row=0.0, shift_col=0.0, scale=1.0, fill=0.9)
        canvas = self._renderers[label](jitter)
        return normalize_image(gaussian_blur(canvas, sigma=self.blur_sigma))

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #
    def _point(self, jitter: _Jitter, row: float, col: float) -> tuple:
        center = (self.side - 1) / 2.0
        frame_center = (IMAGE_SIDE - 1) / 2.0
        scale = jitter.scale * self.side / IMAGE_SIDE
        return (
            center + (row - frame_center) * scale + jitter.shift_row,
            center + (col - frame_center) * scale + jitter.shift_col,
        )

    def _rect(self, canvas, jitter, r0, c0, r1, c1, filled=True):
        top = self._point(jitter, r0, c0)
        bottom = self._point(jitter, r1, c1)
        return draw_rectangle(
            canvas, top, bottom, intensity=jitter.fill, filled=filled
        )

    def _ellipse(self, canvas, jitter, cr, cc, rr, rc, filled=True):
        center = self._point(jitter, cr, cc)
        scale = jitter.scale * self.side / IMAGE_SIDE
        return draw_ellipse(
            canvas,
            center,
            (rr * scale, rc * scale),
            intensity=jitter.fill,
            filled=filled,
        )

    def _line(self, canvas, jitter, r0, c0, r1, c1, thickness=2.0):
        return draw_line(
            canvas,
            self._point(jitter, r0, c0),
            self._point(jitter, r1, c1),
            thickness=thickness,
            intensity=jitter.fill,
        )

    # ------------------------------------------------------------------ #
    # garment silhouette programs
    # ------------------------------------------------------------------ #
    def _tshirt(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 9, 9, 22, 18)        # torso
        canvas = self._rect(canvas, jitter, 9, 4, 13, 9)          # left sleeve
        return self._rect(canvas, jitter, 9, 18, 13, 23)          # right sleeve

    def _trouser(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 5, 9, 10, 18)         # waist
        canvas = self._rect(canvas, jitter, 10, 9, 24, 13)        # left leg
        return self._rect(canvas, jitter, 10, 15, 24, 18)         # right leg

    def _pullover(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 8, 8, 23, 19)         # torso (long)
        canvas = self._rect(canvas, jitter, 8, 3, 20, 8)          # left sleeve (long)
        return self._rect(canvas, jitter, 8, 19, 20, 24)          # right sleeve (long)

    def _dress(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 5, 11, 12, 16)        # bodice
        canvas = self._line(canvas, jitter, 12, 11, 24, 7, thickness=1.5)
        canvas = self._line(canvas, jitter, 12, 16, 24, 20, thickness=1.5)
        return self._rect(canvas, jitter, 17, 9, 24, 18)          # skirt

    def _coat(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 6, 7, 25, 20)         # long body
        canvas = self._rect(canvas, jitter, 6, 2, 22, 7)          # left sleeve
        canvas = self._rect(canvas, jitter, 6, 20, 22, 25)        # right sleeve
        return self._line(canvas, jitter, 6, 13.5, 25, 13.5, thickness=0.8)

    def _sandal(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 19, 5, 22, 23)        # sole
        canvas = self._line(canvas, jitter, 19, 8, 12, 14, thickness=1.2)
        return self._line(canvas, jitter, 19, 20, 12, 14, thickness=1.2)

    def _shirt(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 8, 9, 23, 18)         # torso
        canvas = self._rect(canvas, jitter, 8, 4, 16, 9)          # mid sleeve
        canvas = self._rect(canvas, jitter, 8, 18, 16, 23)        # mid sleeve
        canvas = self._line(canvas, jitter, 8, 13.5, 23, 13.5, thickness=0.8)
        return self._line(canvas, jitter, 8, 11, 8, 16, thickness=1.2)  # collar

    def _sneaker(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 17, 4, 22, 24)        # body + sole
        canvas = self._rect(canvas, jitter, 12, 14, 17, 24)       # ankle block
        return self._line(canvas, jitter, 14, 15, 18, 9, thickness=1.0)  # lace

    def _bag(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 12, 6, 24, 22)        # body
        return self._ellipse(canvas, jitter, 10.0, 14.0, 4.0, 5.0, filled=False)

    def _ankle_boot(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._rect(canvas, jitter, 17, 5, 23, 24)        # foot + sole
        canvas = self._rect(canvas, jitter, 7, 14, 17, 22)        # shaft
        return self._line(canvas, jitter, 23, 5, 23, 24, thickness=1.4)  # heel line
