"""Dataset container and workload loading helpers.

A :class:`Dataset` bundles an image tensor, integer labels and descriptive
metadata.  It is deliberately immutable-ish (arrays are stored read-only) so
that fault-injection experiments can share one dataset object across many
trials without accidental cross-contamination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import RNGLike, resolve_rng

__all__ = ["Dataset", "load_workload", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """Immutable image-classification dataset.

    Attributes
    ----------
    images:
        Float array of shape ``(n_samples, height, width)`` with values in
        ``[0, 1]``.
    labels:
        Integer array of shape ``(n_samples,)`` with class ids in
        ``[0, n_classes)``.
    name:
        Human-readable workload name (``"synthetic-mnist"`` etc.).
    metadata:
        Free-form provenance information (generator seed, jitter settings…).
    """

    images: np.ndarray
    labels: np.ndarray
    name: str = "unnamed"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        images = np.asarray(self.images, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64)
        if images.ndim != 3:
            raise ValueError(
                f"images must have shape (n, height, width), got {images.shape}"
            )
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) "
                "must have the same number of samples"
            )
        if images.size and (images.min() < 0.0 or images.max() > 1.0):
            raise ValueError("image values must lie in [0, 1]")
        if labels.size and labels.min() < 0:
            raise ValueError("labels must be non-negative integers")
        images.setflags(write=False)
        labels.setflags(write=False)
        object.__setattr__(self, "images", images)
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.images.shape[0])

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for index in range(len(self)):
            yield self.images[index], int(self.labels[index])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    # ------------------------------------------------------------------ #
    # derived properties
    # ------------------------------------------------------------------ #
    @property
    def image_shape(self) -> Tuple[int, int]:
        """Height and width of a single image."""
        return int(self.images.shape[1]), int(self.images.shape[2])

    @property
    def n_pixels(self) -> int:
        """Number of pixels per image — the SNN input dimension."""
        height, width = self.image_shape
        return height * width

    @property
    def n_classes(self) -> int:
        """Number of distinct classes present in the labels."""
        if self.labels.size == 0:
            return 0
        return int(self.labels.max()) + 1

    def class_counts(self) -> Dict[int, int]:
        """Return a mapping from class id to sample count."""
        unique, counts = np.unique(self.labels, return_counts=True)
        return {int(cls): int(count) for cls, count in zip(unique, counts)}

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def flattened_images(self) -> np.ndarray:
        """Return images flattened to ``(n_samples, n_pixels)``."""
        return self.images.reshape(len(self), -1).copy()

    def subset(self, indices: np.ndarray, name_suffix: str = "subset") -> "Dataset":
        """Return a new dataset restricted to *indices* (order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError("subset indices out of range")
        return Dataset(
            images=self.images[indices].copy(),
            labels=self.labels[indices].copy(),
            name=f"{self.name}/{name_suffix}",
            metadata=dict(self.metadata),
        )

    def take(self, n_samples: int, rng: RNGLike = None) -> "Dataset":
        """Return a random subset of *n_samples* items (without replacement)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {n_samples}")
        if n_samples > len(self):
            raise ValueError(
                f"cannot take {n_samples} samples from a dataset of {len(self)}"
            )
        generator = resolve_rng(rng)
        indices = generator.choice(len(self), size=n_samples, replace=False)
        return self.subset(np.sort(indices), name_suffix=f"take{n_samples}")

    def shuffled(self, rng: RNGLike = None) -> "Dataset":
        """Return a new dataset with samples in random order."""
        generator = resolve_rng(rng)
        order = generator.permutation(len(self))
        return self.subset(order, name_suffix="shuffled")


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    rng: RNGLike = None,
    stratified: bool = True,
) -> Tuple[Dataset, Dataset]:
    """Split *dataset* into train and test subsets.

    Parameters
    ----------
    dataset:
        The dataset to split.
    test_fraction:
        Fraction of samples placed in the test set, in ``(0, 1)``.
    rng:
        Seed or generator controlling the split.
    stratified:
        If true (default), the split keeps per-class proportions so each
        class appears in both subsets whenever it has at least two samples.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    if len(dataset) < 2:
        raise ValueError("dataset must contain at least two samples to split")
    generator = resolve_rng(rng)

    if stratified:
        test_indices = []
        for cls in np.unique(dataset.labels):
            cls_indices = np.flatnonzero(dataset.labels == cls)
            cls_indices = generator.permutation(cls_indices)
            n_test = max(1, int(round(test_fraction * cls_indices.size)))
            n_test = min(n_test, cls_indices.size - 1) if cls_indices.size > 1 else 0
            test_indices.append(cls_indices[:n_test])
        test_idx = (
            np.sort(np.concatenate(test_indices))
            if test_indices
            else np.array([], dtype=np.int64)
        )
    else:
        order = generator.permutation(len(dataset))
        n_test = max(1, int(round(test_fraction * len(dataset))))
        test_idx = np.sort(order[:n_test])

    mask = np.zeros(len(dataset), dtype=bool)
    mask[test_idx] = True
    train_idx = np.flatnonzero(~mask)
    return (
        dataset.subset(train_idx, name_suffix="train"),
        dataset.subset(test_idx, name_suffix="test"),
    )


def load_workload(
    name: str,
    n_samples: int = 200,
    rng: RNGLike = None,
    **generator_kwargs: object,
) -> Dataset:
    """Generate one of the named synthetic workloads.

    Parameters
    ----------
    name:
        ``"mnist"`` / ``"synthetic-mnist"`` or ``"fashion"`` /
        ``"fashion-mnist"`` / ``"synthetic-fashion-mnist"``.
    n_samples:
        Number of images to generate.
    rng:
        Seed or generator for reproducible generation.
    generator_kwargs:
        Extra keyword arguments forwarded to the generator constructor.
    """
    # Imported here to avoid a circular import at package-initialisation time.
    from repro.data.synthetic_fashion import SyntheticFashionMNIST
    from repro.data.synthetic_mnist import SyntheticMNIST

    key = name.strip().lower()
    if key in {"mnist", "synthetic-mnist", "digits"}:
        generator = SyntheticMNIST(**generator_kwargs)
    elif key in {"fashion", "fashion-mnist", "synthetic-fashion-mnist"}:
        generator = SyntheticFashionMNIST(**generator_kwargs)
    else:
        raise ValueError(
            "unknown workload name "
            f"{name!r}; expected 'mnist' or 'fashion-mnist' (synthetic variants)"
        )
    return generator.generate(n_samples=n_samples, rng=rng)
