"""Synthetic workload generators for the SoftSNN evaluation.

The paper evaluates on MNIST and Fashion-MNIST.  Those datasets cannot be
downloaded in this offline environment, so this subpackage provides
procedurally generated substitutes with the same interface characteristics
that matter to the fault-tolerance study:

* 28x28 grayscale images in ``[0, 1]``,
* ten visually distinct classes,
* class-consistent structure plus per-sample jitter/noise so the STDP
  network must genuinely generalise,
* deterministic generation from a seed so every experiment is reproducible.

The substitution rationale is recorded in ``DESIGN.md``: the paper itself
notes (Section 3.1, footnote 3) that any workload with the same spike-train
time range and coding is representative for the fault-tolerance analysis,
because STDP confines the weights to a known positive range regardless of
the image content.

Public API
----------
:class:`~repro.data.datasets.Dataset`
    Immutable container bundling images, labels and metadata.
:class:`~repro.data.synthetic_mnist.SyntheticMNIST`
    Digit-like ten-class generator (stroke-drawn digits 0-9).
:class:`~repro.data.synthetic_fashion.SyntheticFashionMNIST`
    Garment-like ten-class generator (silhouette shapes).
:func:`~repro.data.datasets.train_test_split`
    Deterministic stratified split helper.
"""

from repro.data.datasets import Dataset, load_workload, train_test_split
from repro.data.images import (
    IMAGE_SIDE,
    draw_ellipse,
    draw_line,
    draw_rectangle,
    gaussian_blur,
    normalize_image,
)
from repro.data.synthetic_fashion import SyntheticFashionMNIST
from repro.data.synthetic_mnist import SyntheticMNIST

__all__ = [
    "Dataset",
    "IMAGE_SIDE",
    "SyntheticFashionMNIST",
    "SyntheticMNIST",
    "draw_ellipse",
    "draw_line",
    "draw_rectangle",
    "gaussian_blur",
    "load_workload",
    "normalize_image",
    "train_test_split",
]
