"""Procedural digit-like dataset (synthetic MNIST substitute).

Each of the ten classes is a hand-designed stroke program for the digit
glyphs 0-9 rendered with the primitives in :mod:`repro.data.images`.  Every
generated sample applies per-sample geometric jitter (translation, scale,
stroke thickness) and additive pixel noise, so a classifier — here the
unsupervised STDP network — has to learn class structure rather than
memorise a single prototype.

The generator is deterministic given a seed, needs no files and no network
access, and produces 28x28 float images in ``[0, 1]`` exactly like MNIST
after the usual ``/255`` normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.data.datasets import Dataset
from repro.data.images import (
    IMAGE_SIDE,
    blank_canvas,
    draw_ellipse,
    draw_line,
    gaussian_blur,
    normalize_image,
)
from repro.utils.rng import RNGLike, resolve_rng

__all__ = ["SyntheticMNIST"]


@dataclass(frozen=True)
class _Jitter:
    """Per-sample geometric perturbation applied to a digit prototype."""

    shift_row: float
    shift_col: float
    scale: float
    thickness: float


class SyntheticMNIST:
    """Generator producing digit-like 28x28 grayscale images for 10 classes.

    Parameters
    ----------
    side:
        Canvas side length (default 28 to match MNIST).
    noise_std:
        Standard deviation of additive Gaussian pixel noise.
    max_shift:
        Maximum absolute translation jitter, in pixels.
    scale_jitter:
        Maximum relative scale jitter (0.1 means ±10 %).
    blur_sigma:
        Gaussian blur applied after drawing, softening stroke edges.

    Examples
    --------
    >>> dataset = SyntheticMNIST().generate(n_samples=20, rng=0)
    >>> len(dataset), dataset.n_classes
    (20, 10)
    """

    #: Number of classes produced by the generator (digits 0-9).
    N_CLASSES = 10

    def __init__(
        self,
        side: int = IMAGE_SIDE,
        noise_std: float = 0.03,
        max_shift: float = 1.0,
        scale_jitter: float = 0.05,
        blur_sigma: float = 0.7,
    ) -> None:
        if side < 12:
            raise ValueError(f"side must be at least 12 pixels, got {side}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        if max_shift < 0:
            raise ValueError(f"max_shift must be non-negative, got {max_shift}")
        if not 0 <= scale_jitter < 0.5:
            raise ValueError(f"scale_jitter must lie in [0, 0.5), got {scale_jitter}")
        self.side = int(side)
        self.noise_std = float(noise_std)
        self.max_shift = float(max_shift)
        self.scale_jitter = float(scale_jitter)
        self.blur_sigma = float(blur_sigma)
        self._renderers: Dict[int, Callable[[_Jitter], np.ndarray]] = {
            0: self._digit_0,
            1: self._digit_1,
            2: self._digit_2,
            3: self._digit_3,
            4: self._digit_4,
            5: self._digit_5,
            6: self._digit_6,
            7: self._digit_7,
            8: self._digit_8,
            9: self._digit_9,
        }

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(
        self,
        n_samples: int,
        rng: RNGLike = None,
        classes: List[int] = None,
    ) -> Dataset:
        """Generate *n_samples* images with (approximately) balanced classes.

        Parameters
        ----------
        n_samples:
            Total number of images.
        rng:
            Seed or generator controlling jitter, noise and class order.
        classes:
            Optional subset of digit classes to draw from (default: all ten).
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        selected = list(range(self.N_CLASSES)) if classes is None else list(classes)
        if not selected:
            raise ValueError("classes must not be empty")
        for cls in selected:
            if cls not in self._renderers:
                raise ValueError(f"unknown digit class {cls}")
        generator = resolve_rng(rng)

        labels = np.array(
            [selected[i % len(selected)] for i in range(n_samples)], dtype=np.int64
        )
        generator.shuffle(labels)
        images = np.stack([self.render(int(cls), generator) for cls in labels])
        return Dataset(
            images=images,
            labels=labels,
            name="synthetic-mnist",
            metadata={
                "generator": "SyntheticMNIST",
                "side": self.side,
                "noise_std": self.noise_std,
                "max_shift": self.max_shift,
                "scale_jitter": self.scale_jitter,
                "classes": selected,
            },
        )

    def render(self, digit: int, rng: RNGLike = None) -> np.ndarray:
        """Render a single jittered, noisy image of *digit*."""
        if digit not in self._renderers:
            raise ValueError(f"unknown digit class {digit}")
        generator = resolve_rng(rng)
        jitter = self._sample_jitter(generator)
        canvas = self._renderers[digit](jitter)
        canvas = gaussian_blur(canvas, sigma=self.blur_sigma)
        if self.noise_std > 0:
            canvas = canvas + generator.normal(0.0, self.noise_std, size=canvas.shape)
        return normalize_image(canvas)

    def prototype(self, digit: int) -> np.ndarray:
        """Render the un-jittered, noise-free prototype of *digit*."""
        if digit not in self._renderers:
            raise ValueError(f"unknown digit class {digit}")
        jitter = _Jitter(shift_row=0.0, shift_col=0.0, scale=1.0, thickness=1.6)
        canvas = self._renderers[digit](jitter)
        return normalize_image(gaussian_blur(canvas, sigma=self.blur_sigma))

    # ------------------------------------------------------------------ #
    # jitter helpers
    # ------------------------------------------------------------------ #
    def _sample_jitter(self, generator: np.random.Generator) -> _Jitter:
        return _Jitter(
            shift_row=generator.uniform(-self.max_shift, self.max_shift),
            shift_col=generator.uniform(-self.max_shift, self.max_shift),
            scale=1.0 + generator.uniform(-self.scale_jitter, self.scale_jitter),
            thickness=generator.uniform(1.3, 2.0),
        )

    def _point(self, jitter: _Jitter, row: float, col: float) -> tuple:
        """Map a prototype coordinate (in a 28-unit frame) onto the canvas."""
        center = (self.side - 1) / 2.0
        frame_center = (IMAGE_SIDE - 1) / 2.0
        scale = jitter.scale * self.side / IMAGE_SIDE
        return (
            center + (row - frame_center) * scale + jitter.shift_row,
            center + (col - frame_center) * scale + jitter.shift_col,
        )

    def _line(self, canvas, jitter, r0, c0, r1, c1):
        return draw_line(
            canvas,
            self._point(jitter, r0, c0),
            self._point(jitter, r1, c1),
            thickness=jitter.thickness,
        )

    def _ellipse(self, canvas, jitter, cr, cc, rr, rc, filled=False):
        center = self._point(jitter, cr, cc)
        scale = jitter.scale * self.side / IMAGE_SIDE
        return draw_ellipse(
            canvas,
            center,
            (rr * scale, rc * scale),
            thickness=jitter.thickness,
            filled=filled,
        )

    # ------------------------------------------------------------------ #
    # digit stroke programs (prototype frame is 28x28, row/col coordinates)
    # ------------------------------------------------------------------ #
    def _digit_0(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        return self._ellipse(canvas, jitter, 13.5, 13.5, 8.5, 6.0)

    def _digit_1(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._line(canvas, jitter, 5, 14, 22, 14)
        canvas = self._line(canvas, jitter, 5, 14, 9, 10)
        return self._line(canvas, jitter, 22, 10, 22, 18)

    def _digit_2(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._ellipse(canvas, jitter, 9.5, 13.5, 4.5, 5.5)
        # Remove the lower-left part of the ellipse by overdrawing the body.
        canvas = self._line(canvas, jitter, 13, 18, 22, 9)
        return self._line(canvas, jitter, 22, 9, 22, 19)

    def _digit_3(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._ellipse(canvas, jitter, 9.5, 13.5, 4.0, 5.0)
        canvas = self._ellipse(canvas, jitter, 18.0, 13.5, 4.5, 5.5)
        return canvas

    def _digit_4(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._line(canvas, jitter, 5, 16, 22, 16)
        canvas = self._line(canvas, jitter, 5, 16, 16, 8)
        return self._line(canvas, jitter, 16, 8, 16, 21)

    def _digit_5(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._line(canvas, jitter, 6, 9, 6, 19)
        canvas = self._line(canvas, jitter, 6, 9, 13, 9)
        canvas = self._ellipse(canvas, jitter, 17.0, 14.0, 5.0, 5.5)
        return canvas

    def _digit_6(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._line(canvas, jitter, 6, 15, 14, 9)
        return self._ellipse(canvas, jitter, 17.0, 13.5, 5.0, 5.0)

    def _digit_7(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._line(canvas, jitter, 6, 8, 6, 20)
        return self._line(canvas, jitter, 6, 20, 22, 11)

    def _digit_8(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._ellipse(canvas, jitter, 9.0, 13.5, 4.0, 4.5)
        return self._ellipse(canvas, jitter, 18.0, 13.5, 5.0, 5.5)

    def _digit_9(self, jitter: _Jitter) -> np.ndarray:
        canvas = blank_canvas(self.side)
        canvas = self._ellipse(canvas, jitter, 10.0, 13.5, 5.0, 5.0)
        return self._line(canvas, jitter, 13, 18, 22, 13)
