"""Command-line front end of the campaign orchestration subsystem.

Runs the paper's evaluation campaigns — Fig. 3a (weight-register faults),
Fig. 10a (neuron faults), Fig. 13 (full compute engine, all mitigation
techniques) — end-to-end at laptop-friendly scaled-down sizes: spec →
cells → (optionally parallel) execution → resumable JSON-lines result
store → rendered accuracy tables.

Usage::

    python -m repro.campaign fig13 --workers auto
    python -m repro.campaign fig3a --store results/fig3a.jsonl
    python -m repro.campaign smoke --rates 1e-3 1e-1 --trials 1
    softsnn-campaign fig13 --sizes 48 72 --trials 3     # installed entry point

Re-running a command against an existing store resumes it: cells already
recorded are skipped, only the remainder is computed.  ``--no-resume``
truncates the store and starts over.  A JSON summary (with raw per-trial
accuracies) is written next to the store after every successful run.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

import repro
from repro.eval.campaign import (
    CampaignSpec,
    TechniqueSpec,
    resolve_worker_count,
    run_campaign,
)
from repro.eval.experiment import ExperimentConfig
from repro.eval.sweep import PAPER_FAULT_RATES
from repro.snn.encoding import available_encodings
from repro.snn.models import available_models
from repro.hardware.enhancements import MitigationKind
from repro.utils.logging import configure_logging
from repro.utils.serialization import save_json

__all__ = ["build_parser", "build_spec", "main"]

#: Scaled-down stand-ins for the paper's network sizes (see EXPERIMENTS.md).
SCALED_NETWORK_SIZES: Dict[int, int] = {
    400: 48,
    900: 72,
    1600: 96,
    2500: 120,
    3600: 144,
}
_PAPER_SIZE_BY_PROXY = {proxy: paper for paper, proxy in SCALED_NETWORK_SIZES.items()}

ALL_TECHNIQUES = tuple(kind.value for kind in MitigationKind.all_kinds())

#: Preset campaign definitions.  Every field can be overridden from flags.
PRESETS: Dict[str, Dict[str, object]] = {
    "smoke": {
        "help": "tiny CI campaign: 2 rates x 1 trial x 2 techniques",
        "workloads": ["mnist"],
        "sizes": [16],
        "rates": [1e-3, 1e-1],
        "trials": 1,
        "techniques": ["no_mitigation", "bnp3"],
        "inject_synapses": True,
        "inject_neurons": True,
        "n_train": 48,
        "n_test": 16,
        "timesteps": 50,
        "epochs": 1,
    },
    "fig3a": {
        "help": "Fig. 3a — weight-register faults, two fault maps (trials)",
        "workloads": ["mnist"],
        "sizes": [SCALED_NETWORK_SIZES[400]],
        "rates": list(PAPER_FAULT_RATES),
        "trials": 2,
        "techniques": ["no_mitigation"],
        "inject_synapses": True,
        "inject_neurons": False,
        "n_train": 200,
        "n_test": 40,
        "timesteps": 100,
        "epochs": 2,
    },
    "fig10a": {
        "help": "Fig. 10a — neuron-operation faults only",
        "workloads": ["mnist"],
        "sizes": [SCALED_NETWORK_SIZES[400]],
        "rates": [1e-2, 1e-1, 0.5, 1.0],
        "trials": 1,
        "techniques": ["no_mitigation"],
        "inject_synapses": False,
        "inject_neurons": True,
        "n_train": 200,
        "n_test": 40,
        "timesteps": 100,
        "epochs": 2,
    },
    "fig13": {
        "help": "Fig. 13 — all techniques, full compute engine, both workloads",
        "workloads": ["mnist", "fashion-mnist"],
        "sizes": [SCALED_NETWORK_SIZES[400], SCALED_NETWORK_SIZES[900]],
        "rates": list(PAPER_FAULT_RATES),
        "trials": 1,
        "techniques": list(ALL_TECHNIQUES),
        "inject_synapses": True,
        "inject_neurons": True,
        "n_train": 200,
        "n_test": 40,
        "timesteps": 100,
        "epochs": 2,
    },
}


def _parse_workers(value: str) -> Optional[int]:
    """``--workers`` values: a positive integer, or ``auto`` (= CPU count)."""
    if value.strip().lower() == "auto":
        return None
    try:
        workers = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from error
    if workers <= 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be positive, got {workers}"
        )
    return workers


def build_parser() -> argparse.ArgumentParser:
    """The campaign CLI argument parser."""
    preset_lines = "\n".join(
        f"  {name:8s} {preset['help']}" for name, preset in PRESETS.items()
    )
    parser = argparse.ArgumentParser(
        prog="softsnn-campaign",
        description=__doc__,
        epilog=f"presets:\n{preset_lines}",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    parser.add_argument(
        "preset",
        choices=sorted(PRESETS),
        help="campaign preset to run (see the preset table below)",
    )
    parser.add_argument(
        "--workloads", nargs="+", help="override the preset's workloads"
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        help="override the preset's network sizes (excitatory neurons)",
    )
    parser.add_argument(
        "--rates", nargs="+", type=float, help="override the swept fault rates"
    )
    parser.add_argument(
        "--trials", type=int, help="independent fault maps per fault rate"
    )
    parser.add_argument(
        "--techniques",
        nargs="+",
        choices=list(ALL_TECHNIQUES),
        help="override the compared mitigation techniques",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        choices=available_models(),
        help=(
            "neuron models to sweep (grid axis; default: the registry's "
            "default LIF model)"
        ),
    )
    parser.add_argument(
        "--encodings",
        nargs="+",
        choices=available_encodings(),
        help=(
            "input encodings to sweep (grid axis; default: Poisson rate "
            "encoding)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        metavar="N|auto",
        help=(
            "worker processes (1 = serial in-process execution, "
            "'auto' = one warm pool worker per CPU)"
        ),
    )
    parser.add_argument(
        "--store",
        type=Path,
        help="JSON-lines result store (default: campaign-results/<preset>.jsonl)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="keep results in memory only (disables resume)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="truncate an existing store instead of resuming it",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign root seed")
    parser.add_argument(
        "--runner-seed",
        type=int,
        default=2022,
        help="root seed of data generation and model training",
    )
    parser.add_argument("--n-train", type=int, help="training images per experiment")
    parser.add_argument("--n-test", type=int, help="test images per experiment")
    parser.add_argument("--timesteps", type=int, help="presentation timesteps")
    parser.add_argument("--epochs", type=int, help="training epochs")
    parser.add_argument(
        "--batch-size", type=int, help="inference batch size per accuracy measurement"
    )
    parser.add_argument(
        "--sequential-training",
        action="store_true",
        help=(
            "train clean models through the per-timestep reference loop "
            "instead of the (bit-identical, faster) vectorized engine"
        ),
    )
    parser.add_argument(
        "--no-map-parallel",
        action="store_true",
        help=(
            "execute one cell at a time instead of fusing each "
            "(experiment, fault rate) coordinate's trials and techniques "
            "into one map-parallel engine pass (results are bit-identical "
            "either way)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress logging"
    )
    parser.add_argument(
        "--run-report",
        type=Path,
        metavar="PATH",
        help=(
            "write an end-of-run observability report (per-cell timings, "
            "worker utilization, metrics snapshot) as JSON to PATH"
        ),
    )
    return parser


def build_spec(args: argparse.Namespace) -> CampaignSpec:
    """Materialise the campaign spec from a preset plus flag overrides."""
    preset = PRESETS[args.preset]

    def pick(flag: Optional[object], key: str) -> object:
        return flag if flag is not None else preset[key]

    base = ExperimentConfig(
        n_train=int(pick(args.n_train, "n_train")),
        n_test=int(pick(args.n_test, "n_test")),
        timesteps=int(pick(args.timesteps, "timesteps")),
        epochs=int(pick(args.epochs, "epochs")),
        **(
            {"eval_batch_size": int(args.batch_size)}
            if args.batch_size is not None
            else {}
        ),
    )
    sizes = [int(size) for size in pick(args.sizes, "sizes")]
    return CampaignSpec.grid(
        name=args.preset,
        workloads=list(pick(args.workloads, "workloads")),
        network_sizes=sizes,
        fault_rates=[float(rate) for rate in pick(args.rates, "rates")],
        technique_kinds=[
            MitigationKind(value) for value in pick(args.techniques, "techniques")
        ],
        base=base,
        paper_sizes=_PAPER_SIZE_BY_PROXY,
        models=args.models,
        encodings=args.encodings,
        n_trials=int(pick(args.trials, "trials")),
        inject_synapses=bool(preset["inject_synapses"]),
        inject_neurons=bool(preset["inject_neurons"]),
        seed=int(args.seed),
        runner_seed=int(args.runner_seed),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(level=logging.WARNING if args.quiet else logging.INFO)

    spec = build_spec(args)
    store_path: Optional[Path]
    if args.no_store:
        store_path = None
    else:
        store_path = (
            args.store
            if args.store is not None
            else Path("campaign-results") / f"{args.preset}.jsonl"
        )

    n_workers = resolve_worker_count(args.workers)
    result = run_campaign(
        spec,
        store_path=store_path,
        n_workers=n_workers,
        resume=not args.no_resume,
        vectorized_training=not args.sequential_training,
        map_parallel=not args.no_map_parallel,
    )

    print(result.render_tables())
    print()
    print(
        f"campaign {spec.name}: {result.n_cells} cells "
        f"({result.n_executed} executed, {result.n_skipped} resumed from store) "
        f"in {result.duration_seconds:.1f}s with {n_workers} worker(s)"
    )
    if store_path is not None:
        summary_path = store_path.with_suffix(".summary.json")
        save_json(result.summary(), summary_path)
        print(f"store:   {store_path}")
        print(f"summary: {summary_path}")
    if args.run_report is not None:
        save_json(result.run_report(), args.run_report)
        print(f"report:  {args.run_report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
