"""Application of fault maps to concrete networks.

The :class:`FaultInjector` is the bridge between the abstract fault model
and the simulator substrate: given a trained network (built from a
:class:`~repro.snn.training.TrainedModel`) and a :class:`FaultMap`, it
corrupts the network's weight registers and installs the faulty neuron
operation status, returning a report of what was done.  The corrupted
network is then evaluated exactly like a healthy one — which is the point:
soft errors change the hardware state, not the evaluation procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.models import ComputeEngineFaultConfig
from repro.faults.neuron_faults import NeuronFaultInjector
from repro.snn.network import DiehlCookNetwork
from repro.utils.rng import RNGLike

__all__ = ["FaultInjectionReport", "FaultInjector"]


@dataclass
class FaultInjectionReport:
    """What a fault-injection pass did to a network.

    Attributes
    ----------
    fault_map:
        The fault map that was applied.
    weight_change_summary:
        Statistics of how the register bit flips changed the weight values
        (see :meth:`repro.faults.bitflip.WeightBitFlipModel.weight_change_summary`).
    n_faulty_neurons:
        Number of neurons with at least one corrupted operation.
    """

    fault_map: FaultMap
    weight_change_summary: Dict[str, object]
    n_faulty_neurons: int

    @property
    def n_synapse_faults(self) -> int:
        """Number of weight-register bit flips applied."""
        return self.fault_map.n_synapse_faults

    @property
    def n_neuron_faults(self) -> int:
        """Number of faulty neuron operations applied."""
        return self.fault_map.n_neuron_faults


class FaultInjector:
    """Applies soft errors to a :class:`~repro.snn.network.DiehlCookNetwork`.

    Parameters
    ----------
    network:
        The target network.  Its synapse-crossbar shape and register format
        define the potential fault locations.
    """

    def __init__(self, network: DiehlCookNetwork) -> None:
        self.network = network
        self.map_generator = FaultMapGenerator(
            crossbar_shape=network.synapses.shape,
            quantizer=network.synapses.quantizer,
        )

    # ------------------------------------------------------------------ #
    def draw_fault_map(
        self, config: ComputeEngineFaultConfig, rng: RNGLike = None
    ) -> FaultMap:
        """Draw a fault map for this network without applying it."""
        return self.map_generator.generate(config, rng=rng)

    def apply_fault_map(self, fault_map: FaultMap) -> FaultInjectionReport:
        """Corrupt the network according to *fault_map* (in place)."""
        if fault_map.crossbar_shape != self.network.synapses.shape:
            raise ValueError(
                f"fault map was drawn for crossbar {fault_map.crossbar_shape} but the "
                f"network has {self.network.synapses.shape}"
            )
        clean_registers = self.network.synapses.registers

        if fault_map.n_synapse_faults:
            self.network.synapses.apply_bit_flips(
                fault_map.synapse_flat_indices, fault_map.synapse_bit_positions
            )
        faulty_registers = self.network.synapses.registers
        summary = self.map_generator._bitflip_model.weight_change_summary(
            clean_registers, faulty_registers
        )

        neuron_injector = NeuronFaultInjector(n_neurons=self.network.n_neurons)
        outcome = neuron_injector.outcome_from_faults(fault_map.neuron_faults)
        self.network.set_neuron_fault_status(outcome.status)

        return FaultInjectionReport(
            fault_map=fault_map,
            weight_change_summary=summary,
            n_faulty_neurons=int(outcome.faulty_neuron_indices().size),
        )

    def inject(
        self,
        config: ComputeEngineFaultConfig,
        rng: RNGLike = None,
        fault_map: Optional[FaultMap] = None,
    ) -> FaultInjectionReport:
        """Draw (or replay) a fault map and apply it to the network."""
        if fault_map is None:
            fault_map = self.draw_fault_map(config, rng=rng)
        return self.apply_fault_map(fault_map)

    # ------------------------------------------------------------------ #
    def clear_neuron_faults(self) -> None:
        """Restore healthy neuron operations (register flips are not undone)."""
        self.network.clear_neuron_faults()

    def restore_registers(self, clean_registers: np.ndarray) -> None:
        """Overwrite the crossbar registers with a clean snapshot."""
        self.network.synapses.set_registers(np.asarray(clean_registers))
