"""Bit-flip fault model for the weight registers of the synapse crossbar.

Section 2.2 (synapse part): "A fault in a synapse hardware only affects a
single weight bit in form of a bit flip.  This faulty bit persists until it
is overwritten with a new bit value."

The model treats every *bit* of every weight register as a potential fault
location.  Given a fault rate it draws the set of struck bits and produces
the flipped register contents; it can also report summary statistics
(how many weights increased / decreased, by how much) which the fault
tolerance analysis of Section 3.1 uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.snn.quantization import WeightQuantizer
from repro.utils.bits import flip_bits_in_array
from repro.utils.rng import RNGLike, resolve_rng
from repro.utils.validation import check_probability

__all__ = ["WeightBitFlipModel", "BitFlipOutcome"]


@dataclass(frozen=True)
class BitFlipOutcome:
    """Result of one bit-flip injection pass over a register array.

    Attributes
    ----------
    faulty_registers:
        Register array after the bit flips, same shape as the input.
    flat_indices:
        Flat index of the register struck by each fault.
    bit_positions:
        Bit position struck by each fault (0 = least-significant bit).
    n_faults:
        Number of injected bit flips.
    """

    faulty_registers: np.ndarray
    flat_indices: np.ndarray
    bit_positions: np.ndarray

    @property
    def n_faults(self) -> int:
        """Number of injected bit flips."""
        return int(self.flat_indices.size)


class WeightBitFlipModel:
    """Random single-bit-flip injector for weight registers.

    Parameters
    ----------
    quantizer:
        Register format of the target crossbar (defines the bit width and
        the weight value of every bit position).
    per_bit:
        If True (default), the fault rate is interpreted per *bit* — every
        bit of every register is an independent potential fault location,
        matching "each weight memory cell" in Fig. 7 (a memory cell stores
        one bit).  If False, the rate is interpreted per *register* and a
        struck register gets exactly one uniformly chosen flipped bit.
    """

    def __init__(self, quantizer: WeightQuantizer, per_bit: bool = True) -> None:
        if not isinstance(quantizer, WeightQuantizer):
            raise TypeError(
                f"quantizer must be a WeightQuantizer, got {type(quantizer).__name__}"
            )
        self.quantizer = quantizer
        self.per_bit = bool(per_bit)

    # ------------------------------------------------------------------ #
    def draw_fault_locations(
        self,
        n_registers: int,
        fault_rate: float,
        rng: RNGLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw struck (register, bit) pairs for the given fault rate.

        Returns
        -------
        tuple
            ``(flat_indices, bit_positions)`` arrays of equal length.
        """
        check_probability(fault_rate, "fault_rate")
        if n_registers <= 0:
            raise ValueError(f"n_registers must be positive, got {n_registers}")
        generator = resolve_rng(rng)
        bits = self.quantizer.bits

        if fault_rate == 0.0:
            empty = np.array([], dtype=np.int64)
            return empty, empty.copy()

        if self.per_bit:
            n_locations = n_registers * bits
            struck = np.flatnonzero(generator.random(n_locations) < fault_rate)
            flat_indices = struck // bits
            bit_positions = struck % bits
        else:
            struck = np.flatnonzero(generator.random(n_registers) < fault_rate)
            flat_indices = struck
            bit_positions = generator.integers(0, bits, size=struck.size)
        return flat_indices.astype(np.int64), bit_positions.astype(np.int64)

    def inject(
        self,
        registers: np.ndarray,
        fault_rate: float,
        rng: RNGLike = None,
        flat_indices: Optional[np.ndarray] = None,
        bit_positions: Optional[np.ndarray] = None,
    ) -> BitFlipOutcome:
        """Flip bits of a copy of *registers* according to the fault rate.

        Either draw fresh fault locations (default) or replay a previously
        drawn fault map by passing *flat_indices* / *bit_positions*
        explicitly — that is how the experiment harness keeps the same fault
        map across mitigation techniques so comparisons are paired.

        ``fault_rate`` is validated on *both* paths: a replayed map carries
        the rate it was drawn at, and a nonsensical stored rate must not
        round-trip unchecked just because the locations are explicit.
        """
        check_probability(fault_rate, "fault_rate")
        registers = np.asarray(registers)
        if not np.issubdtype(registers.dtype, np.integer):
            raise TypeError("registers must be an integer array")
        if (flat_indices is None) != (bit_positions is None):
            raise ValueError(
                "flat_indices and bit_positions must be provided together"
            )
        if flat_indices is None:
            flat_indices, bit_positions = self.draw_fault_locations(
                registers.size, fault_rate, rng=rng
            )
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        bit_positions = np.asarray(bit_positions, dtype=np.int64)

        faulty = flip_bits_in_array(
            registers.astype(np.int64),
            flat_indices,
            bit_positions,
            bit_width=self.quantizer.bits,
        ).astype(registers.dtype)
        return BitFlipOutcome(
            faulty_registers=faulty,
            flat_indices=flat_indices,
            bit_positions=bit_positions,
        )

    # ------------------------------------------------------------------ #
    # analysis helpers (Section 3.1, Fig. 9)
    # ------------------------------------------------------------------ #
    def weight_change_summary(
        self, clean_registers: np.ndarray, faulty_registers: np.ndarray
    ) -> dict:
        """Summarise how the bit flips changed the weight values.

        Returns a dictionary with the number of increased / decreased /
        unchanged weights, the number of faulty weights exceeding the clean
        maximum, and the new maximum weight — the quantities behind the
        observations of Fig. 9.
        """
        clean_registers = np.asarray(clean_registers)
        faulty_registers = np.asarray(faulty_registers)
        if clean_registers.shape != faulty_registers.shape:
            raise ValueError("register arrays must have the same shape")
        clean = self.quantizer.dequantize(clean_registers)
        faulty = self.quantizer.dequantize(faulty_registers)
        clean_max = float(clean.max()) if clean.size else 0.0
        return {
            "n_increased": int((faulty > clean).sum()),
            "n_decreased": int((faulty < clean).sum()),
            "n_unchanged": int((faulty == clean).sum()),
            "n_above_clean_max": int((faulty > clean_max).sum()),
            "clean_max_weight": clean_max,
            "faulty_max_weight": float(faulty.max()) if faulty.size else 0.0,
            "mean_absolute_change": float(np.abs(faulty - clean).mean())
            if clean.size
            else 0.0,
        }
