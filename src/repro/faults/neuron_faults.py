"""Faulty neuron-operation model (Section 2.2, neuron part).

Soft errors in the neuron hardware corrupt one of the four LIF operations of
a neuron.  The corrupted behaviour persists until the neuron's parameters
are replaced.  This module draws which neurons are struck and which of their
operations fail, and converts the result into the
:class:`~repro.snn.neuron.NeuronOperationStatus` object the simulator
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.models import NeuronFaultType
from repro.snn.neuron import NeuronOperationStatus
from repro.utils.rng import RNGLike, resolve_rng
from repro.utils.validation import check_probability

__all__ = ["NeuronFaultInjector", "NeuronFaultOutcome"]

_STATUS_FIELD_BY_TYPE = {
    NeuronFaultType.VMEM_INCREASE: "vmem_increase_ok",
    NeuronFaultType.VMEM_LEAK: "vmem_leak_ok",
    NeuronFaultType.VMEM_RESET: "vmem_reset_ok",
    NeuronFaultType.SPIKE_GENERATION: "spike_generation_ok",
}


@dataclass
class NeuronFaultOutcome:
    """Result of one neuron-fault injection pass.

    Attributes
    ----------
    status:
        Per-neuron operation health ready to install on a neuron group.
    faults:
        List of ``(neuron_index, fault_type)`` pairs that were injected.
    """

    status: NeuronOperationStatus
    faults: List[Tuple[int, NeuronFaultType]] = field(default_factory=list)

    @property
    def n_faults(self) -> int:
        """Number of injected faulty operations."""
        return len(self.faults)

    def count_by_type(self) -> Dict[NeuronFaultType, int]:
        """Number of injected faults per fault type."""
        counts = {fault_type: 0 for fault_type in NeuronFaultType.all_types()}
        for _, fault_type in self.faults:
            counts[fault_type] += 1
        return counts

    def faulty_neuron_indices(self) -> np.ndarray:
        """Sorted indices of neurons with at least one faulty operation."""
        return np.unique(np.array([index for index, _ in self.faults], dtype=np.int64))


class NeuronFaultInjector:
    """Random injector of faulty neuron operations.

    Two interpretations of the fault rate are supported, selected by
    *per_operation*:

    * ``per_operation=True`` (default, matching Fig. 7 where every neuron
      *operation* is a potential fault location): each of the four
      operations of each neuron is struck independently with probability
      equal to the fault rate.
    * ``per_operation=False``: each *neuron* is struck with probability
      equal to the fault rate, and a struck neuron gets one faulty
      operation chosen uniformly at random (or the restricted type).
    """

    def __init__(self, n_neurons: int, per_operation: bool = True) -> None:
        if n_neurons <= 0:
            raise ValueError(f"n_neurons must be positive, got {n_neurons}")
        self.n_neurons = int(n_neurons)
        self.per_operation = bool(per_operation)

    # ------------------------------------------------------------------ #
    def inject(
        self,
        fault_rate: float,
        rng: RNGLike = None,
        restrict_type: Optional[NeuronFaultType] = None,
    ) -> NeuronFaultOutcome:
        """Draw faulty neuron operations for the given fault rate.

        Parameters
        ----------
        fault_rate:
            Probability of a potential fault location being struck.
        rng:
            Seed or generator controlling the draw.
        restrict_type:
            When set, every struck neuron gets this specific fault type
            (Fig. 10a studies each type in isolation).
        """
        check_probability(fault_rate, "fault_rate")
        generator = resolve_rng(rng)
        status = NeuronOperationStatus.healthy(self.n_neurons)
        faults: List[Tuple[int, NeuronFaultType]] = []

        if fault_rate == 0.0:
            return NeuronFaultOutcome(status=status, faults=faults)

        if restrict_type is not None and not isinstance(
            restrict_type, NeuronFaultType
        ):
            raise TypeError(
                f"restrict_type must be a NeuronFaultType or None, got "
                f"{type(restrict_type).__name__}"
            )

        if self.per_operation and restrict_type is None:
            # Every (neuron, operation) pair is an independent location.
            fault_types = NeuronFaultType.all_types()
            strikes = generator.random((self.n_neurons, len(fault_types))) < fault_rate
            for neuron_index, operation_index in zip(*np.nonzero(strikes)):
                fault_type = fault_types[int(operation_index)]
                self._apply(status, int(neuron_index), fault_type)
                faults.append((int(neuron_index), fault_type))
        else:
            # Per-neuron interpretation (also used whenever the fault type is
            # restricted, e.g. the Fig. 10a per-type sweeps).
            struck = np.flatnonzero(generator.random(self.n_neurons) < fault_rate)
            for neuron_index in struck:
                if restrict_type is not None:
                    fault_type = restrict_type
                else:
                    fault_type = generator.choice(NeuronFaultType.all_types())
                self._apply(status, int(neuron_index), fault_type)
                faults.append((int(neuron_index), fault_type))

        return NeuronFaultOutcome(status=status, faults=faults)

    def outcome_from_faults(
        self, faults: List[Tuple[int, NeuronFaultType]]
    ) -> NeuronFaultOutcome:
        """Rebuild an outcome from an explicit fault list (fault-map replay)."""
        status = NeuronOperationStatus.healthy(self.n_neurons)
        normalized: List[Tuple[int, NeuronFaultType]] = []
        for neuron_index, fault_type in faults:
            if not 0 <= int(neuron_index) < self.n_neurons:
                raise ValueError(
                    f"neuron index {neuron_index} out of range "
                    f"[0, {self.n_neurons})"
                )
            if not isinstance(fault_type, NeuronFaultType):
                raise TypeError(
                    "fault list entries must pair an index with a NeuronFaultType"
                )
            self._apply(status, int(neuron_index), fault_type)
            normalized.append((int(neuron_index), fault_type))
        return NeuronFaultOutcome(status=status, faults=normalized)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _apply(
        status: NeuronOperationStatus, neuron_index: int, fault_type: NeuronFaultType
    ) -> None:
        getattr(status, _STATUS_FIELD_BY_TYPE[fault_type])[neuron_index] = False
