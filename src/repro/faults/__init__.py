"""Soft-error (transient fault) modelling for the SNN compute engine.

This subpackage implements Section 2.2 of the paper — the transient fault
model for the two parts of the compute engine — and the fault generation and
distribution procedure of Fig. 7:

* **Synapse part** (:mod:`repro.faults.bitflip`): a soft error in a synapse
  flips exactly one bit of its 8-bit weight register; the flipped bit
  persists until the register is overwritten.
* **Neuron part** (:mod:`repro.faults.neuron_faults`): a soft error in a
  neuron corrupts one of its four operations — membrane-potential increase,
  leak, reset, or spike generation — and the faulty behaviour persists until
  the neuron's parameters are reloaded.
* **Fault maps** (:mod:`repro.faults.fault_map`): every weight-register cell
  and every neuron operation is a potential fault location; a fault map is a
  random draw of struck locations for a given fault rate.
* **Injection** (:mod:`repro.faults.injector`): applies a fault map to a
  concrete network (corrupting its registers and neuron operation status),
  producing the faulty network that the inference engine then evaluates.
"""

from repro.faults.bitflip import WeightBitFlipModel
from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.injector import FaultInjectionReport, FaultInjector
from repro.faults.models import (
    ComputeEngineFaultConfig,
    FaultLocationKind,
    NeuronFaultType,
)
from repro.faults.neuron_faults import NeuronFaultInjector

__all__ = [
    "ComputeEngineFaultConfig",
    "FaultInjectionReport",
    "FaultInjector",
    "FaultLocationKind",
    "FaultMap",
    "FaultMapGenerator",
    "NeuronFaultInjector",
    "NeuronFaultType",
    "WeightBitFlipModel",
]
