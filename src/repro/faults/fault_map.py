"""Fault maps: concrete random placements of soft errors on a compute engine.

Fig. 7 of the paper: the potential fault locations of the compute engine are
every weight-register cell and every neuron operation; soft errors are
generated for a given fault rate and distributed randomly across those
locations, producing a *fault map*.  Different fault maps at the same fault
rate lead to different accuracy (Fig. 3a), so fault maps are first-class,
reproducible objects here: they can be drawn once and replayed across all
mitigation techniques, giving paired comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.bitflip import WeightBitFlipModel
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.faults.neuron_faults import NeuronFaultInjector
from repro.snn.quantization import WeightQuantizer
from repro.utils.rng import RNGLike, resolve_rng

__all__ = ["FaultMap", "FaultMapGenerator"]


@dataclass
class FaultMap:
    """A concrete draw of soft-error locations for one compute engine.

    Attributes
    ----------
    crossbar_shape:
        ``(n_inputs, n_neurons)`` of the target synapse crossbar.
    synapse_flat_indices:
        Flat register indices struck by bit flips.
    synapse_bit_positions:
        Struck bit position for each register index.
    neuron_faults:
        ``(neuron_index, NeuronFaultType)`` pairs of faulty operations.
    fault_rate:
        The fault rate the map was drawn at (for bookkeeping).
    bit_width:
        Register bit width the map was drawn for.  When set, every struck
        bit position must lie in ``[0, bit_width)`` — replaying a position
        at or beyond the quantizer's width would silently corrupt register
        codes beyond what the hardware can hold.  Negative positions are
        rejected unconditionally.
    """

    crossbar_shape: Tuple[int, int]
    synapse_flat_indices: np.ndarray = field(
        default_factory=lambda: np.array([], dtype=np.int64)
    )
    synapse_bit_positions: np.ndarray = field(
        default_factory=lambda: np.array([], dtype=np.int64)
    )
    neuron_faults: List[Tuple[int, NeuronFaultType]] = field(default_factory=list)
    fault_rate: float = 0.0
    bit_width: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.crossbar_shape) != 2 or any(s <= 0 for s in self.crossbar_shape):
            raise ValueError(
                f"crossbar_shape must be a pair of positive ints, got {self.crossbar_shape}"
            )
        self.crossbar_shape = (int(self.crossbar_shape[0]), int(self.crossbar_shape[1]))
        self.synapse_flat_indices = np.asarray(
            self.synapse_flat_indices, dtype=np.int64
        )
        self.synapse_bit_positions = np.asarray(
            self.synapse_bit_positions, dtype=np.int64
        )
        if self.synapse_flat_indices.shape != self.synapse_bit_positions.shape:
            raise ValueError(
                "synapse_flat_indices and synapse_bit_positions must have equal length"
            )
        n_registers = self.crossbar_shape[0] * self.crossbar_shape[1]
        if self.synapse_flat_indices.size and (
            self.synapse_flat_indices.min() < 0
            or self.synapse_flat_indices.max() >= n_registers
        ):
            raise ValueError("synapse_flat_indices out of range for the crossbar")
        if self.bit_width is not None:
            self.bit_width = int(self.bit_width)
            if self.bit_width <= 0:
                raise ValueError(
                    f"bit_width must be positive, got {self.bit_width}"
                )
        if self.synapse_bit_positions.size:
            if self.synapse_bit_positions.min() < 0:
                raise ValueError(
                    "synapse_bit_positions must be non-negative, got "
                    f"{int(self.synapse_bit_positions.min())}"
                )
            if (
                self.bit_width is not None
                and self.synapse_bit_positions.max() >= self.bit_width
            ):
                raise ValueError(
                    f"synapse_bit_positions out of range for {self.bit_width}-bit "
                    f"registers (max struck position "
                    f"{int(self.synapse_bit_positions.max())})"
                )
        n_neurons = self.crossbar_shape[1]
        for neuron_index, fault_type in self.neuron_faults:
            if not 0 <= int(neuron_index) < n_neurons:
                raise ValueError(
                    f"neuron index {neuron_index} out of range [0, {n_neurons})"
                )
            if not isinstance(fault_type, NeuronFaultType):
                raise TypeError(
                    "neuron_faults entries must pair an index with a NeuronFaultType"
                )

    # ------------------------------------------------------------------ #
    @property
    def n_synapse_faults(self) -> int:
        """Number of weight-register bit flips in the map."""
        return int(self.synapse_flat_indices.size)

    @property
    def n_neuron_faults(self) -> int:
        """Number of faulty neuron operations in the map."""
        return len(self.neuron_faults)

    @property
    def n_faults(self) -> int:
        """Total number of soft errors in the map."""
        return self.n_synapse_faults + self.n_neuron_faults

    @property
    def is_empty(self) -> bool:
        """True when the map contains no faults at all."""
        return self.n_faults == 0

    def neuron_fault_counts(self) -> Dict[NeuronFaultType, int]:
        """Number of faulty neuron operations per fault type."""
        counts = {fault_type: 0 for fault_type in NeuronFaultType.all_types()}
        for _, fault_type in self.neuron_faults:
            counts[fault_type] += 1
        return counts

    def faulty_neuron_indices(self) -> np.ndarray:
        """Sorted indices of neurons with at least one faulty operation."""
        if not self.neuron_faults:
            return np.array([], dtype=np.int64)
        return np.unique(
            np.array([index for index, _ in self.neuron_faults], dtype=np.int64)
        )

    def summary(self) -> Dict[str, object]:
        """Compact, JSON-friendly description of the fault map."""
        return {
            "crossbar_shape": list(self.crossbar_shape),
            "fault_rate": self.fault_rate,
            "n_synapse_faults": self.n_synapse_faults,
            "n_neuron_faults": self.n_neuron_faults,
            "neuron_fault_counts": {
                fault_type.value: count
                for fault_type, count in self.neuron_fault_counts().items()
            },
        }


class FaultMapGenerator:
    """Draws :class:`FaultMap` objects for a compute engine (Fig. 7 procedure).

    Parameters
    ----------
    crossbar_shape:
        ``(n_inputs, n_neurons)`` of the modelled synapse crossbar.
    quantizer:
        Register format of the crossbar (bit width of each register).
    synapse_faults_per_bit:
        Interpretation of the fault rate for the synapse part; see
        :class:`~repro.faults.bitflip.WeightBitFlipModel`.
    neuron_faults_per_operation:
        Interpretation of the fault rate for the neuron part; see
        :class:`~repro.faults.neuron_faults.NeuronFaultInjector`.
    """

    def __init__(
        self,
        crossbar_shape: Tuple[int, int],
        quantizer: Optional[WeightQuantizer] = None,
        synapse_faults_per_bit: bool = True,
        neuron_faults_per_operation: bool = True,
    ) -> None:
        if len(crossbar_shape) != 2 or any(s <= 0 for s in crossbar_shape):
            raise ValueError(
                f"crossbar_shape must be a pair of positive ints, got {crossbar_shape}"
            )
        self.crossbar_shape = (int(crossbar_shape[0]), int(crossbar_shape[1]))
        self.quantizer = quantizer if quantizer is not None else WeightQuantizer()
        self._bitflip_model = WeightBitFlipModel(
            self.quantizer, per_bit=synapse_faults_per_bit
        )
        self._neuron_injector = NeuronFaultInjector(
            n_neurons=self.crossbar_shape[1],
            per_operation=neuron_faults_per_operation,
        )

    # ------------------------------------------------------------------ #
    @property
    def n_registers(self) -> int:
        """Number of weight registers in the crossbar."""
        return self.crossbar_shape[0] * self.crossbar_shape[1]

    def generate(
        self, config: ComputeEngineFaultConfig, rng: RNGLike = None
    ) -> FaultMap:
        """Draw one fault map for the given injection configuration."""
        generator = resolve_rng(rng)

        flat_indices = np.array([], dtype=np.int64)
        bit_positions = np.array([], dtype=np.int64)
        if config.inject_synapses:
            flat_indices, bit_positions = self._bitflip_model.draw_fault_locations(
                self.n_registers, config.fault_rate, rng=generator
            )

        neuron_faults: List[Tuple[int, NeuronFaultType]] = []
        if config.inject_neurons:
            outcome = self._neuron_injector.inject(
                config.fault_rate,
                rng=generator,
                restrict_type=config.restrict_neuron_fault_type,
            )
            neuron_faults = outcome.faults

        return FaultMap(
            crossbar_shape=self.crossbar_shape,
            synapse_flat_indices=flat_indices,
            synapse_bit_positions=bit_positions,
            neuron_faults=neuron_faults,
            fault_rate=config.fault_rate,
            bit_width=self.quantizer.bits,
        )

    def generate_many(
        self,
        config: ComputeEngineFaultConfig,
        count: int,
        rng: RNGLike = None,
    ) -> List[FaultMap]:
        """Draw several independent fault maps (e.g. Fig. 3a's fault maps 1 and 2).

        For the default fault-location model (per-bit synapse strikes,
        per-operation neuron strikes, no restricted fault type) all maps
        are drawn from **one** bulk RNG pass: each map's uniforms occupy one
        contiguous slice of a single ``generator.random(...)`` call, which
        consumes exactly the same stream values, in the same order, as the
        per-map draws of sequential :meth:`generate` calls — so the maps
        are bit-identical to the pre-vectorization loop.  Configurations
        with data-dependent draw counts fall back to that loop.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        generator = resolve_rng(rng)
        if not self._bulk_drawable(config):
            return [self.generate(config, rng=generator) for _ in range(count)]
        return self._generate_many_bulk(config, count, generator)

    # ------------------------------------------------------------------ #
    # bulk drawing internals
    # ------------------------------------------------------------------ #
    def _bulk_drawable(self, config: ComputeEngineFaultConfig) -> bool:
        """True when every map consumes a fixed, data-independent uniform count."""
        if config.fault_rate == 0.0:
            # The scalar models return empty draws without consuming RNG.
            return False
        if config.inject_synapses and not self._bitflip_model.per_bit:
            # Per-register mode draws extra bit positions per struck register.
            return False
        if config.inject_neurons and (
            not self._neuron_injector.per_operation
            or config.restrict_neuron_fault_type is not None
        ):
            # Per-neuron mode draws one fault-type choice per struck neuron.
            return False
        return True

    def _generate_many_bulk(
        self,
        config: ComputeEngineFaultConfig,
        count: int,
        generator: np.random.Generator,
    ) -> List[FaultMap]:
        """One-RNG-pass variant of :meth:`generate_many` (fixed draw counts)."""
        bits = self.quantizer.bits
        n_neurons = self.crossbar_shape[1]
        fault_types = NeuronFaultType.all_types()
        synapse_block = self.n_registers * bits if config.inject_synapses else 0
        neuron_block = n_neurons * len(fault_types) if config.inject_neurons else 0
        per_map = synapse_block + neuron_block

        # One bulk draw; row ``i`` holds exactly the uniforms map ``i``'s
        # sequential generate() call would have consumed, in order.
        uniforms = generator.random(count * per_map).reshape(count, per_map)
        rate = config.fault_rate

        maps: List[FaultMap] = []
        empty = np.array([], dtype=np.int64)
        for index in range(count):
            row = uniforms[index]
            flat_indices, bit_positions = empty, empty
            if synapse_block:
                struck = np.flatnonzero(row[:synapse_block] < rate)
                flat_indices = (struck // bits).astype(np.int64)
                bit_positions = (struck % bits).astype(np.int64)
            neuron_faults: List[Tuple[int, NeuronFaultType]] = []
            if neuron_block:
                strikes = (
                    row[synapse_block:].reshape(n_neurons, len(fault_types)) < rate
                )
                neuron_faults = [
                    (int(neuron_index), fault_types[int(operation_index)])
                    for neuron_index, operation_index in zip(*np.nonzero(strikes))
                ]
            maps.append(
                FaultMap(
                    crossbar_shape=self.crossbar_shape,
                    synapse_flat_indices=flat_indices,
                    synapse_bit_positions=bit_positions,
                    neuron_faults=neuron_faults,
                    fault_rate=rate,
                    bit_width=bits,
                )
            )
        return maps
