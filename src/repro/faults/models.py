"""Shared fault-model vocabulary: fault kinds, neuron fault types, configuration.

The paper's compute engine has two kinds of potential fault locations
(Fig. 7): the weight-register cells of the synapse crossbar and the
operations of the neuron hardware.  This module defines the enumerations
and the configuration object every other fault module shares.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.utils.validation import check_probability

__all__ = ["FaultLocationKind", "NeuronFaultType", "ComputeEngineFaultConfig"]


class FaultLocationKind(enum.Enum):
    """Kind of hardware location a soft error can strike."""

    #: A single bit of one weight register in the synapse crossbar.
    WEIGHT_REGISTER_BIT = "weight_register_bit"
    #: One of the four operations of one neuron's hardware.
    NEURON_OPERATION = "neuron_operation"


class NeuronFaultType(enum.Enum):
    """The four faulty neuron behaviours of Section 2.2 / Fig. 6.

    Each value names the operation whose hardware the soft error corrupted;
    the resulting behaviour is documented per member.
    """

    #: The neuron can no longer increase its membrane potential, so it never
    #: reaches the threshold and produces no spikes.
    VMEM_INCREASE = "vmem_increase"
    #: The neuron can no longer leak (decrease) its membrane potential.
    VMEM_LEAK = "vmem_leak"
    #: The neuron can no longer reset its membrane potential after a spike,
    #: so it stays above threshold and produces bursts of spikes.  The
    #: paper's analysis identifies this as the catastrophic fault type.
    VMEM_RESET = "vmem_reset"
    #: The spike-generation logic is stuck, so the neuron emits no spikes
    #: even when its membrane potential crosses the threshold.
    SPIKE_GENERATION = "spike_generation"

    @classmethod
    def all_types(cls) -> Tuple["NeuronFaultType", ...]:
        """All four fault types, in the order the paper lists them."""
        return (cls.VMEM_INCREASE, cls.VMEM_LEAK, cls.VMEM_RESET, cls.SPIKE_GENERATION)


@dataclass(frozen=True)
class ComputeEngineFaultConfig:
    """What gets injected, and at which rate, for one experiment.

    The paper sweeps a single *fault rate* applied to all potential fault
    locations of the compute engine; individual experiments restrict the
    injection to only the synapse part (Fig. 3a, Fig. 9), only the neuron
    part (Fig. 10a) or both (Fig. 10b, Fig. 13).

    Attributes
    ----------
    fault_rate:
        Probability that any given potential fault location is struck.
    inject_synapses:
        Whether weight-register bits are potential fault locations.
    inject_neurons:
        Whether neuron operations are potential fault locations.
    restrict_neuron_fault_type:
        When set, every struck neuron receives this specific faulty
        operation instead of a uniformly random one — used for the
        per-fault-type sensitivity study of Fig. 10a.
    """

    fault_rate: float
    inject_synapses: bool = True
    inject_neurons: bool = True
    restrict_neuron_fault_type: NeuronFaultType = None

    def __post_init__(self) -> None:
        check_probability(self.fault_rate, "fault_rate")
        if not self.inject_synapses and not self.inject_neurons:
            raise ValueError(
                "at least one of inject_synapses / inject_neurons must be True"
            )
        if self.restrict_neuron_fault_type is not None and not isinstance(
            self.restrict_neuron_fault_type, NeuronFaultType
        ):
            raise TypeError(
                "restrict_neuron_fault_type must be a NeuronFaultType or None, got "
                f"{type(self.restrict_neuron_fault_type).__name__}"
            )

    # ------------------------------------------------------------------ #
    # convenience constructors matching the paper's experiments
    # ------------------------------------------------------------------ #
    @classmethod
    def synapses_only(cls, fault_rate: float) -> "ComputeEngineFaultConfig":
        """Faults only in the weight registers (Fig. 3a / Fig. 9 setting)."""
        return cls(fault_rate=fault_rate, inject_synapses=True, inject_neurons=False)

    @classmethod
    def neurons_only(
        cls,
        fault_rate: float,
        fault_type: NeuronFaultType = None,
    ) -> "ComputeEngineFaultConfig":
        """Faults only in the neuron operations (Fig. 10a setting)."""
        return cls(
            fault_rate=fault_rate,
            inject_synapses=False,
            inject_neurons=True,
            restrict_neuron_fault_type=fault_type,
        )

    @classmethod
    def full_compute_engine(cls, fault_rate: float) -> "ComputeEngineFaultConfig":
        """Faults in both synapses and neurons (Fig. 10b / Fig. 13 setting)."""
        return cls(fault_rate=fault_rate, inject_synapses=True, inject_neurons=True)
