"""Accelerator-level roll-up of the area / latency / energy models.

:class:`AcceleratorModel` bundles the three cost models behind one façade so
the evaluation harness and the benches can ask a single object for "the
latency, energy and area of technique X on network size N" — the exact
queries behind Fig. 3(b) and Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.area import AreaModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.energy import ActivityProfile, EnergyModel
from repro.hardware.enhancements import HardwareCostParameters, MitigationKind
from repro.hardware.latency import LatencyModel

__all__ = ["AcceleratorCostReport", "AcceleratorModel"]


@dataclass(frozen=True)
class AcceleratorCostReport:
    """Latency, energy and area of one technique on one engine configuration.

    Attributes
    ----------
    kind:
        Mitigation technique the report describes.
    latency_ns:
        End-to-end latency of one inference in nanoseconds.
    energy:
        Energy of one inference, in the model's switching-energy units.
    area:
        Compute-engine area in gate equivalents.
    """

    kind: MitigationKind
    latency_ns: float
    energy: float
    area: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        return {
            "technique": self.kind.value,
            "latency_ns": self.latency_ns,
            "energy": self.energy,
            "area": self.area,
        }


class AcceleratorModel:
    """Unified cost model of the SNN accelerator compute engine.

    Parameters
    ----------
    config:
        Compute-engine configuration (physical crossbar plus mapped network).
    params:
        Shared per-component cost constants.
    """

    def __init__(
        self,
        config: Optional[ComputeEngineConfig] = None,
        params: Optional[HardwareCostParameters] = None,
    ) -> None:
        self.config = config if config is not None else ComputeEngineConfig()
        self.params = params if params is not None else HardwareCostParameters()
        self.area_model = AreaModel(self.config, self.params)
        self.latency_model = LatencyModel(self.config, self.params)
        self.energy_model = EnergyModel(self.config, self.params)

    # ------------------------------------------------------------------ #
    def report(
        self,
        kind: MitigationKind,
        activity: Optional[ActivityProfile] = None,
    ) -> AcceleratorCostReport:
        """Cost report for one technique on this engine configuration."""
        return AcceleratorCostReport(
            kind=kind,
            latency_ns=self.latency_model.latency_ns(kind),
            energy=self.energy_model.energy(kind, activity=activity),
            area=self.area_model.total_area(kind),
        )

    def report_all(
        self, activity: Optional[ActivityProfile] = None
    ) -> Dict[MitigationKind, AcceleratorCostReport]:
        """Cost reports for every technique, keyed by kind."""
        return {
            kind: self.report(kind, activity=activity)
            for kind in MitigationKind.all_kinds()
        }

    def for_network_size(self, n_neurons: int) -> "AcceleratorModel":
        """Return a model of the same engine mapped to a different network size."""
        return AcceleratorModel(
            config=self.config.with_network_size(n_neurons), params=self.params
        )

    # ------------------------------------------------------------------ #
    # normalised tables (paper-style figures)
    # ------------------------------------------------------------------ #
    def normalized_latency(
        self, reference: Optional["AcceleratorModel"] = None
    ) -> Dict[MitigationKind, float]:
        """Per-technique latency normalised to a reference engine (Fig. 14a)."""
        reference_model = reference.latency_model if reference is not None else None
        return self.latency_model.normalized_table(reference=reference_model)

    def normalized_energy(
        self,
        activity: Optional[ActivityProfile] = None,
        reference: Optional["AcceleratorModel"] = None,
        reference_activity: Optional[ActivityProfile] = None,
    ) -> Dict[MitigationKind, float]:
        """Per-technique energy normalised to a reference engine (Fig. 14b)."""
        reference_model = reference.energy_model if reference is not None else None
        return self.energy_model.normalized_table(
            activity=activity,
            reference=reference_model,
            reference_activity=reference_activity,
        )

    def normalized_area(self) -> Dict[MitigationKind, float]:
        """Per-technique area normalised to the unmodified engine (Fig. 14c)."""
        return self.area_model.overhead_table()
