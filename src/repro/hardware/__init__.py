"""Analytical hardware model of the SNN accelerator compute engine.

The paper evaluates its hardware overheads (latency, energy, area — Fig. 14)
by synthesising the compute engine of Fig. 5 with Cadence Genus on a 65 nm
library.  Synthesis tooling is not available in this environment, so this
subpackage provides a component-level analytical model instead:

* every synapse is an 8-bit weight register plus an 8-bit adder,
* every neuron is the small set of adders/comparators/multiplexers of the
  LIF datapath,
* the Bound-and-Protect enhancements add the comparator/multiplexer per
  synapse, the AND+mux per neuron and a few radiation-hardened global
  registers exactly as described in Section 3.3 / Fig. 11,
* large networks are executed by time-multiplexing the physical 256x256
  crossbar, which is what makes latency grow with ``ceil(n_neurons / 256)``
  across the paper's N400…N3600 sweep.

The per-component gate-equivalent and energy constants are calibrated so the
*normalised* results match the paper's reported ratios (re-execution ≈3x
latency and energy; BnP ≤1.06x latency and ≤1.6x energy; 14 % / 18 % area
overhead); the DESIGN.md substitution table records this calibration.
"""

from repro.hardware.accelerator import AcceleratorCostReport, AcceleratorModel
from repro.hardware.area import AreaModel
from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.energy import ActivityProfile, EnergyModel
from repro.hardware.enhancements import (
    BnPHardwareEnhancement,
    HardwareCostParameters,
    MitigationKind,
)
from repro.hardware.latency import LatencyModel

__all__ = [
    "AcceleratorCostReport",
    "AcceleratorModel",
    "ActivityProfile",
    "AreaModel",
    "BnPHardwareEnhancement",
    "ComputeEngineConfig",
    "EnergyModel",
    "HardwareCostParameters",
    "LatencyModel",
    "MitigationKind",
]
