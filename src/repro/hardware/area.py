"""Area model of the compute engine, with and without BnP enhancements.

Reproduces Fig. 14(c): the area of the BnP-enhanced compute engine relative
to the unmodified engine.  The crossbar dominates the total area, so the
per-synapse additions (comparator + mask/mux) set the overhead, while the
global hardened registers and the per-neuron protection logic are almost
free — exactly the argument the paper makes for why the technique is
"lightweight".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import (
    BnPHardwareEnhancement,
    HardwareCostParameters,
    MitigationKind,
)

__all__ = ["AreaBreakdown", "AreaModel"]


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area of one compute-engine configuration (gate equivalents).

    Attributes
    ----------
    synapse_array:
        Total area of the baseline synapse circuits (registers + adders).
    neuron_array:
        Total area of the baseline neuron datapaths.
    synapse_enhancements:
        Area of the per-synapse BnP additions (after radiation hardening).
    neuron_enhancements:
        Area of the per-neuron protection logic (after hardening).
    global_registers:
        Area of the radiation-hardened global threshold/substitute registers.
    """

    synapse_array: float
    neuron_array: float
    synapse_enhancements: float = 0.0
    neuron_enhancements: float = 0.0
    global_registers: float = 0.0

    @property
    def total(self) -> float:
        """Total compute-engine area in gate equivalents."""
        return (
            self.synapse_array
            + self.neuron_array
            + self.synapse_enhancements
            + self.neuron_enhancements
            + self.global_registers
        )

    @property
    def enhancement_total(self) -> float:
        """Area added by the mitigation hardware alone."""
        return (
            self.synapse_enhancements
            + self.neuron_enhancements
            + self.global_registers
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation of the breakdown."""
        return {
            "synapse_array": self.synapse_array,
            "neuron_array": self.neuron_array,
            "synapse_enhancements": self.synapse_enhancements,
            "neuron_enhancements": self.neuron_enhancements,
            "global_registers": self.global_registers,
            "total": self.total,
        }


class AreaModel:
    """Component-level area estimator for the compute engine.

    Parameters
    ----------
    config:
        Physical compute-engine configuration (the area depends only on the
        physical crossbar, not on the logical network mapped onto it).
    params:
        Per-component cost constants.
    """

    def __init__(
        self,
        config: Optional[ComputeEngineConfig] = None,
        params: Optional[HardwareCostParameters] = None,
    ) -> None:
        self.config = config if config is not None else ComputeEngineConfig()
        self.params = params if params is not None else HardwareCostParameters()

    # ------------------------------------------------------------------ #
    # component areas
    # ------------------------------------------------------------------ #
    def baseline_synapse_area(self) -> float:
        """Area of one unmodified synapse (weight register + adder)."""
        bits = self.config.weight_bits
        return bits * (
            self.params.register_area_per_bit + self.params.adder_area_per_bit
        )

    def synapse_enhancement_area(self, kind: MitigationKind) -> float:
        """Hardened area added inside one synapse by technique *kind*."""
        enhancement = BnPHardwareEnhancement.for_kind(kind)
        if not enhancement.adds_synapse_logic:
            return 0.0
        bits = self.config.weight_bits
        raw = 0.0
        if enhancement.comparator_per_synapse:
            raw += bits * self.params.comparator_area_per_bit
        if enhancement.zero_mask_per_synapse:
            raw += bits * self.params.zero_mask_area_per_bit
        if enhancement.mux_per_synapse:
            raw += bits * self.params.mux_area_per_bit
        return raw * self.params.hardening_area_factor

    def neuron_enhancement_area(self, kind: MitigationKind) -> float:
        """Hardened area added inside one neuron by technique *kind*."""
        enhancement = BnPHardwareEnhancement.for_kind(kind)
        if not enhancement.neuron_protection:
            return 0.0
        return self.params.neuron_protection_area * self.params.hardening_area_factor

    def global_register_area(self, kind: MitigationKind) -> float:
        """Area of the hardened global registers added by technique *kind*."""
        enhancement = BnPHardwareEnhancement.for_kind(kind)
        per_register = (
            self.config.weight_bits
            * self.params.register_area_per_bit
            * self.params.hardening_area_factor
        )
        return enhancement.global_hardened_registers * per_register

    # ------------------------------------------------------------------ #
    # engine-level roll-up
    # ------------------------------------------------------------------ #
    def breakdown(
        self, kind: MitigationKind = MitigationKind.NO_MITIGATION
    ) -> AreaBreakdown:
        """Full area breakdown of the engine with technique *kind* deployed."""
        n_synapses = self.config.physical_synapses
        n_neurons = self.config.physical_neurons
        return AreaBreakdown(
            synapse_array=n_synapses * self.baseline_synapse_area(),
            neuron_array=n_neurons * self.params.neuron_logic_area,
            synapse_enhancements=n_synapses * self.synapse_enhancement_area(kind),
            neuron_enhancements=n_neurons * self.neuron_enhancement_area(kind),
            global_registers=self.global_register_area(kind),
        )

    def total_area(self, kind: MitigationKind = MitigationKind.NO_MITIGATION) -> float:
        """Total engine area in gate equivalents for technique *kind*."""
        return self.breakdown(kind).total

    def area_overhead(self, kind: MitigationKind) -> float:
        """Area of *kind* normalised to the unmodified engine (Fig. 14c)."""
        baseline = self.total_area(MitigationKind.NO_MITIGATION)
        return self.total_area(kind) / baseline

    def overhead_table(self) -> Dict[MitigationKind, float]:
        """Normalised area of every technique, as plotted in Fig. 14(c)."""
        return {kind: self.area_overhead(kind) for kind in MitigationKind.all_kinds()}
