"""The Bound-and-Protect hardware enhancements and their cost parameters.

Section 3.3 / Fig. 11 of the paper describes the self-healing hardware added
to the baseline compute engine:

* **BnP1 synapse** — one radiation-hardened global register holding the
  weight threshold ``wgh_th``, plus a hardened comparator and a zero-masking
  multiplexer inside every synapse.
* **BnP2/BnP3 synapse** — two hardened global registers (``wgh_th`` and the
  substitute value ``wgh_def``), plus a hardened comparator and a full 2:1
  multiplexer inside every synapse.
* **Enhanced neuron** — an AND gate and a multiplexer that gate spike
  generation off when the ``Vmem >= Vth`` comparator stays asserted for two
  or more cycles (faulty reset detection).

This module captures those additions as explicit component inventories, and
defines the per-component cost constants (gate equivalents, switching
energy, delay) shared by the area / latency / energy models.  The constants
are calibrated so the normalised overheads land on the paper's reported
figures: +14 % area for BnP1, +18 % for BnP2/3, ≤1.06x latency and ≤1.6x
energy for the BnP techniques.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["MitigationKind", "HardwareCostParameters", "BnPHardwareEnhancement"]


class MitigationKind(enum.Enum):
    """Identity of a mitigation technique, as used by the hardware models."""

    NO_MITIGATION = "no_mitigation"
    RE_EXECUTION = "re_execution"
    BNP1 = "bnp1"
    BNP2 = "bnp2"
    BNP3 = "bnp3"

    @property
    def is_bnp(self) -> bool:
        """True for the three Bound-and-Protect variants."""
        return self in (MitigationKind.BNP1, MitigationKind.BNP2, MitigationKind.BNP3)

    @classmethod
    def all_kinds(cls) -> tuple:
        """All techniques in the order the paper's figures list them."""
        return (
            cls.NO_MITIGATION,
            cls.RE_EXECUTION,
            cls.BNP1,
            cls.BNP2,
            cls.BNP3,
        )


@dataclass(frozen=True)
class HardwareCostParameters:
    """Per-component cost constants of the analytical hardware model.

    Areas are expressed in gate equivalents (GE), energies in arbitrary
    switching-energy units per activation, and delays in nanoseconds.  Only
    *ratios* of these constants are meaningful for the reproduced figures;
    the calibration targets are recorded in the class docstring of
    :mod:`repro.hardware`.

    Attributes
    ----------
    register_area_per_bit:
        Area of one register bit (flip-flop).
    adder_area_per_bit:
        Area of one ripple-carry adder bit.
    comparator_area_per_bit:
        Area of one magnitude-comparator bit (BnP synapse addition).
    zero_mask_area_per_bit:
        Area of the AND-based zero-masking "mux" used by BnP1.
    mux_area_per_bit:
        Area of a full 2:1 multiplexer bit used by BnP2/BnP3.
    neuron_logic_area:
        Area of one baseline LIF neuron datapath (adders, comparator,
        reset/leak muxes, spike logic).
    neuron_protection_area:
        Area of the enhanced neuron's AND gate + output mux + monitor
        flip-flop.
    hardening_area_factor:
        Multiplicative area penalty of radiation hardening applied to the
        *added* components (the paper hardens only the new logic).
    register_energy_per_access:
        Switching energy of reading one weight register.
    adder_energy_per_access:
        Switching energy of one synapse adder operation.
    comparator_energy_per_access:
        Switching energy of the added threshold comparison.
    zero_mask_energy_per_access:
        Switching energy of the BnP1 zero mask.
    mux_energy_per_access:
        Switching energy of the BnP2/3 substitute mux (including the
        broadcast of the hardened ``wgh_def`` value).
    neuron_energy_per_update:
        Energy of one baseline neuron membrane update.
    neuron_protection_energy:
        Energy of the protection logic per neuron update.
    synapse_delay_ns / comparator_delay_ns / mux_delay_ns:
        Combinational delays used by the latency model's critical-path
        estimate.
    """

    register_area_per_bit: float = 6.0
    adder_area_per_bit: float = 6.0
    comparator_area_per_bit: float = 0.75
    zero_mask_area_per_bit: float = 0.375
    mux_area_per_bit: float = 0.70
    neuron_logic_area: float = 260.0
    neuron_protection_area: float = 14.0
    hardening_area_factor: float = 1.5
    register_energy_per_access: float = 1.0
    adder_energy_per_access: float = 1.0
    comparator_energy_per_access: float = 0.35
    zero_mask_energy_per_access: float = 0.25
    mux_energy_per_access: float = 0.85
    neuron_energy_per_update: float = 4.0
    neuron_protection_energy: float = 0.4
    synapse_delay_ns: float = 2.0
    comparator_delay_ns: float = 0.0
    mux_delay_ns: float = 0.12

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{name} must be a non-negative number, got {value!r}")
        if self.hardening_area_factor < 1.0:
            raise ValueError(
                "hardening_area_factor must be >= 1.0, got "
                f"{self.hardening_area_factor}"
            )


@dataclass(frozen=True)
class BnPHardwareEnhancement:
    """Component inventory added to the compute engine by one BnP variant.

    Produced by :meth:`for_kind`; consumed by the area / energy / latency
    models.  All counts are per single instance (per synapse, per neuron, or
    per compute engine for the global registers).

    Attributes
    ----------
    kind:
        Which mitigation technique this inventory belongs to.
    comparator_per_synapse:
        Whether a threshold comparator is added inside every synapse.
    zero_mask_per_synapse:
        Whether the BnP1-style zero mask is added inside every synapse.
    mux_per_synapse:
        Whether the BnP2/3-style substitute mux is added inside every synapse.
    global_hardened_registers:
        Number of radiation-hardened global registers added to the engine
        (one for ``wgh_th``; BnP2/3 add a second one for ``wgh_def``).
    neuron_protection:
        Whether the enhanced-neuron AND+mux protection logic is added.
    """

    kind: MitigationKind
    comparator_per_synapse: bool = False
    zero_mask_per_synapse: bool = False
    mux_per_synapse: bool = False
    global_hardened_registers: int = 0
    neuron_protection: bool = False

    @classmethod
    def for_kind(cls, kind: MitigationKind) -> "BnPHardwareEnhancement":
        """Return the hardware additions required by *kind*.

        ``NO_MITIGATION`` and ``RE_EXECUTION`` add no hardware at all — the
        re-execution baseline repeats executions on the unmodified engine.
        """
        if not isinstance(kind, MitigationKind):
            raise TypeError(
                f"kind must be a MitigationKind, got {type(kind).__name__}"
            )
        if kind == MitigationKind.BNP1:
            return cls(
                kind=kind,
                comparator_per_synapse=True,
                zero_mask_per_synapse=True,
                mux_per_synapse=False,
                global_hardened_registers=1,
                neuron_protection=True,
            )
        if kind in (MitigationKind.BNP2, MitigationKind.BNP3):
            return cls(
                kind=kind,
                comparator_per_synapse=True,
                zero_mask_per_synapse=False,
                mux_per_synapse=True,
                global_hardened_registers=2,
                neuron_protection=True,
            )
        return cls(kind=kind)

    @classmethod
    def inventory_table(cls) -> Dict[MitigationKind, "BnPHardwareEnhancement"]:
        """Inventory of every technique, keyed by kind."""
        return {kind: cls.for_kind(kind) for kind in MitigationKind.all_kinds()}

    @property
    def adds_synapse_logic(self) -> bool:
        """True when the technique modifies the synapse datapath at all."""
        return (
            self.comparator_per_synapse
            or self.zero_mask_per_synapse
            or self.mux_per_synapse
        )
