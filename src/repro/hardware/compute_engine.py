"""Static description of the modelled SNN accelerator compute engine.

The paper's compute engine (Fig. 2 and Fig. 5) is a 256x256 synapse crossbar
feeding 256 LIF neurons, with 8-bit weight registers inside every synapse.
Networks larger than the physical crossbar are executed by time-multiplexing
(tiling): the weight buffer streams one 256x256 tile of the logical weight
matrix at a time into the register array.  The tiling is what produces the
latency scaling across the N400…N3600 sweep of Fig. 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ComputeEngineConfig"]


@dataclass(frozen=True)
class ComputeEngineConfig:
    """Physical configuration of the compute engine and the mapped network.

    Attributes
    ----------
    n_inputs:
        Logical number of input (pre-synaptic) channels of the mapped
        network; 784 for the 28x28 workloads.
    n_neurons:
        Logical number of excitatory neurons of the mapped network
        (400…3600 in the paper's sweep).
    crossbar_rows:
        Physical synapse-crossbar rows (input channels per tile); 256 in the
        paper's design (based on [Frenkel et al. 2019]).
    crossbar_cols:
        Physical synapse-crossbar columns (neurons per tile); 256.
    weight_bits:
        Weight-register precision in bits.
    timesteps:
        Number of simulation timesteps per inference (one input sample).
    clock_frequency_mhz:
        Nominal clock of the synthesised engine; only affects absolute
        (not normalised) latency numbers.
    """

    n_inputs: int = 784
    n_neurons: int = 400
    crossbar_rows: int = 256
    crossbar_cols: int = 256
    weight_bits: int = 8
    timesteps: int = 150
    clock_frequency_mhz: float = 500.0

    def __post_init__(self) -> None:
        for name in ("n_inputs", "n_neurons", "crossbar_rows", "crossbar_cols",
                     "weight_bits", "timesteps"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.clock_frequency_mhz <= 0:
            raise ValueError(
                f"clock_frequency_mhz must be positive, got {self.clock_frequency_mhz}"
            )

    # ------------------------------------------------------------------ #
    # physical inventory
    # ------------------------------------------------------------------ #
    @property
    def physical_synapses(self) -> int:
        """Number of synapse circuits physically present in the crossbar."""
        return self.crossbar_rows * self.crossbar_cols

    @property
    def physical_neurons(self) -> int:
        """Number of neuron circuits physically present."""
        return self.crossbar_cols

    # ------------------------------------------------------------------ #
    # mapping of the logical network onto the physical engine
    # ------------------------------------------------------------------ #
    @property
    def input_tiles(self) -> int:
        """Number of row tiles needed to cover the logical inputs."""
        return math.ceil(self.n_inputs / self.crossbar_rows)

    @property
    def neuron_tiles(self) -> int:
        """Number of column tiles needed to cover the logical neurons."""
        return math.ceil(self.n_neurons / self.crossbar_cols)

    @property
    def total_tiles(self) -> int:
        """Number of 256x256 tiles processed per timestep."""
        return self.input_tiles * self.neuron_tiles

    @property
    def logical_synapses(self) -> int:
        """Number of logical synapses (weight registers) of the mapped network."""
        return self.n_inputs * self.n_neurons

    @property
    def clock_period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.clock_frequency_mhz

    def with_network_size(self, n_neurons: int) -> "ComputeEngineConfig":
        """Return a copy of this configuration mapped to a different network size."""
        if n_neurons <= 0:
            raise ValueError(f"n_neurons must be positive, got {n_neurons}")
        return ComputeEngineConfig(
            n_inputs=self.n_inputs,
            n_neurons=int(n_neurons),
            crossbar_rows=self.crossbar_rows,
            crossbar_cols=self.crossbar_cols,
            weight_bits=self.weight_bits,
            timesteps=self.timesteps,
            clock_frequency_mhz=self.clock_frequency_mhz,
        )
