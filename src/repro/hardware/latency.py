"""Latency model of SNN inference on the (possibly enhanced) compute engine.

Reproduces Fig. 3(b) and Fig. 14(a).  The latency of one inference is
modelled as::

    latency = executions x timesteps x tiles x cycles_per_tile x clock_period

where

* ``executions`` is 1 for every technique except the re-execution (TMR)
  baseline, which runs the whole inference three times;
* ``tiles`` is the number of 256x256 crossbar tiles the logical weight
  matrix is folded into (this is what produces the 1.0 / 2.0 / 3.5 / 5.0 /
  7.5 scaling across N400…N3600 — the input dimension contributes a constant
  factor because both workloads are 28x28);
* ``cycles_per_tile`` covers streaming the tile's rows through the adder
  chains;
* the clock period is stretched when a technique lengthens the synapse
  critical path (the BnP2/3 substitute mux adds a mux delay; the BnP1 mask
  and the comparator sit off the critical path, as argued in Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import (
    BnPHardwareEnhancement,
    HardwareCostParameters,
    MitigationKind,
)

__all__ = ["LatencyEstimate", "LatencyModel"]

#: Number of redundant executions used by the re-execution (TMR) baseline.
RE_EXECUTION_RUNS = 3


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency of one inference with a given technique.

    Attributes
    ----------
    kind:
        Mitigation technique the estimate is for.
    executions:
        Number of full inference executions (3 for re-execution).
    tiles:
        Crossbar tiles processed per timestep.
    cycle_time_ns:
        Effective clock period including any critical-path stretch.
    total_ns:
        End-to-end latency of one classified input, in nanoseconds.
    """

    kind: MitigationKind
    executions: int
    tiles: int
    cycle_time_ns: float
    total_ns: float

    def normalized_to(self, reference: "LatencyEstimate") -> float:
        """This latency expressed relative to *reference* (paper-style)."""
        if reference.total_ns <= 0:
            raise ValueError("reference latency must be positive")
        return self.total_ns / reference.total_ns


class LatencyModel:
    """Inference-latency estimator for the compute engine.

    Parameters
    ----------
    config:
        Compute-engine configuration (defines tiling and timesteps).
    params:
        Per-component delay constants.
    """

    def __init__(
        self,
        config: Optional[ComputeEngineConfig] = None,
        params: Optional[HardwareCostParameters] = None,
    ) -> None:
        self.config = config if config is not None else ComputeEngineConfig()
        self.params = params if params is not None else HardwareCostParameters()

    # ------------------------------------------------------------------ #
    def executions(self, kind: MitigationKind) -> int:
        """Number of full executions required by technique *kind*."""
        return RE_EXECUTION_RUNS if kind == MitigationKind.RE_EXECUTION else 1

    def cycle_time_ns(self, kind: MitigationKind) -> float:
        """Effective cycle time including any added critical-path delay."""
        baseline = max(self.params.synapse_delay_ns, self.config.clock_period_ns)
        enhancement = BnPHardwareEnhancement.for_kind(kind)
        extra = 0.0
        if enhancement.comparator_per_synapse:
            # The comparator evaluates in parallel with the register read and
            # therefore does not stretch the accumulate path.
            extra += self.params.comparator_delay_ns
        if enhancement.mux_per_synapse:
            extra += self.params.mux_delay_ns
        return baseline + extra

    def cycles_per_tile(self) -> int:
        """Cycles needed to stream one crossbar tile through the adder chains."""
        return self.config.crossbar_rows

    def estimate(self, kind: MitigationKind) -> LatencyEstimate:
        """Latency estimate for one inference with technique *kind*."""
        if not isinstance(kind, MitigationKind):
            raise TypeError(f"kind must be a MitigationKind, got {type(kind).__name__}")
        executions = self.executions(kind)
        tiles = self.config.total_tiles
        cycle_time = self.cycle_time_ns(kind)
        total = (
            executions
            * self.config.timesteps
            * tiles
            * self.cycles_per_tile()
            * cycle_time
        )
        return LatencyEstimate(
            kind=kind,
            executions=executions,
            tiles=tiles,
            cycle_time_ns=cycle_time,
            total_ns=total,
        )

    def latency_ns(self, kind: MitigationKind) -> float:
        """Shortcut returning only the total latency in nanoseconds."""
        return self.estimate(kind).total_ns

    def normalized_table(
        self, reference: Optional["LatencyModel"] = None
    ) -> Dict[MitigationKind, float]:
        """Latency of every technique normalised to a reference baseline.

        The reference defaults to this model's own no-mitigation latency;
        Fig. 14(a) normalises every bar to the N400 / no-mitigation case, so
        the benchmark harness passes the N400 model as *reference*.
        """
        reference_model = reference if reference is not None else self
        baseline = reference_model.estimate(MitigationKind.NO_MITIGATION)
        return {
            kind: self.estimate(kind).normalized_to(baseline)
            for kind in MitigationKind.all_kinds()
        }
