"""Energy model of SNN inference on the (possibly enhanced) compute engine.

Reproduces Fig. 3(b) and Fig. 14(b).  Energy is accumulated per hardware
activation:

* every synapse touched in a timestep costs a register read plus an adder
  operation, and — when a BnP technique is deployed — the added comparator
  and mask/mux switching;
* every neuron costs a membrane update per timestep, plus the protection
  logic when deployed;
* the re-execution baseline repeats the whole inference three times, so its
  energy is three times the baseline, matching the paper.

Activity (how many synapse accesses and neuron updates happen) can either be
derived analytically from the engine configuration, or taken from an actual
simulation run so that spike sparsity is reflected; the two paths share the
same per-activation energy constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.compute_engine import ComputeEngineConfig
from repro.hardware.enhancements import (
    BnPHardwareEnhancement,
    HardwareCostParameters,
    MitigationKind,
)
from repro.hardware.latency import RE_EXECUTION_RUNS

__all__ = ["ActivityProfile", "EnergyEstimate", "EnergyModel"]


@dataclass(frozen=True)
class ActivityProfile:
    """How much work one inference performs on the compute engine.

    Attributes
    ----------
    synapse_accesses:
        Number of (synapse, timestep) activations — weight-register reads
        feeding the adder chain.
    neuron_updates:
        Number of (neuron, timestep) membrane updates.
    """

    synapse_accesses: float
    neuron_updates: float

    def __post_init__(self) -> None:
        if self.synapse_accesses < 0 or self.neuron_updates < 0:
            raise ValueError("activity counts must be non-negative")

    @classmethod
    def from_config(cls, config: ComputeEngineConfig) -> "ActivityProfile":
        """Dense activity of the physically exercised hardware.

        Every timestep streams all tiles of the logical weight matrix through
        the physical 256x256 crossbar; the whole physical array switches for
        each tile even when the tile is only partially occupied (which is why
        the paper's energy tracks its latency across network sizes).
        """
        return cls(
            synapse_accesses=float(
                config.total_tiles * config.physical_synapses * config.timesteps
            ),
            neuron_updates=float(
                config.neuron_tiles * config.physical_neurons * config.timesteps
            ),
        )

    @classmethod
    def from_spike_counts(
        cls,
        config: ComputeEngineConfig,
        total_input_spikes: float,
        n_samples: int = 1,
    ) -> "ActivityProfile":
        """Event-driven activity derived from a simulation run.

        Each input spike activates one physical crossbar row in every neuron
        tile (``crossbar_cols x neuron_tiles`` synapses); neuron updates
        still happen every timestep.

        Parameters
        ----------
        config:
            Engine configuration (provides the tiling and timesteps).
        total_input_spikes:
            Total number of input spikes observed over *n_samples* inferences.
        n_samples:
            Number of inferences the spike total was accumulated over; the
            returned profile is per single inference.
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        if total_input_spikes < 0:
            raise ValueError("total_input_spikes must be non-negative")
        per_sample_spikes = float(total_input_spikes) / n_samples
        return cls(
            synapse_accesses=per_sample_spikes
            * config.crossbar_cols
            * config.neuron_tiles,
            neuron_updates=float(
                config.neuron_tiles * config.physical_neurons * config.timesteps
            ),
        )


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of one inference with a given technique.

    Attributes
    ----------
    kind:
        Mitigation technique the estimate is for.
    executions:
        Number of full executions (3 for re-execution).
    synapse_energy:
        Energy spent in the synapse array (per full inference, all
        executions included).
    neuron_energy:
        Energy spent in the neuron datapaths.
    total:
        Total energy in the model's arbitrary switching-energy units.
    """

    kind: MitigationKind
    executions: int
    synapse_energy: float
    neuron_energy: float

    @property
    def total(self) -> float:
        """Total energy of the inference."""
        return self.synapse_energy + self.neuron_energy

    def normalized_to(self, reference: "EnergyEstimate") -> float:
        """This energy expressed relative to *reference* (paper-style)."""
        if reference.total <= 0:
            raise ValueError("reference energy must be positive")
        return self.total / reference.total


class EnergyModel:
    """Inference-energy estimator for the compute engine.

    Parameters
    ----------
    config:
        Compute-engine configuration.
    params:
        Per-activation energy constants.
    """

    def __init__(
        self,
        config: Optional[ComputeEngineConfig] = None,
        params: Optional[HardwareCostParameters] = None,
    ) -> None:
        self.config = config if config is not None else ComputeEngineConfig()
        self.params = params if params is not None else HardwareCostParameters()

    # ------------------------------------------------------------------ #
    def synapse_energy_per_access(self, kind: MitigationKind) -> float:
        """Energy of one synapse activation under technique *kind*."""
        enhancement = BnPHardwareEnhancement.for_kind(kind)
        energy = (
            self.params.register_energy_per_access
            + self.params.adder_energy_per_access
        )
        if enhancement.comparator_per_synapse:
            energy += self.params.comparator_energy_per_access
        if enhancement.zero_mask_per_synapse:
            energy += self.params.zero_mask_energy_per_access
        if enhancement.mux_per_synapse:
            energy += self.params.mux_energy_per_access
        return energy

    def neuron_energy_per_update(self, kind: MitigationKind) -> float:
        """Energy of one neuron membrane update under technique *kind*."""
        enhancement = BnPHardwareEnhancement.for_kind(kind)
        energy = self.params.neuron_energy_per_update
        if enhancement.neuron_protection:
            energy += self.params.neuron_protection_energy
        return energy

    def executions(self, kind: MitigationKind) -> int:
        """Number of full executions required by technique *kind*."""
        return RE_EXECUTION_RUNS if kind == MitigationKind.RE_EXECUTION else 1

    def estimate(
        self,
        kind: MitigationKind,
        activity: Optional[ActivityProfile] = None,
    ) -> EnergyEstimate:
        """Energy estimate for one inference with technique *kind*."""
        if not isinstance(kind, MitigationKind):
            raise TypeError(f"kind must be a MitigationKind, got {type(kind).__name__}")
        if activity is None:
            activity = ActivityProfile.from_config(self.config)
        executions = self.executions(kind)
        synapse_energy = (
            executions
            * activity.synapse_accesses
            * self.synapse_energy_per_access(kind)
        )
        neuron_energy = (
            executions * activity.neuron_updates * self.neuron_energy_per_update(kind)
        )
        return EnergyEstimate(
            kind=kind,
            executions=executions,
            synapse_energy=synapse_energy,
            neuron_energy=neuron_energy,
        )

    def energy(
        self, kind: MitigationKind, activity: Optional[ActivityProfile] = None
    ) -> float:
        """Shortcut returning only the total energy."""
        return self.estimate(kind, activity=activity).total

    def normalized_table(
        self,
        activity: Optional[ActivityProfile] = None,
        reference: Optional["EnergyModel"] = None,
        reference_activity: Optional[ActivityProfile] = None,
    ) -> Dict[MitigationKind, float]:
        """Energy of every technique normalised to a reference baseline.

        Fig. 14(b) normalises to the N400 / no-mitigation case; the benchmark
        harness passes the N400 model (and its activity) as the reference.
        """
        reference_model = reference if reference is not None else self
        if reference_activity is None:
            reference_activity = activity
        baseline = reference_model.estimate(
            MitigationKind.NO_MITIGATION, activity=reference_activity
        )
        return {
            kind: self.estimate(kind, activity=activity).normalized_to(baseline)
            for kind in MitigationKind.all_kinds()
        }
