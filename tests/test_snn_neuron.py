"""Tests for the LIF neuron group and its four explicit hardware operations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.neuron import LIFNeuronGroup, LIFParameters, NeuronOperationStatus


def _drive(group: LIFNeuronGroup, current: float, steps: int) -> np.ndarray:
    """Drive every neuron with a constant current and return total spike counts."""
    counts = np.zeros(group.n_neurons, dtype=int)
    for _ in range(steps):
        counts += group.step(np.full(group.n_neurons, current))
    return counts


class TestLIFParameters:
    def test_decay_factors_in_unit_interval(self):
        params = LIFParameters()
        assert 0 < params.membrane_decay < 1
        assert 0 < params.theta_decay < 1

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            LIFParameters(v_threshold=0.0, v_reset=0.0)

    def test_invalid_refractory_raises(self):
        with pytest.raises(ValueError):
            LIFParameters(refractory_period=-1)

    def test_vmin_above_reset_raises(self):
        with pytest.raises(ValueError):
            LIFParameters(v_min=1.0, v_reset=0.0)


class TestHealthyDynamics:
    def test_strong_drive_produces_spikes(self):
        group = LIFNeuronGroup(4, LIFParameters(inhibition_strength=0.0))
        counts = _drive(group, current=1.0, steps=30)
        assert (counts > 0).all()

    def test_subthreshold_drive_is_silent(self):
        group = LIFNeuronGroup(4, LIFParameters(tau_membrane=5.0))
        counts = _drive(group, current=0.01, steps=30)
        assert counts.sum() == 0

    def test_membrane_resets_after_spike(self):
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0))
        spiked = False
        for _ in range(20):
            spikes = group.step(np.array([1.0]))
            if spikes[0]:
                spiked = True
                assert group.v[0] == pytest.approx(group.params.v_reset)
                break
        assert spiked

    def test_refractory_period_blocks_integration(self):
        params = LIFParameters(refractory_period=5, inhibition_strength=0.0)
        group = LIFNeuronGroup(1, params)
        # Force a spike, then confirm no spikes for the refractory window even
        # under very strong drive.
        while not group.step(np.array([5.0]))[0]:
            pass
        spikes_during_refractory = [
            group.step(np.array([5.0]))[0] for _ in range(params.refractory_period - 1)
        ]
        assert not any(spikes_during_refractory)

    def test_leak_pulls_toward_rest(self):
        group = LIFNeuronGroup(1, LIFParameters(tau_membrane=2.0))
        group.step(np.array([0.5]))
        v_after_input = group.v[0]
        group.step(np.array([0.0]))
        assert group.v[0] < v_after_input

    def test_lateral_inhibition_suppresses_others(self):
        params = LIFParameters(inhibition_strength=1.0)
        group = LIFNeuronGroup(2, params)
        # Neuron 0 gets strong drive; neuron 1 gets moderate drive.
        for _ in range(10):
            group.step(np.array([2.0, 0.3]))
        inhibited_v = group.v[1]
        group_no_inh = LIFNeuronGroup(2, LIFParameters(inhibition_strength=0.0))
        for _ in range(10):
            group_no_inh.step(np.array([2.0, 0.3]))
        assert inhibited_v < group_no_inh.v[1]

    def test_theta_only_adapts_when_learning(self):
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0))
        _drive(group, 2.0, 10)
        assert group.theta[0] == 0.0
        for _ in range(10):
            group.step(np.array([2.0]), learning=True)
        assert group.theta[0] > 0.0

    def test_reset_state_clears_dynamics_but_keeps_theta(self):
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0))
        for _ in range(10):
            group.step(np.array([2.0]), learning=True)
        theta_before = group.theta[0]
        group.reset_state()
        assert group.v[0] == group.params.v_rest
        assert group.theta[0] == theta_before
        group.reset_state(reset_theta=True)
        assert group.theta[0] == 0.0

    def test_run_matches_step_loop(self):
        currents = np.full((15, 3), 0.8)
        a = LIFNeuronGroup(3, LIFParameters(inhibition_strength=0.0))
        raster = a.run(currents)
        b = LIFNeuronGroup(3, LIFParameters(inhibition_strength=0.0))
        manual = np.stack([b.step(row) for row in currents])
        assert np.array_equal(raster, manual)

    def test_input_shape_validation(self):
        group = LIFNeuronGroup(3)
        with pytest.raises(ValueError):
            group.step(np.zeros(4))
        with pytest.raises(ValueError):
            group.run(np.zeros((5, 4)))


class TestFaultyOperations:
    """The four faulty behaviours of Fig. 6."""

    def _status(self, n, **kwargs):
        status = NeuronOperationStatus.healthy(n)
        for name, indices in kwargs.items():
            getattr(status, name)[indices] = False
        return status

    def test_faulty_vmem_increase_silences_neuron(self):
        status = self._status(2, vmem_increase_ok=[0])
        group = LIFNeuronGroup(2, LIFParameters(inhibition_strength=0.0), status)
        counts = _drive(group, 2.0, 30)
        assert counts[0] == 0
        assert counts[1] > 0

    def test_faulty_vmem_leak_keeps_potential(self):
        status = self._status(1, vmem_leak_ok=[0])
        group = LIFNeuronGroup(1, LIFParameters(tau_membrane=2.0), status)
        group.step(np.array([0.5]))
        v_after = group.v[0]
        group.step(np.array([0.0]))
        assert group.v[0] == pytest.approx(v_after)

    def test_faulty_vmem_reset_causes_burst(self):
        status = self._status(1, vmem_reset_ok=[0])
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0), status)
        counts = _drive(group, 2.0, 30)
        healthy = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0))
        healthy_counts = _drive(healthy, 2.0, 30)
        # The bursting neuron fires far more often than a healthy one.
        assert counts[0] > 2 * healthy_counts[0]

    def test_faulty_spike_generation_blocks_output_but_resets(self):
        status = self._status(1, spike_generation_ok=[0])
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0), status)
        counts = _drive(group, 2.0, 30)
        assert counts[0] == 0
        # Membrane keeps being reset internally, so it never runs away.
        assert group.v[0] < 10 * group.params.v_threshold

    def test_operation_status_validation(self):
        with pytest.raises(ValueError):
            NeuronOperationStatus(n_neurons=0)
        with pytest.raises(ValueError):
            NeuronOperationStatus(n_neurons=3, vmem_reset_ok=np.ones(2, bool))

    def test_status_copy_is_independent(self):
        status = NeuronOperationStatus.healthy(3)
        clone = status.copy()
        clone.vmem_reset_ok[0] = False
        assert status.vmem_reset_ok[0]

    def test_faulty_neuron_count(self):
        status = self._status(5, vmem_reset_ok=[0], spike_generation_ok=[0, 3])
        assert status.faulty_neuron_count() == 2
        assert status.any_faulty

    def test_mismatched_status_rejected(self):
        group = LIFNeuronGroup(3)
        with pytest.raises(ValueError):
            group.set_operation_status(NeuronOperationStatus.healthy(4))


class TestProtectionHooks:
    def test_comparator_counter_tracks_stuck_neurons(self):
        status = NeuronOperationStatus.healthy(1)
        status.vmem_reset_ok[0] = False
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0), status)
        _drive(group, 2.0, 10)
        assert group.consecutive_above_threshold[0] >= 2

    def test_healthy_neuron_never_reaches_two_consecutive(self):
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0))
        max_consecutive = 0
        for _ in range(40):
            group.step(np.array([2.0]))
            max_consecutive = max(max_consecutive, group.consecutive_above_threshold[0])
        assert max_consecutive <= 1

    def test_disable_spiking_gates_output(self):
        status = NeuronOperationStatus.healthy(1)
        status.vmem_reset_ok[0] = False
        group = LIFNeuronGroup(1, LIFParameters(inhibition_strength=0.0), status)
        group.disable_spiking(np.array([True]))
        counts = _drive(group, 2.0, 20)
        assert counts[0] == 0

    def test_disable_spiking_shape_validation(self):
        group = LIFNeuronGroup(2)
        with pytest.raises(ValueError):
            group.disable_spiking(np.array([True]))

    @given(current=st.floats(min_value=0.0, max_value=3.0), steps=st.integers(5, 40))
    @settings(max_examples=25, deadline=None)
    def test_membrane_never_below_vmin_property(self, current, steps):
        group = LIFNeuronGroup(5, LIFParameters())
        for _ in range(steps):
            group.step(np.full(5, current))
            assert (group.v >= group.params.v_min - 1e-9).all()
