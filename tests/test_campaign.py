"""Tests for campaign orchestration: spec expansion, executors, store, resume.

The heart of the subsystem is the determinism contract: every sweep cell is
seeded from its grid coordinates, so serial execution, process-pool
execution and the :class:`FaultRateSweep` front end must all produce
bit-identical per-trial accuracies for the same spec and seed, and a
half-completed campaign must resume from the store without recomputing
(or duplicating) finished cells.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.bound_and_protect import BnPVariant
from repro.core.mitigation import BnPTechnique, NoMitigation
from repro.eval.campaign import (
    CampaignSpec,
    CellResult,
    SweepCell,
    TechniqueSpec,
    build_experiment_cells,
    execute_cell,
    run_campaign,
)
from repro.eval.experiment import ExperimentConfig, ExperimentRunner, prepare_datasets
from repro.eval.store import ResultStore, StoreMismatchError
from repro.eval.sweep import FaultRateSweep, SweepResult
from repro.hardware.enhancements import MitigationKind
from repro.snn.training import TrainedModel
from repro.utils.rng import SeedSequenceFactory, derive_cell_seed, derive_root_seed


TINY_CONFIG = ExperimentConfig(
    workload="mnist", n_neurons=10, n_train=24, n_test=8, timesteps=40, epochs=1
)
RATES = [1e-3, 1e-1]
CAMPAIGN_SEED = 5
RUNNER_SEED = 3


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="tiny",
        experiments=[TINY_CONFIG],
        fault_rates=list(RATES),
        techniques=[
            TechniqueSpec(MitigationKind.NO_MITIGATION),
            TechniqueSpec(MitigationKind.BNP3),
        ],
        n_trials=2,
        seed=CAMPAIGN_SEED,
        runner_seed=RUNNER_SEED,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture(scope="module")
def serial_result():
    """One serial campaign run shared by the parity and resume tests."""
    return run_campaign(tiny_spec(), n_workers=1)


class TestSeedDerivation:
    def test_cell_seeds_depend_only_on_coordinates(self):
        a = derive_cell_seed(7, "mnist/N10", 1, 0)
        b = derive_cell_seed(7, "mnist/N10", 1, 0)
        assert a == b
        assert derive_cell_seed(7, "mnist/N10", 1, 1) != a
        assert derive_cell_seed(7, "mnist/N10", 0, 0) != a
        assert derive_cell_seed(8, "mnist/N10", 1, 0) != a
        assert derive_cell_seed(7, "mnist/N12", 1, 0) != a

    def test_root_seed_derivation(self):
        assert derive_root_seed(42) == 42
        generator = np.random.default_rng(1)
        drawn = derive_root_seed(generator)
        assert derive_root_seed(np.random.default_rng(1)) == drawn
        with pytest.raises(ValueError):
            derive_root_seed(-1)


class TestCellExpansion:
    def test_counts_and_ids_unique(self):
        cells = build_experiment_cells("exp", RATES, 3, root_seed=0)
        assert len(cells) == 1 + len(RATES) * 3  # clean + grid
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)
        assert cells[0].is_clean

    def test_expansion_is_order_independent_of_execution(self):
        first = build_experiment_cells("exp", RATES, 2, root_seed=9)
        second = build_experiment_cells("exp", RATES, 2, root_seed=9)
        assert [c.seed for c in first] == [c.seed for c in second]

    def test_cell_round_trip(self):
        cell = build_experiment_cells("exp", RATES, 1, root_seed=1)[1]
        assert SweepCell.from_dict(cell.to_dict()) == cell

    def test_spec_expand_covers_all_experiments(self):
        other = TINY_CONFIG.with_network_size(12)
        spec = tiny_spec(experiments=[TINY_CONFIG, other])
        cells = spec.expand()
        per_experiment = 1 + len(RATES) * spec.n_trials
        assert len(cells) == 2 * per_experiment
        assert {c.experiment_key for c in cells} == {
            TINY_CONFIG.label(),
            other.label(),
        }

    def test_duplicate_experiment_labels_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(experiments=[TINY_CONFIG, TINY_CONFIG])

    def test_spec_round_trip_preserves_fingerprint(self):
        spec = tiny_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.fingerprint() == spec.fingerprint()
        assert clone.experiment_keys == spec.experiment_keys

    def test_fingerprint_changes_with_grid(self):
        assert tiny_spec().fingerprint() != tiny_spec(seed=99).fingerprint()


class TestSerialParallelParity:
    def test_pool_matches_serial_bit_identically(self, serial_result, tmp_path):
        parallel = run_campaign(
            tiny_spec(), store_path=tmp_path / "par.jsonl", n_workers=2
        )
        key = TINY_CONFIG.label()
        serial_sweep = serial_result.sweeps[key]
        parallel_sweep = parallel.sweeps[key]
        assert parallel_sweep.clean_accuracy == serial_sweep.clean_accuracy
        for kind, series in serial_sweep.techniques.items():
            assert parallel_sweep.techniques[kind].per_trial == series.per_trial
            assert parallel_sweep.techniques[kind].accuracies == series.accuracies

    def test_fault_rate_sweep_matches_campaign(self, serial_result):
        """The thin-wrapper path reproduces the campaign bit-for-bit."""
        key = TINY_CONFIG.label()
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        sweep = FaultRateSweep(
            prepared.model,
            prepared.test_set,
            [NoMitigation(), BnPTechnique(BnPVariant.BNP3)],
            n_trials=2,
            batch_size=TINY_CONFIG.eval_batch_size,
        )
        result = sweep.run(fault_rates=RATES, rng=CAMPAIGN_SEED, label=key)
        campaign_sweep = serial_result.sweeps[key]
        assert result.clean_accuracy == campaign_sweep.clean_accuracy
        for kind, series in campaign_sweep.techniques.items():
            assert result.techniques[kind].per_trial == series.per_trial

    def test_execute_cell_is_deterministic(self, serial_result):
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        techniques = [NoMitigation(), BnPTechnique(BnPVariant.BNP3)]
        cell = build_experiment_cells(
            TINY_CONFIG.label(), RATES, 2, root_seed=CAMPAIGN_SEED
        )[3]
        a = execute_cell(cell, prepared.model, prepared.test_set, techniques)
        b = execute_cell(cell, prepared.model, prepared.test_set, techniques)
        assert a.accuracies == b.accuracies
        assert a.n_faults == b.n_faults


class TestResume:
    def test_half_completed_campaign_resumes_without_recompute(
        self, serial_result, tmp_path
    ):
        """Kill after k cells → re-run → each cell exactly once, same numbers."""
        spec = tiny_spec()
        full_store = tmp_path / "full.jsonl"
        run_campaign(spec, store_path=full_store, n_workers=1)

        lines = full_store.read_text().splitlines()
        n_cells = len(lines) - 1  # minus meta record
        k = 2
        half_store = tmp_path / "half.jsonl"
        half_store.write_text("\n".join(lines[: 1 + k]) + "\n")

        resumed = run_campaign(spec, store_path=half_store, n_workers=1)
        assert resumed.n_skipped == k
        assert resumed.n_executed == n_cells - k

        records = [json.loads(line) for line in half_store.read_text().splitlines()]
        cell_ids = [r["cell_id"] for r in records if r["type"] == "cell"]
        assert len(cell_ids) == n_cells
        assert len(set(cell_ids)) == n_cells  # each cell exactly once

        key = TINY_CONFIG.label()
        for kind, series in serial_result.sweeps[key].techniques.items():
            assert resumed.sweeps[key].techniques[kind].per_trial == series.per_trial

    def test_completed_campaign_reruns_as_pure_read(self, tmp_path):
        spec = tiny_spec()
        store = tmp_path / "done.jsonl"
        first = run_campaign(spec, store_path=store, n_workers=1)
        again = run_campaign(spec, store_path=store, n_workers=1)
        assert again.n_executed == 0
        assert again.n_skipped == first.n_cells
        key = TINY_CONFIG.label()
        assert again.sweeps[key].summary() == first.sweeps[key].summary()

    def test_truncated_tail_line_is_reexecuted(self, tmp_path):
        spec = tiny_spec()
        store = tmp_path / "torn.jsonl"
        run_campaign(spec, store_path=store, n_workers=1)
        text = store.read_text()
        store.write_text(text[: len(text) - 25])  # tear the last record
        resumed = run_campaign(spec, store_path=store, n_workers=1)
        assert resumed.n_executed == 1

    def test_no_resume_truncates(self, tmp_path):
        spec = tiny_spec()
        store = tmp_path / "reset.jsonl"
        run_campaign(spec, store_path=store, n_workers=1)
        rerun = run_campaign(spec, store_path=store, n_workers=1, resume=False)
        assert rerun.n_skipped == 0
        assert rerun.n_executed == rerun.n_cells


class TestResultStore:
    def test_spec_mismatch_refused(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.initialize(tiny_spec())
        with pytest.raises(StoreMismatchError):
            store.initialize(tiny_spec(seed=123))

    def test_meta_and_records(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "s.jsonl")
        store.initialize(spec)
        assert store.meta()["campaign"] == "tiny"
        assert store.spec_dict()["n_trials"] == spec.n_trials
        assert len(store) == 0
        result = CellResult(
            cell_id="x::clean",
            experiment_key="x",
            fault_rate=None,
            rate_index=-1,
            trial_index=-1,
            accuracies={"clean": 50.0},
        )
        store.append_cell(result)
        assert store.completed_cell_ids() == ["x::clean"]
        loaded = store.cell_records()["x::clean"]
        assert loaded.accuracies == {"clean": 50.0}
        assert loaded.fault_rate is None

    def test_duplicate_cell_records_first_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.initialize(tiny_spec())
        first = CellResult("a", "x", 0.1, 0, 0, {"no_mitigation": 10.0})
        second = CellResult("a", "x", 0.1, 0, 0, {"no_mitigation": 90.0})
        store.append_cell(first)
        store.append_cell(second)
        assert store.cell_records()["a"].accuracies["no_mitigation"] == 10.0

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.initialize(tiny_spec())
        store.append_cell(CellResult("a", "x", 0.1, 0, 0, {"no_mitigation": 1.0}))
        lines = path.read_text().splitlines()
        lines.insert(1, "{not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            store.cell_records()

    def test_corrupt_middle_record_blocks_resume(self, tmp_path):
        """Mid-file corruption is refused at initialize time, not repaired.

        Only a *torn tail* is the footprint of an interrupted append; a
        malformed record with complete records after it means the store
        itself is damaged, and resuming into it would silently drop
        finished cells — so ``initialize`` raises instead of truncating.
        """
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.initialize(tiny_spec())
        store.append_cell(CellResult("a", "x", 0.1, 0, 0, {"no_mitigation": 1.0}))
        store.append_cell(CellResult("b", "x", 0.1, 1, 0, {"no_mitigation": 2.0}))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-10]  # corrupt the first cell, keep the second
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt store record"):
            ResultStore(path).initialize(tiny_spec())

    def test_corrupt_tail_record_is_repaired_on_resume(self, tmp_path):
        """A torn *final* record (no trailing newline) is cut back silently."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.initialize(tiny_spec())
        store.append_cell(CellResult("a", "x", 0.1, 0, 0, {"no_mitigation": 1.0}))
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"type": "cell", "cell_id": "torn')
        fresh = ResultStore(path)
        fresh.initialize(tiny_spec())
        assert fresh.completed_cell_ids() == ["a"]


class TestTrainedModelSnapshot:
    def test_save_load_round_trip(self, tmp_path):
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        model = prepared.model
        npz_path = model.save(tmp_path / "model")
        assert npz_path.exists()
        assert npz_path.with_suffix(".json").exists()

        loaded = TrainedModel.load(tmp_path / "model")
        assert np.array_equal(loaded.weights, model.weights)
        assert np.array_equal(loaded.theta, model.theta)
        assert np.array_equal(loaded.neuron_labels, model.neuron_labels)
        assert loaded.clean_max_weight == model.clean_max_weight
        assert loaded.clean_most_probable_weight == model.clean_most_probable_weight
        assert loaded.network_config == model.network_config

    def test_loaded_model_evaluates_identically(self, tmp_path):
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        prepared.model.save(tmp_path / "model.npz")
        loaded = TrainedModel.load(tmp_path / "model.npz")
        a = NoMitigation().evaluate(prepared.model, prepared.test_set, rng=4)
        b = NoMitigation().evaluate(loaded, prepared.test_set, rng=4)
        assert np.array_equal(a.predictions, b.predictions)

    def test_load_rejects_unknown_format(self, tmp_path):
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        prepared.model.save(tmp_path / "model")
        meta_path = tmp_path / "model.json"
        data = json.loads(meta_path.read_text())
        data["format"] = 999
        meta_path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            TrainedModel.load(tmp_path / "model")


class TestWorkerDataReconstruction:
    def test_prepare_datasets_matches_runner(self):
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        _, test_set = prepare_datasets(
            TINY_CONFIG, SeedSequenceFactory(root_seed=RUNNER_SEED)
        )
        assert np.array_equal(test_set.images, prepared.test_set.images)
        assert np.array_equal(test_set.labels, prepared.test_set.labels)


class TestSummaryRoundTrip:
    def test_sweep_result_from_summary(self, serial_result):
        sweep = serial_result.sweeps[TINY_CONFIG.label()]
        summary = sweep.summary()
        assert summary["n_trials"] == 2
        for series in summary["techniques"].values():
            assert len(series["per_trial"]) == len(RATES)
            assert all(len(trials) == 2 for trials in series["per_trial"])
        restored = SweepResult.from_summary(summary)
        assert restored.summary() == summary
        assert restored.techniques[MitigationKind.BNP3].per_trial == (
            sweep.techniques[MitigationKind.BNP3].per_trial
        )

    def test_campaign_summary_contains_per_trial(self, serial_result):
        summary = serial_result.summary()
        experiment = summary["experiments"][TINY_CONFIG.label()]
        assert experiment["n_trials"] == 2
        assert "per_trial" in experiment["techniques"]["bnp3"]


class TestCampaignCLI:
    def test_smoke_preset_end_to_end(self, tmp_path, capsys):
        from repro.campaign import main

        store = tmp_path / "smoke.jsonl"
        report_path = tmp_path / "smoke-report.json"
        code = main(
            [
                "smoke",
                "--store",
                str(store),
                "--workers",
                "1",
                "--quiet",
                "--run-report",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no_mitigation" in out and "bnp3" in out
        assert store.exists()
        assert store.with_suffix(".summary.json").exists()
        summary = json.loads(store.with_suffix(".summary.json").read_text())
        assert summary["campaign"] == "smoke"

        report = json.loads(report_path.read_text())
        assert report["campaign"] == "smoke"
        assert report["n_executed"] == report["n_cells"] == len(report["cells"])
        assert all(cell["duration_seconds"] >= 0 for cell in report["cells"])
        assert "softsnn_campaign_cells_total" in report["metrics"]
        assert "softsnn_span_seconds" in report["metrics"]

        # Re-running resumes entirely from the store.
        code = main(["smoke", "--store", str(store), "--quiet"])
        assert code == 0
        assert "0 executed" in capsys.readouterr().out.replace("(", " ").strip()

    def test_override_flags(self, tmp_path, capsys):
        from repro.campaign import main

        code = main(
            [
                "smoke",
                "--no-store",
                "--rates",
                "1e-1",
                "--trials",
                "1",
                "--techniques",
                "no_mitigation",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.1" in out
        assert "bnp3" not in out
