"""Unit suite of the fused kernel layer (:mod:`repro.snn.kernels`).

The kernels carry the bit-exactness contract of all three engines, so this
suite checks them against straight-line reference implementations written
in the pre-refactor ``np.where`` style: the float32-exactness boundary of
the register GEMM, the LIF timestep advance under every fault-switch
combination (including protection triggers and carried faulty-reset
latches), the Bound-and-Protect bounding-correction decomposition, the
caller-owned workspace (no allocation inside the hot loop), backend
selection / fallback, and the batch-size autotuner with its explicit-knob
override guarantees.  When numba is importable the whole advance/GEMM
matrix also runs against the compiled backend and must stay bit-identical.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro.snn import kernels
from repro.snn.kernels import (
    DEFAULT_BATCH_SIZE,
    FLOAT32_EXACT_SUM_LIMIT,
    NO_PROTECTION_TRIGGER,
    KernelWorkspace,
    LIFStepConfig,
    OperationMasks,
    apply_bounding_correction,
    autotune_batch_size,
    bounding_correction_terms,
    clear_autotune_cache,
    exact_gemm_dtype,
    exact_scale,
    lif_advance,
    lif_learning_step,
    numba_available,
    plan_bounding_correction,
    register_gemm,
    set_backend,
)
from repro.snn.neuron import LIFParameters, NeuronOperationStatus
from repro.snn.quantization import WeightQuantizer
from repro.snn.synapse import BoundedWeightRule, SynapseMatrix

#: Backends exercised by the parity matrix; numba joins when importable.
BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])

CONFIG = LIFStepConfig(
    v_rest=0.0,
    v_reset=0.0,
    v_min=-2.0,
    membrane_decay=0.9,
    refractory_period=3,
    inhibition_strength=1.0,
)


@pytest.fixture(autouse=True)
def _reset_kernel_state():
    """Isolate backend and autotune caches between tests."""
    yield
    set_backend(None)
    clear_autotune_cache()


# ---------------------------------------------------------------------- #
# exact-GEMM dtype boundary
# ---------------------------------------------------------------------- #
class TestExactGemmDtype:
    """Pin the float32 capability probe exactly at the 2**24 boundary."""

    def test_limit_is_float32_mantissa(self):
        # 2**24 + 1 is the first integer float32 cannot represent: the
        # predicate must be `<=` so the boundary itself stays on float32.
        assert FLOAT32_EXACT_SUM_LIMIT == 2**24
        assert int(np.float32(2**24)) == 2**24
        assert int(np.float32(2**24 + 1)) == 2**24  # rounds down: inexact

    def test_boundary_exactly_at_limit_picks_float32(self):
        # 4096 * 4096 == 2**24: the bound itself is representable.
        assert exact_gemm_dtype(4096, 4096) == np.float32

    def test_boundary_one_below_limit_picks_float32(self):
        # 4095 * 4097 == 2**24 - 1.
        assert 4095 * 4097 == 2**24 - 1
        assert exact_gemm_dtype(4095, 4097) == np.float32

    def test_boundary_one_above_limit_picks_float64(self):
        # 24929 * 673 == 16_777_217 == 2**24 + 1 (= 97 * 257 * 673).
        assert 24929 * 673 == 2**24 + 1
        assert exact_gemm_dtype(24929, 673) == np.float64

    def test_paper_geometry_is_float32(self):
        # 784 inputs x 8-bit codes: comfortably within the mantissa.
        assert exact_gemm_dtype(784, 255) == np.float32

    def test_boundary_sum_is_exact_in_chosen_dtype(self):
        # Worst-case column sum exactly at the limit: all 4096 inputs spike
        # into a column of max codes.  The float32 GEMM must return the
        # exact integer.
        dtype = exact_gemm_dtype(4096, 4096)
        codes = np.full((4096, 1), 4096, dtype=dtype)
        spikes = np.ones((1, 4096), dtype=bool)
        total = register_gemm(spikes, codes)
        assert int(total[0, 0]) == 2**24

    def test_above_boundary_sum_exact_via_float64(self):
        # One past the limit the probe must fall back to float64, where the
        # sum is still exact (and float32 would have rounded it).
        dtype = exact_gemm_dtype(24929, 673)
        assert dtype == np.float64
        codes = np.full((24929, 1), 673, dtype=dtype)
        spikes = np.ones((1, 24929), dtype=bool)
        total = register_gemm(spikes, codes)
        assert int(total[0, 0]) == 2**24 + 1


# ---------------------------------------------------------------------- #
# register GEMM + exact scaling
# ---------------------------------------------------------------------- #
class TestRegisterGemm:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("code_dtype", [np.float32, np.float64, np.int64])
    def test_matches_integer_matmul(self, backend, code_dtype):
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 256, size=(50, 12)).astype(code_dtype)
        spikes = rng.random((7, 50)) < 0.3
        result = register_gemm(spikes, codes, backend=backend)
        expected = spikes.astype(np.int64) @ codes.astype(np.int64)
        assert result.dtype == codes.dtype
        assert np.array_equal(result.astype(np.int64), expected)

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_bitwise_matches_numpy(self):
        rng = np.random.default_rng(6)
        codes = rng.integers(0, 256, size=(100, 30)).astype(np.float32)
        spikes = rng.random((16, 100)) < 0.2
        a = register_gemm(spikes, codes, backend="numpy")
        b = register_gemm(spikes, codes, backend="numba")
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)

    def test_exact_scale_is_float64_widening(self):
        accumulated = np.array([[3.0, 150.0]], dtype=np.float32)
        scale = 2.0 / 255.0
        result = exact_scale(accumulated, scale)
        assert result.dtype == np.float64
        expected = accumulated.astype(np.float64) * np.float64(scale)
        assert np.array_equal(result, expected)

    def test_exact_scale_out_parameter(self):
        accumulated = np.arange(6, dtype=np.float32).reshape(2, 3)
        out = np.empty((2, 3), dtype=np.float64)
        returned = exact_scale(accumulated, 0.5, out=out)
        assert returned is out
        assert np.array_equal(out, accumulated.astype(np.float64) * 0.5)


# ---------------------------------------------------------------------- #
# Bound-and-Protect bounding correction
# ---------------------------------------------------------------------- #
class TestBoundingCorrection:
    def _setup(self, threshold, n_inputs=60, n_neurons=9, seed=8):
        rng = np.random.default_rng(seed)
        weights = rng.random((n_inputs, n_neurons)) * 2.0
        synapses = SynapseMatrix(weights)
        rule = BoundedWeightRule(threshold=threshold, substitute=0.25)
        flat = rng.random((11, n_inputs)) < 0.3
        return synapses, rule, flat

    @pytest.mark.parametrize("threshold", [1.9, 1.0, 0.05])
    def test_decomposition_matches_bounded_operator(self, threshold):
        # threshold 1.9 bounds a few synapses (column-restricted path),
        # 1.0 about half, 0.05 nearly all (dense path).
        synapses, rule, flat = self._setup(threshold)
        quantizer = synapses.quantizer
        dtype = exact_gemm_dtype(synapses.n_inputs, quantizer.max_code)
        codes = synapses.registers.astype(dtype)
        spikes = flat.astype(dtype)

        expected = synapses.current_operator(rule).compute(flat)

        correction = plan_bounding_correction(
            synapses.registers, rule.threshold, quantizer
        )
        assert not correction.is_empty
        base = register_gemm(spikes, codes)
        masked, hits = bounding_correction_terms(spikes, correction)
        out = np.empty_like(expected)
        apply_bounding_correction(
            base, masked, hits, quantizer.scale, rule.substitute, out
        )
        assert np.array_equal(out, expected)

    def test_sparse_threshold_restricts_columns(self):
        synapses, rule, _ = self._setup(1.99)
        correction = plan_bounding_correction(
            synapses.registers, rule.threshold, synapses.quantizer
        )
        if correction.is_empty:
            pytest.skip("no weight reached the threshold for this seed")
        assert correction.columns is not None
        assert correction.masked_codes.shape[0] == correction.columns.size

    def test_unreachable_threshold_is_empty(self):
        synapses, _, _ = self._setup(1.0)
        correction = plan_bounding_correction(
            synapses.registers, 3.0, synapses.quantizer
        )
        assert correction.is_empty
        assert correction.columns is None


# ---------------------------------------------------------------------- #
# LIF timestep advance
# ---------------------------------------------------------------------- #
def _reference_advance(
    currents, v, refractory, counter, disabled, latched, masks, threshold,
    config, triggers=None,
):
    """Straight-line ``np.where`` transcription of the engine timestep.

    This is the pre-kernel formulation the batched engine used, lifted to
    ``(rows, batch, neurons)``; :func:`lif_advance` must reproduce it bit
    for bit on every backend.
    """
    leak_ok = masks.leak_ok[:, np.newaxis, :]
    increase_ok = masks.increase_ok[:, np.newaxis, :]
    reset_ok = masks.reset_ok[:, np.newaxis, :]
    spike_ok = masks.spike_ok[:, np.newaxis, :]
    has_reset_fault = not masks.all_reset
    output = np.zeros(currents.shape, dtype=bool)
    for t in range(currents.shape[0]):
        decayed = config.v_rest + (v - config.v_rest) * config.membrane_decay
        v = np.where(leak_ok, decayed, v)
        active = refractory <= 0
        v = v + np.where(active & increase_ok, currents[t], 0.0)
        v = np.maximum(v, config.v_min)
        comparator = active & (v >= threshold)
        counter = np.where(comparator, counter + 1, 0)
        spikes = comparator & spike_ok & ~disabled
        reset_now = comparator & reset_ok
        v = np.where(reset_now, config.v_reset, v)
        refractory = np.where(
            reset_now, config.refractory_period, np.maximum(refractory - 1, 0)
        )
        latched = latched | (comparator & ~reset_ok)
        if config.inhibition_strength > 0 and spikes.any():
            n_spiking = spikes.sum(axis=-1, keepdims=True)
            inhibition = config.inhibition_strength * (n_spiking - spikes)
            v = np.maximum(v - inhibition, config.v_min)
        if has_reset_fault and latched.any():
            v = np.where(latched, np.maximum(v, threshold), v)
        output[t] = spikes
        if triggers is not None:
            disabled = disabled | (counter >= triggers.reshape(-1, 1, 1))
    return output, v, refractory, counter, disabled, latched


def _fresh_state(shape, config, rng=None, latched_init=None):
    """Allocate one ``(rows, batch, neurons)`` kernel state block."""
    v = np.full(shape, config.v_rest, dtype=np.float64)
    if rng is not None:
        v += rng.random(shape)
    latched = np.zeros(shape, dtype=bool)
    if latched_init is not None:
        latched[...] = latched_init
    return {
        "v": v,
        "refractory": np.zeros(shape, dtype=np.int64),
        "counter": np.zeros(shape, dtype=np.int64),
        "disabled": np.zeros(shape, dtype=bool),
        "latched": latched,
    }


def _run_both(currents, masks, threshold, config, backend, triggers=None,
              state=None, workspace=None):
    """Run kernel and reference on identical state; assert bit-identity."""
    shape = currents.shape[1:]
    rng = np.random.default_rng(17)
    if state is None:
        state = _fresh_state(shape, config, rng=rng)
    kernel_state = {key: value.copy() for key, value in state.items()}
    output = np.zeros(currents.shape, dtype=bool)
    lif_advance(
        currents,
        output,
        kernel_state["v"],
        kernel_state["refractory"],
        kernel_state["counter"],
        kernel_state["disabled"],
        kernel_state["latched"],
        np.empty(shape, dtype=bool),
        np.empty(shape, dtype=bool),
        masks,
        threshold,
        config,
        workspace if workspace is not None else KernelWorkspace(),
        triggers=triggers,
        backend=backend,
    )
    expected = _reference_advance(
        currents,
        state["v"].copy(),
        state["refractory"].copy(),
        state["counter"].copy(),
        state["disabled"].copy(),
        state["latched"].copy(),
        masks,
        threshold,
        config,
        triggers=triggers,
    )
    names = ("output", "v", "refractory", "counter", "disabled", "latched")
    actual = (output,) + tuple(
        kernel_state[key] for key in ("v", "refractory", "counter", "disabled", "latched")
    )
    for name, got, want in zip(names, actual, expected):
        assert np.array_equal(got, want), f"{name} diverged ({backend})"
    return output, kernel_state


def _fault_rows(rng, n_neurons):
    """Random fault mask with at least one faulty neuron (index 0)."""
    bad = rng.random(n_neurons) < 0.4
    bad[0] = True
    return bad


def _masks_variant(variant, n_rows, n_neurons, rng):
    """Build an :class:`OperationMasks` for one named fault scenario."""
    statuses = []
    for _ in range(n_rows):
        status = NeuronOperationStatus.healthy(n_neurons)
        if variant in ("leak", "mixed"):
            status.vmem_leak_ok[_fault_rows(rng, n_neurons)] = False
        if variant in ("increase", "mixed"):
            status.vmem_increase_ok[_fault_rows(rng, n_neurons)] = False
        if variant in ("reset", "mixed"):
            status.vmem_reset_ok[_fault_rows(rng, n_neurons)] = False
        if variant in ("spike", "mixed"):
            status.spike_generation_ok[_fault_rows(rng, n_neurons)] = False
        statuses.append(status)
    return OperationMasks.stack(statuses)


VARIANTS = ["healthy", "leak", "increase", "reset", "spike", "mixed"]


class TestLIFAdvance:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matches_reference(self, backend, variant):
        rng = np.random.default_rng(42)
        timesteps, rows, batch, n = 25, 2, 4, 10
        masks = _masks_variant(variant, rows, n, rng)
        currents = rng.random((timesteps, rows, batch, n)) * 2.0 - 0.3
        threshold = 0.8 + rng.random(n)
        _run_both(currents, masks, threshold, CONFIG, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_inhibition(self, backend):
        rng = np.random.default_rng(43)
        config = LIFStepConfig(
            v_rest=CONFIG.v_rest,
            v_reset=CONFIG.v_reset,
            v_min=CONFIG.v_min,
            membrane_decay=CONFIG.membrane_decay,
            refractory_period=CONFIG.refractory_period,
            inhibition_strength=0.0,
        )
        masks = _masks_variant("mixed", 1, 8, rng)
        currents = rng.random((20, 1, 3, 8)) * 2.0
        _run_both(currents, masks, np.full(8, 1.0), config, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_protection_triggers(self, backend):
        # Row 0 trips after 2 consecutive comparator assertions; row 1
        # carries the no-protection sentinel and must stay ungated.
        rng = np.random.default_rng(44)
        rows, n = 2, 6
        masks = _masks_variant("reset", rows, n, rng)
        currents = np.full((30, rows, 3, n), 2.0)
        triggers = np.array([2, NO_PROTECTION_TRIGGER], dtype=np.int64)
        output, state = _run_both(
            currents, masks, np.full(n, 1.0), CONFIG, backend, triggers=triggers
        )
        assert state["disabled"][0].any()
        assert not state["disabled"][1].any()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_carried_latch_state(self, backend):
        # A latch carried in from a previous chunk keeps pinning membranes
        # (the faulty-reset burst coupling across samples).
        rng = np.random.default_rng(45)
        n = 7
        masks = _masks_variant("reset", 1, n, rng)
        latched_init = rng.random((1, 5, n)) < 0.5
        state = _fresh_state((1, 5, n), CONFIG, rng=rng, latched_init=latched_init)
        currents = rng.random((15, 1, 5, n))
        _run_both(
            currents, masks, np.full(n, 1.2), CONFIG, backend, state=state
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_size_batch(self, backend):
        masks = OperationMasks.healthy(5)
        currents = np.zeros((4, 1, 0, 5))
        output, _ = _run_both(currents, masks, np.full(5, 1.0), CONFIG, backend)
        assert output.shape == (4, 1, 0, 5)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_neuron(self, backend):
        rng = np.random.default_rng(46)
        masks = OperationMasks.healthy(1)
        currents = rng.random((12, 1, 3, 1)) * 2.0
        _run_both(currents, masks, np.full(1, 1.0), CONFIG, backend)

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_bitwise_matches_numpy(self):
        rng = np.random.default_rng(47)
        masks = _masks_variant("mixed", 3, 9, rng)
        currents = rng.random((30, 3, 4, 9)) * 2.0 - 0.2
        threshold = 0.7 + rng.random(9)
        triggers = np.array([3, NO_PROTECTION_TRIGGER, 5], dtype=np.int64)
        results = {}
        for backend in ("numpy", "numba"):
            results[backend] = _run_both(
                currents, masks, threshold, CONFIG, backend, triggers=triggers
            )
        output_np, state_np = results["numpy"]
        output_nb, state_nb = results["numba"]
        assert np.array_equal(output_np, output_nb)
        for key in state_np:
            assert np.array_equal(state_np[key], state_nb[key]), key


class TestKernelWorkspace:
    def test_ensure_reuses_buffers_for_same_shape(self):
        workspace = KernelWorkspace()
        workspace.ensure((2, 8, 16))
        buffers = (
            workspace.vbuf,
            workspace.fbuf,
            workspace.active,
            workspace.boolbuf,
            workspace.countbuf,
        )
        workspace.ensure((2, 8, 16))
        assert workspace.vbuf is buffers[0]
        assert workspace.fbuf is buffers[1]
        assert workspace.active is buffers[2]
        assert workspace.boolbuf is buffers[3]
        assert workspace.countbuf is buffers[4]

    def test_ensure_reallocates_on_shape_change(self):
        workspace = KernelWorkspace()
        workspace.ensure((1, 8, 16))
        old = workspace.vbuf
        workspace.ensure((1, 5, 16))
        assert workspace.vbuf is not old
        assert workspace.vbuf.shape == (1, 5, 16)
        assert workspace.countbuf.shape == (1, 5, 1)

    def test_reuse_across_batch_sizes_is_exact(self):
        # One workspace shared by consecutive runs of different batch
        # sizes (the engine's chunk-tail case) must not perturb results.
        rng = np.random.default_rng(48)
        masks = _masks_variant("mixed", 1, 6, rng)
        threshold = np.full(6, 1.0)
        shared = KernelWorkspace()
        for batch in (8, 3, 8):
            currents = np.random.default_rng(batch).random((10, 1, batch, 6)) * 2
            _run_both(
                currents, masks, threshold, CONFIG, "numpy", workspace=shared
            )

    def test_no_per_timestep_allocation(self):
        # The hot loop must only touch the caller's state arrays and the
        # workspace buffers: every timestep sees the same buffer objects.
        n = 6
        masks = _masks_variant("reset", 1, n, np.random.default_rng(49))
        workspace = KernelWorkspace().ensure((1, 4, n))
        frozen = (
            workspace.vbuf,
            workspace.fbuf,
            workspace.active,
            workspace.boolbuf,
            workspace.countbuf,
        )
        shape = (1, 4, n)
        state = _fresh_state(shape, CONFIG, rng=np.random.default_rng(50))
        comparator = np.empty(shape, dtype=bool)
        spikes = np.empty(shape, dtype=bool)
        seen = []

        def hook():
            assert workspace.vbuf is frozen[0]
            assert workspace.fbuf is frozen[1]
            assert workspace.active is frozen[2]
            assert workspace.boolbuf is frozen[3]
            assert workspace.countbuf is frozen[4]
            seen.append(True)

        currents = np.random.default_rng(51).random((20,) + shape) * 2
        lif_advance(
            currents,
            np.zeros(currents.shape, dtype=bool),
            state["v"],
            state["refractory"],
            state["counter"],
            state["disabled"],
            state["latched"],
            comparator,
            spikes,
            masks,
            np.full(n, 1.0),
            CONFIG,
            workspace,
            triggers=np.array([4], dtype=np.int64),
            step_hook=hook,
        )
        assert len(seen) == 20


class TestLIFLearningStep:
    def test_matches_inline_reference(self):
        params = LIFParameters()
        config = LIFStepConfig.from_params(params)
        rng = np.random.default_rng(52)
        n = 12
        v = rng.random(n)
        refractory = rng.integers(0, 3, size=n)
        theta = rng.random(n) * 0.1
        current = rng.random(n) * 2.0

        # The original trainer's inline step, verbatim.
        ref_v = params.v_rest + (v - params.v_rest) * params.membrane_decay
        active = refractory <= 0
        ref_v = ref_v + np.where(active, current, 0.0)
        ref_v = np.maximum(ref_v, params.v_min)
        ref_theta = theta.copy()
        ref_spikes = active & (ref_v >= params.v_threshold + ref_theta)
        ref_v = np.where(ref_spikes, params.v_reset, ref_v)
        ref_refractory = np.where(
            ref_spikes, params.refractory_period, np.maximum(refractory - 1, 0)
        )
        theta_decay = 0.95
        theta_plus = params.theta_plus
        ref_theta *= theta_decay
        ref_theta += theta_plus * ref_spikes.astype(np.float64)
        if params.inhibition_strength > 0 and ref_spikes.any():
            inhibition = params.inhibition_strength * (
                int(ref_spikes.sum()) - ref_spikes.astype(np.float64)
            )
            ref_v = np.maximum(ref_v - inhibition, params.v_min)

        got_theta = theta.copy()
        got_v, got_refractory, got_spikes = lif_learning_step(
            v.copy(),
            refractory.copy(),
            got_theta,
            current,
            config,
            params.v_threshold,
            theta_plus,
            theta_decay,
        )
        assert np.array_equal(got_v, ref_v)
        assert np.array_equal(got_refractory, ref_refractory)
        assert np.array_equal(got_spikes, ref_spikes)
        assert np.array_equal(got_theta, ref_theta)


# ---------------------------------------------------------------------- #
# backend selection
# ---------------------------------------------------------------------- #
class TestBackendSelection:
    def test_unknown_backend_falls_back_to_numpy(self):
        assert set_backend("bogus") == "numpy"
        assert kernels.get_backend() == "numpy"

    def test_numba_request_resolves_by_availability(self):
        resolved = set_backend("numba")
        assert resolved == ("numba" if numba_available() else "numpy")

    def test_none_re_resolves_environment(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "numpy")
        assert set_backend(None) == "numpy"
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "NUMPY")
        assert set_backend(None) == "numpy"  # case-insensitive

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "cuda")
        assert set_backend(None) == "numpy"


# ---------------------------------------------------------------------- #
# batch-size autotuning + explicit-knob overrides
# ---------------------------------------------------------------------- #
class TestAutotune:
    def test_result_is_a_candidate(self):
        clear_autotune_cache()
        size = autotune_batch_size(16, 64, candidates=(4, 8), probe_timesteps=2)
        assert size in (4, 8)

    def test_cached_per_geometry(self, monkeypatch):
        clear_autotune_cache()
        first = autotune_batch_size(16, 64, candidates=(4, 8), probe_timesteps=2)

        def boom(*args, **kwargs):
            raise AssertionError("probe re-ran despite a cached decision")

        monkeypatch.setattr(kernels, "register_gemm", boom)
        second = autotune_batch_size(16, 64, candidates=(4, 8), probe_timesteps=2)
        assert second == first

    def test_kill_switch_pins_default(self, monkeypatch):
        clear_autotune_cache()
        monkeypatch.setenv(kernels.AUTOTUNE_ENV, "off")

        def boom(*args, **kwargs):
            raise AssertionError("probe ran despite SOFTSNN_AUTOTUNE=off")

        monkeypatch.setattr(kernels, "register_gemm", boom)
        assert autotune_batch_size(16, 64) == DEFAULT_BATCH_SIZE

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            autotune_batch_size(0, 64)
        with pytest.raises(ValueError):
            autotune_batch_size(16, -1)

    def test_empty_candidates_raise(self):
        clear_autotune_cache()
        with pytest.raises(ValueError):
            autotune_batch_size(16, 64, candidates=(0, -4))


class TestExplicitKnobWins:
    """Explicit batch-size knobs must bypass the autotuner everywhere."""

    def _engine(self):
        from repro.snn.inference import InferenceEngine
        from repro.snn.network import DiehlCookNetwork, NetworkConfig

        network = DiehlCookNetwork(
            NetworkConfig(n_inputs=784, n_neurons=8, timesteps=15), rng=0
        )
        labels = np.arange(8, dtype=np.int64) % 2
        return InferenceEngine(network, labels)

    def _dataset(self):
        from repro.data.synthetic_mnist import SyntheticMNIST

        return SyntheticMNIST().generate(n_samples=3, rng=13)

    def test_evaluate_explicit_batch_size_skips_autotuner(self, monkeypatch):
        import repro.snn.inference as inference_module

        def boom(*args, **kwargs):
            raise AssertionError("autotuner consulted despite explicit knob")

        monkeypatch.setattr(inference_module, "autotune_batch_size", boom)
        result = self._engine().evaluate(
            self._dataset(), rng=np.random.default_rng(1), batch_size=2
        )
        assert len(result.predictions) == 3

    def test_evaluate_default_consults_autotuner(self, monkeypatch):
        import repro.snn.inference as inference_module

        calls = []

        def fake(n_neurons, n_inputs):
            calls.append((n_neurons, n_inputs))
            return 2

        monkeypatch.setattr(inference_module, "autotune_batch_size", fake)
        result = self._engine().evaluate(
            self._dataset(), rng=np.random.default_rng(1)
        )
        assert calls == [(8, 784)]
        assert len(result.predictions) == 3

    def test_evaluate_autotuned_chunking_is_bit_identical(self):
        engine = self._engine()
        dataset = self._dataset()
        autotuned = engine.evaluate(dataset, rng=np.random.default_rng(2))
        explicit = self._engine().evaluate(
            dataset, rng=np.random.default_rng(2), batch_size=1
        )
        assert np.array_equal(autotuned.predictions, explicit.predictions)
        assert np.array_equal(autotuned.spike_counts, explicit.spike_counts)

    def test_scheduler_none_falls_back_to_default(self):
        from repro.serve.scheduler import MicroBatchScheduler

        scheduler = MicroBatchScheduler(lambda payloads: payloads)
        try:
            assert scheduler.max_batch_size == DEFAULT_BATCH_SIZE
        finally:
            scheduler.close()

    def test_scheduler_explicit_wins(self):
        from repro.serve.scheduler import MicroBatchScheduler

        scheduler = MicroBatchScheduler(
            lambda payloads: payloads, max_batch_size=5
        )
        try:
            assert scheduler.max_batch_size == 5
        finally:
            scheduler.close()

    def test_service_explicit_max_batch_size_wins(self, monkeypatch):
        import repro.serve.service as service_module

        def boom(*args, **kwargs):
            raise AssertionError("autotuner consulted despite explicit knob")

        monkeypatch.setattr(service_module, "autotune_batch_size", boom)
        stub = types.SimpleNamespace(
            config=types.SimpleNamespace(max_batch_size=7)
        )
        session = types.SimpleNamespace(
            network=types.SimpleNamespace(n_neurons=8, n_inputs=784)
        )
        resolved = service_module.SoftSNNService._resolve_max_batch_size(
            stub, session
        )
        assert resolved == 7

    def test_service_default_autotunes_per_model_geometry(self, monkeypatch):
        import repro.serve.service as service_module

        calls = []

        def fake(n_neurons, n_inputs):
            calls.append((n_neurons, n_inputs))
            return 11

        monkeypatch.setattr(service_module, "autotune_batch_size", fake)
        stub = types.SimpleNamespace(
            config=types.SimpleNamespace(max_batch_size=None)
        )
        session = types.SimpleNamespace(
            network=types.SimpleNamespace(n_neurons=20, n_inputs=784)
        )
        resolved = service_module.SoftSNNService._resolve_max_batch_size(
            stub, session
        )
        assert resolved == 11
        assert calls == [(20, 784)]
