"""Tests for the evaluation harness: experiments, sweeps, overheads, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mitigation import BnPTechnique, NoMitigation
from repro.core.bound_and_protect import BnPVariant
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.overheads import overhead_tables_for_sizes
from repro.eval.reporting import format_series, format_table
from repro.eval.sweep import FaultRateSweep
from repro.hardware.enhancements import MitigationKind


class TestExperimentConfig:
    def test_label_formats(self):
        config = ExperimentConfig(workload="mnist", n_neurons=80)
        assert config.label() == "mnist/N80"
        proxy = config.with_network_size(80, paper_network_size=400)
        assert "N400" in proxy.label()

    def test_network_and_training_configs(self):
        config = ExperimentConfig(n_neurons=30, timesteps=70, epochs=3)
        assert config.network_config().n_neurons == 30
        assert config.network_config().timesteps == 70
        assert config.training_config().epochs == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_neurons=0)
        with pytest.raises(ValueError):
            ExperimentConfig(n_train=0)
        with pytest.raises(ValueError):
            ExperimentConfig(seed=-1)


class TestExperimentRunner:
    def test_prepare_trains_and_caches(self):
        runner = ExperimentRunner(root_seed=1)
        config = ExperimentConfig(
            workload="mnist", n_neurons=12, n_train=30, n_test=10, timesteps=40
        )
        first = runner.prepare(config)
        second = runner.prepare(config)
        assert first is second  # cached
        assert first.model.n_neurons == 12
        assert len(first.train_set) + len(first.test_set) == 40

    def test_different_configs_not_shared(self):
        runner = ExperimentRunner(root_seed=1)
        a = runner.prepare(
            ExperimentConfig(n_neurons=10, n_train=24, n_test=8, timesteps=40)
        )
        b = runner.prepare(
            ExperimentConfig(n_neurons=14, n_train=24, n_test=8, timesteps=40)
        )
        assert a is not b
        runner.clear_cache()
        assert runner.prepare(a.config) is not a

    def test_paper_size_proxy_not_aliased_in_cache(self):
        # paper_network_size participates in the seed-stream label, so a
        # proxy config must not reuse the plain config's cached assets.
        runner = ExperimentRunner(root_seed=1)
        plain = ExperimentConfig(n_neurons=10, n_train=24, n_test=8, timesteps=40)
        proxy = plain.with_network_size(10, paper_network_size=400)
        a = runner.prepare(plain)
        b = runner.prepare(proxy)
        assert a is not b
        assert not np.array_equal(a.test_set.images, b.test_set.images)

    def test_same_root_seed_reproducible(self):
        config = ExperimentConfig(n_neurons=10, n_train=24, n_test=8, timesteps=40)
        model_a = ExperimentRunner(root_seed=5).prepare(config).model
        model_b = ExperimentRunner(root_seed=5).prepare(config).model
        assert np.array_equal(model_a.weights, model_b.weights)

    def test_clean_accuracy_batched_and_cached(self):
        config = ExperimentConfig(
            n_neurons=10, n_train=24, n_test=8, timesteps=40, eval_batch_size=3
        )
        runner = ExperimentRunner(root_seed=5)
        prepared = runner.prepare(config)
        assert prepared.clean_accuracy is None
        assert prepared.clean_accuracy_hint is None
        accuracy = runner.clean_accuracy(prepared)
        assert 0.0 <= accuracy <= 100.0
        # The measurement lands in the declared dataclass field (the hint
        # property is the backwards-compatible read path).
        assert prepared.clean_accuracy == accuracy
        assert prepared.clean_accuracy_hint == accuracy
        assert runner.clean_accuracy(prepared) == accuracy

    def test_eval_batch_size_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(eval_batch_size=0)


class TestFaultRateSweep:
    def test_sweep_produces_paired_series(self, trained_model, small_split):
        _, test_set = small_split
        subset = test_set.subset(np.arange(min(10, len(test_set))))
        techniques = [NoMitigation(), BnPTechnique(BnPVariant.BNP3)]
        sweep = FaultRateSweep(trained_model, subset, techniques, n_trials=1)
        result = sweep.run(fault_rates=[1e-3, 1e-1], rng=9, label="test-sweep")
        assert result.fault_rates == [1e-3, 1e-1]
        assert set(result.techniques) == {
            MitigationKind.NO_MITIGATION,
            MitigationKind.BNP3,
        }
        for series in result.techniques.values():
            assert len(series.accuracies) == 2
            assert all(0.0 <= acc <= 100.0 for acc in series.accuracies)
        assert result.clean_accuracy > 0.0
        rows = result.accuracy_table()
        assert len(rows) == 2 and len(rows[0]) == 3

    def test_accuracy_at_tolerates_recomputed_rates(self, trained_model, small_split):
        _, test_set = small_split
        subset = test_set.subset(np.arange(5))
        result = FaultRateSweep(trained_model, subset, [NoMitigation()]).run(
            fault_rates=[1e-1, 1e-3], rng=12
        )
        series = result.techniques[MitigationKind.NO_MITIGATION]
        # Rates recomputed elsewhere (10**-1, a lossy sum) must still
        # resolve to the swept entries instead of raising KeyError.
        assert series.accuracy_at(10 ** -1) == series.accuracies[0]
        assert series.accuracy_at(0.0001 * 10) == series.accuracies[1]
        with pytest.raises(KeyError):
            series.accuracy_at(5e-2)

    def test_improvement_helper(self, trained_model, small_split):
        _, test_set = small_split
        subset = test_set.subset(np.arange(min(8, len(test_set))))
        sweep = FaultRateSweep(
            trained_model, subset, [NoMitigation(), BnPTechnique(BnPVariant.BNP1)]
        )
        result = sweep.run(fault_rates=[1e-1], rng=10)
        improvement = result.improvement_over_no_mitigation(MitigationKind.BNP1)
        assert isinstance(improvement, float)
        with pytest.raises(KeyError):
            result.techniques[MitigationKind.BNP1].accuracy_at(0.5)

    def test_summary_is_json_friendly(self, trained_model, small_split):
        _, test_set = small_split
        subset = test_set.subset(np.arange(5))
        result = FaultRateSweep(
            trained_model, subset, [NoMitigation()], n_trials=2
        ).run(fault_rates=[1e-2], rng=11)
        summary = result.summary()
        series = summary["techniques"]["no_mitigation"]
        # Raw per-trial accuracies survive serialisation (campaign store
        # requirement) alongside the per-rate means.
        assert summary["n_trials"] == 2
        assert len(series["per_trial"]) == 1 and len(series["per_trial"][0]) == 2
        assert series["accuracies"][0] == sum(series["per_trial"][0]) / 2
        from repro.eval.sweep import SweepResult

        assert SweepResult.from_summary(summary).summary() == summary

    def test_validation(self, trained_model, small_split):
        _, test_set = small_split
        with pytest.raises(ValueError):
            FaultRateSweep(trained_model, test_set, [])
        with pytest.raises(ValueError):
            FaultRateSweep(trained_model, test_set, [NoMitigation()], n_trials=0)


class TestOverheadTables:
    def test_paper_size_sweep(self):
        tables = overhead_tables_for_sizes()
        latency = tables["latency"]
        assert latency.row(MitigationKind.NO_MITIGATION) == pytest.approx(
            [1.0, 2.0, 3.5, 5.0, 7.5]
        )
        assert latency.row(MitigationKind.RE_EXECUTION) == pytest.approx(
            [3.0, 6.0, 10.5, 15.0, 22.5]
        )
        energy = tables["energy"]
        assert energy.row(MitigationKind.BNP1)[0] == pytest.approx(1.3, abs=0.02)
        area = tables["area"]
        assert area.row(MitigationKind.BNP1) == pytest.approx([1.14] * 5, abs=0.01)

    def test_savings_helper(self):
        tables = overhead_tables_for_sizes(network_sizes=[400])
        savings = tables["latency"].savings_versus(
            MitigationKind.BNP1, reference=MitigationKind.RE_EXECUTION
        )
        assert savings[0] == pytest.approx(3.0)

    def test_as_rows(self):
        table = overhead_tables_for_sizes(network_sizes=[400, 900])["latency"]
        rows = table.as_rows()
        assert len(rows) == len(MitigationKind.all_kinds())
        assert all(len(row) == 3 for row in rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            overhead_tables_for_sizes(network_sizes=[])
        with pytest.raises(ValueError):
            overhead_tables_for_sizes(network_sizes=[0])


class TestReporting:
    def test_format_table_alignment_and_content(self):
        text = format_table(
            ["technique", "acc"],
            [["bnp1", 91.234], ["no_mitigation", 10.0]],
            title="Fig. X",
        )
        assert "Fig. X" in text
        assert "bnp1" in text and "91.23" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("bnp1", [1e-3, 1e-1], [90.0, 88.5], x_label="fault rate")
        assert "bnp1" in text and "0.00" in text or "0.001" in text
        assert "88.50" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], [1.0])
