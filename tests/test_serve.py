"""Tests of the online serving layer (``repro.serve``).

The load-bearing assertion is the scheduler parity suite: a prediction
served through the adaptive micro-batching path must be bit-identical to
direct :meth:`repro.snn.inference.InferenceEngine.evaluate` of the same
``(image, seed)`` pair on an identically built network, in all three
serving modes — so the online service inherits the engine's spike-exactness
guarantee instead of trading it for throughput.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.serve.loadgen import run_closed_loop
from repro.serve.modes import ServingMode, build_session
from repro.serve.registry import (
    ModelNotFoundError,
    ModelRegistry,
    SnapshotIntegrityError,
)
from repro.serve.scheduler import MicroBatchScheduler
from repro.serve.service import (
    InProcessClient,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SoftSNNService,
)
from repro.snn.training import TrainedModel


# --------------------------------------------------------------------- #
# shared fixtures
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serve_model(trained_model) -> TrainedModel:
    """Alias fixture making the serving tests' dependency explicit."""
    return trained_model


@pytest.fixture()
def registry(tmp_path, serve_model) -> ModelRegistry:
    registry = ModelRegistry(tmp_path / "models")
    registry.register(serve_model, "tiny-mnist", workload="mnist")
    return registry


@pytest.fixture()
def service(registry) -> SoftSNNService:
    svc = SoftSNNService(
        ServiceConfig(
            models_dir=registry.root,
            max_batch_size=4,
            max_delay_ms=4.0,
            default_fault_rate=0.2,
        ),
        registry=registry,
    )
    yield svc
    svc.close()


def _test_images(small_split, count: int):
    _, test_set = small_split
    return [test_set.images[index].reshape(-1) for index in range(count)]


def _direct_predictions(model, mode, images, seeds):
    """Reference: per-sample InferenceEngine.evaluate on a fresh session."""
    predictions = []
    for image, seed in zip(images, seeds):
        session = build_session(model, mode)
        sample_set = Dataset(
            images=np.asarray(image).reshape(1, 28, 28),
            labels=np.zeros(1, dtype=np.int64),
        )
        result = session.inference.evaluate(
            sample_set,
            rng=int(seed),
            effective_weights=session.effective_weights,
            step_monitor=session.protection,
        )
        predictions.append(int(result.predictions[0]))
    return predictions


# --------------------------------------------------------------------- #
# serving modes
# --------------------------------------------------------------------- #
class TestServingMode:
    def test_clean_rejects_fault_rate(self):
        with pytest.raises(ValueError):
            ServingMode(kind="clean", fault_rate=0.1)

    def test_faulty_requires_fault_rate(self):
        with pytest.raises(ValueError):
            ServingMode(kind="faulty", fault_rate=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ServingMode(kind="turbo")

    def test_from_request_accepts_string_and_dict(self):
        assert ServingMode.from_request("clean").kind == "clean"
        mode = ServingMode.from_request(
            {"kind": "protected", "fault_rate": 0.1, "variant": "bnp1"},
        )
        assert mode.kind == "protected"
        assert mode.fault_rate == 0.1
        assert mode.variant.value == "bnp1"

    def test_from_request_applies_defaults(self):
        mode = ServingMode.from_request("faulty", default_fault_rate=0.07)
        assert mode.fault_rate == 0.07

    def test_from_request_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown mode fields"):
            ServingMode.from_request({"kind": "clean", "speed": 11})

    def test_cache_key_distinguishes_scenarios(self):
        a = ServingMode.faulty(0.1, fault_seed=1)
        b = ServingMode.faulty(0.1, fault_seed=2)
        assert a.cache_key != b.cache_key
        assert a.cache_key == ServingMode.faulty(0.1, fault_seed=1).cache_key

    def test_build_session_is_deterministic(self, serve_model):
        mode = ServingMode.faulty(0.3, fault_seed=11)
        first = build_session(serve_model, mode)
        second = build_session(serve_model, mode)
        assert np.array_equal(
            first.network.synapses.registers, second.network.synapses.registers
        )
        status_a = first.network.neurons.operation_status
        status_b = second.network.neurons.operation_status
        assert np.array_equal(status_a.vmem_reset_ok, status_b.vmem_reset_ok)
        assert first.fault_report.n_synapse_faults > 0


# --------------------------------------------------------------------- #
# micro-batch scheduler
# --------------------------------------------------------------------- #
class TestMicroBatchScheduler:
    def test_coalesces_up_to_max_batch_size(self):
        seen = []

        def run_batch(payloads):
            seen.append(len(payloads))
            return payloads

        with MicroBatchScheduler(
            run_batch, max_batch_size=4, max_delay=0.2
        ) as scheduler:
            futures = [scheduler.submit(i) for i in range(8)]
            assert [f.result(timeout=5) for f in futures] == list(range(8))
        assert sum(seen) == 8
        assert max(seen) <= 4
        # Eight back-to-back submits against a 200ms deadline must produce
        # at least one full batch — the coalescing path, not one-by-one.
        assert scheduler.stats.flush_full >= 1
        assert scheduler.stats.mean_batch_size > 1.0

    def test_deadline_flushes_partial_batch(self):
        def run_batch(payloads):
            return payloads

        # idle_grace >= max_delay disables the idle heuristic, leaving the
        # pure max-batch / max-delay policy.
        with MicroBatchScheduler(
            run_batch, max_batch_size=64, max_delay=0.02, idle_grace=1.0
        ) as scheduler:
            started = time.monotonic()
            future = scheduler.submit("lonely")
            assert future.result(timeout=5) == "lonely"
            elapsed = time.monotonic() - started
        assert scheduler.stats.flush_deadline == 1
        assert scheduler.stats.batch_size_histogram == {1: 1}
        assert elapsed < 1.0  # flushed by deadline, not by a filled batch

    def test_idle_arrival_stream_flushes_early(self):
        def run_batch(payloads):
            return payloads

        # A long deadline with a short idle grace: the lonely request must
        # be flushed by the idle heuristic well before the deadline.
        with MicroBatchScheduler(
            run_batch, max_batch_size=64, max_delay=5.0, idle_grace=0.01
        ) as scheduler:
            started = time.monotonic()
            future = scheduler.submit("quiet")
            assert future.result(timeout=5) == "quiet"
            elapsed = time.monotonic() - started
        assert elapsed < 1.0  # far below the 5s deadline
        assert scheduler.stats.flush_idle == 1

    def _blocked_scheduler(self, max_batch_size=2, max_delay=0.01):
        """Scheduler whose worker blocks inside its first batch execution.

        Returns ``(scheduler, first_entered, release)``: ``first_entered``
        is set once the worker is inside ``run_batch`` (holding no lock),
        ``release`` unblocks it.  While blocked, submits pile up in the
        queue — the deterministic setup for flush-attribution tests.
        """
        release = threading.Event()
        first_entered = threading.Event()
        calls = []

        def run_batch(payloads):
            calls.append(len(payloads))
            if len(calls) == 1:
                first_entered.set()
                release.wait(timeout=5.0)
            return payloads

        scheduler = MicroBatchScheduler(
            run_batch,
            max_batch_size=max_batch_size,
            max_delay=max_delay,
            idle_grace=5.0,  # >= max_delay: idle heuristic disabled
        )
        return scheduler, first_entered, release

    def test_close_drain_of_full_queue_counts_flush_close(self):
        # Regression: batches drained by close() used to be misattributed
        # to flush_full whenever they happened to be full.
        scheduler, first_entered, release = self._blocked_scheduler()
        futures = [scheduler.submit(0)]
        assert first_entered.wait(timeout=5.0)
        futures += [scheduler.submit(value) for value in range(1, 5)]

        closer = threading.Thread(target=scheduler.close)
        closer.start()
        time.sleep(0.05)  # let close() mark the scheduler closed
        release.set()
        closer.join(timeout=5.0)

        assert [f.result(timeout=5.0) for f in futures] == [0, 1, 2, 3, 4]
        # First batch: the lonely request, flushed by its deadline.  The
        # four queued requests drain as two full-size batches, but the
        # trigger was the close, not fullness.
        assert scheduler.stats.flush_close == 2
        assert scheduler.stats.flush_full == 0

    def test_deadline_expiry_beats_fullness_attribution(self):
        # Regression: a batch whose deadline expired while the queue
        # happened to fill used to be misattributed to flush_full.
        scheduler, first_entered, release = self._blocked_scheduler()
        futures = [scheduler.submit(0)]
        assert first_entered.wait(timeout=5.0)
        futures += [scheduler.submit(1), scheduler.submit(2)]
        time.sleep(0.05)  # far beyond the 10ms deadline of both requests
        release.set()
        assert [f.result(timeout=5.0) for f in futures] == [0, 1, 2]
        scheduler.close()

        # Both flushes — the lonely first request and the full-but-expired
        # pair — were triggered by their deadlines.
        assert scheduler.stats.flush_deadline == 2
        assert scheduler.stats.flush_full == 0
        assert scheduler.stats.flush_close == 0

    def test_batch_failure_propagates_to_every_future(self):
        def run_batch(payloads):
            raise RuntimeError("engine exploded")

        with MicroBatchScheduler(
            run_batch, max_batch_size=4, max_delay=0.01
        ) as scheduler:
            futures = [scheduler.submit(i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="engine exploded"):
                    future.result(timeout=5)
        assert scheduler.stats.failed == 3

    def test_wrong_result_count_is_an_error(self):
        def run_batch(payloads):
            return payloads[:-1]

        with MicroBatchScheduler(
            run_batch, max_batch_size=8, max_delay=0.01
        ) as scheduler:
            future = scheduler.submit("x")
            with pytest.raises(RuntimeError, match="returned 0 results"):
                future.result(timeout=5)

    def test_close_drains_pending_requests(self):
        release = threading.Event()

        def run_batch(payloads):
            release.wait(timeout=5)
            return payloads

        scheduler = MicroBatchScheduler(run_batch, max_batch_size=2, max_delay=10.0)
        futures = [scheduler.submit(i) for i in range(5)]
        release.set()
        scheduler.close()
        assert [f.result(timeout=1) for f in futures] == list(range(5))
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit("late")

    def test_concurrent_submitters_all_complete(self):
        def run_batch(payloads):
            return [p * 2 for p in payloads]

        results = {}
        with MicroBatchScheduler(
            run_batch, max_batch_size=8, max_delay=0.002
        ) as scheduler:

            def submitter(base):
                for offset in range(20):
                    value = base * 100 + offset
                    results[value] = scheduler.submit(value)

            threads = [
                threading.Thread(target=submitter, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for value, future in results.items():
                assert future.result(timeout=5) == value * 2
        assert scheduler.stats.completed == 80


# --------------------------------------------------------------------- #
# model registry
# --------------------------------------------------------------------- #
class TestModelRegistry:
    def test_register_and_load_round_trip(self, registry, serve_model):
        assert registry.names() == ["tiny-mnist"]
        loaded = registry.load("tiny-mnist")
        assert np.array_equal(loaded.weights, serve_model.weights)

    def test_discovers_bare_snapshots(self, tmp_path, serve_model):
        serve_model.save(tmp_path / "dropped-in")
        registry = ModelRegistry(tmp_path)
        assert "dropped-in" in registry.names()
        entry = registry.entry("dropped-in")
        assert entry.workload is None  # no sidecar: adopted without a tag
        assert set(entry.checksums) == {"npz", "json"}
        assert registry.load("dropped-in").n_neurons == serve_model.n_neurons

    def test_checksum_mismatch_refused(self, registry):
        entry = registry.entry("tiny-mnist")
        # Corrupt the array payload behind the registry's back.
        entry.npz_path.write_bytes(b"PK\x03\x04 not actually a model")
        registry._models.clear()  # force a cold load
        with pytest.raises(SnapshotIntegrityError, match="checksum mismatch"):
            registry.load("tiny-mnist")

    def test_resolve_by_workload_and_size(self, registry, serve_model):
        registry.register(serve_model, "second-mnist", workload="mnist")
        entry = registry.resolve(workload="mnist", n_neurons=serve_model.n_neurons)
        assert entry.name == "second-mnist"  # first in sorted order
        with pytest.raises(ModelNotFoundError):
            registry.resolve(workload="fashion-mnist")
        with pytest.raises(ModelNotFoundError):
            registry.resolve(name="nope")

    def test_warm_session_lru_eviction(self, tmp_path, serve_model):
        registry = ModelRegistry(tmp_path, max_warm_sessions=2)
        registry.register(serve_model, "m", workload="mnist")
        modes = [
            ServingMode.clean(),
            ServingMode.faulty(0.1, fault_seed=1),
            ServingMode.faulty(0.1, fault_seed=2),
        ]
        sessions = [registry.session("m", mode) for mode in modes]
        assert registry.warm_session_count == 2
        # The oldest session was evicted; re-requesting it rebuilds an
        # equivalent one (determinism makes eviction behaviour-invisible).
        rebuilt = registry.session("m", modes[0])
        assert rebuilt is not sessions[0]
        assert rebuilt.mode == modes[0]
        # The most recent survivor is still the same object.
        assert registry.session("m", modes[2]) is sessions[2]

    def test_reregister_replaces_warm_model(self, registry, serve_model):
        registry.load("tiny-mnist")  # warm the cache with the original
        modified = dataclasses.replace(serve_model, weights=serve_model.weights * 0.5)
        registry.register(modified, "tiny-mnist", workload="mnist")
        assert np.array_equal(
            registry.load("tiny-mnist").weights, modified.weights
        )

    def test_dotted_names_rejected_and_not_adopted(
        self, tmp_path, registry, serve_model
    ):
        # Path.with_suffix would truncate "model.v2" onto "model.npz",
        # silently overwriting another model — so dots are refused outright.
        with pytest.raises(ValueError, match="invalid model name"):
            registry.register(serve_model, "tiny-mnist.v2")
        # Dotted bare snapshots are skipped at discovery for the same reason
        # (TrainedModel.load would resolve "bad.v2.npz" -> "bad.json").
        serve_model.save(tmp_path / "ok")
        (tmp_path / "ok.npz").rename(tmp_path / "bad.v2.npz")
        (tmp_path / "ok.json").rename(tmp_path / "bad.v2.json")
        assert ModelRegistry(tmp_path).names() == []

    def test_retrain_in_place(self, registry, small_split):
        train_set, _ = small_split
        from repro.snn.training import TrainingConfig

        before = registry.entry("tiny-mnist")
        entry = registry.retrain(
            "tiny-mnist",
            train_set,
            rng=5,
            training_config=TrainingConfig(
                epochs=1, learning_mode="fast_wta", label_assignment_mode="fast"
            ),
        )
        # Same identity, fresh bytes, workload tag preserved, and the
        # republished snapshot loads cleanly (checksums re-recorded).
        assert entry.name == "tiny-mnist"
        assert entry.workload == "mnist"
        assert entry.checksums != before.checksums
        reloaded = registry.load("tiny-mnist")
        assert reloaded.n_neurons == before.n_neurons
        entry.verify()

        # The retrain is deterministic and engine-backed: an offline
        # sequential retrain from the same seed yields the same weights.
        from repro.snn.training import TrainingRunner

        offline = TrainingRunner(
            reloaded.network_config,
            TrainingConfig(
                epochs=1, learning_mode="fast_wta", label_assignment_mode="fast"
            ),
        ).train_sequential(train_set, rng=5)
        assert np.array_equal(offline.weights, reloaded.weights)

    def test_retrain_refuses_tampered_snapshot(self, registry, small_split):
        """A modified sidecar must not be laundered into fresh checksums."""
        train_set, _ = small_split
        from repro.snn.training import TrainingConfig

        json_path = registry.entry("tiny-mnist").json_path
        json_path.write_text(
            json_path.read_text().replace('"n_neurons": 20', '"n_neurons": 10')
        )
        with pytest.raises(SnapshotIntegrityError):
            registry.retrain("tiny-mnist", train_set, TrainingConfig(), rng=1)

    def test_retrain_unknown_name(self, registry, small_split):
        train_set, _ = small_split
        from repro.snn.training import TrainingConfig

        with pytest.raises(ModelNotFoundError):
            registry.retrain("nope", train_set, TrainingConfig(), rng=1)


# --------------------------------------------------------------------- #
# scheduler parity (the acceptance criterion)
# --------------------------------------------------------------------- #
class TestSchedulerParity:
    @pytest.mark.parametrize(
        "mode_spec",
        [
            "clean",
            {"kind": "faulty", "fault_rate": 0.25, "fault_seed": 17},
            {"kind": "protected", "fault_rate": 0.25, "fault_seed": 17},
        ],
        ids=["clean", "faulty", "protected"],
    )
    def test_served_equals_direct_evaluation(
        self, service, serve_model, small_split, mode_spec
    ):
        images = _test_images(small_split, 10)
        seeds = [5000 + index for index in range(len(images))]
        served = service.classify(
            images, model="tiny-mnist", mode=mode_spec, seeds=seeds
        )
        mode = service.resolve_mode(mode_spec)
        expected = _direct_predictions(serve_model, mode, images, seeds)
        assert served.predictions == expected
        # The requests really were micro-batched, not trivially size-1.
        stats = service.metrics_snapshot()
        assert stats["mean_batch_size"] > 1.0

    def test_prediction_independent_of_batch_composition(
        self, service, small_split
    ):
        """The same (image, seed) answers identically alone or co-batched."""
        images = _test_images(small_split, 6)
        seeds = [7000 + index for index in range(len(images))]
        mode = {"kind": "faulty", "fault_rate": 0.3, "fault_seed": 3}
        batched = service.classify(
            images, model="tiny-mnist", mode=mode, seeds=seeds
        ).predictions
        solo = [
            service.classify(
                [image], model="tiny-mnist", mode=mode, seeds=[seed]
            ).predictions[0]
            for image, seed in zip(images, seeds)
        ]
        assert batched == solo

    def test_repeated_request_is_deterministic(self, service, small_split):
        image = _test_images(small_split, 1)[0]
        first = service.classify([image], model="tiny-mnist", seeds=[42])
        second = service.classify([image], model="tiny-mnist", seeds=[42])
        assert first.predictions == second.predictions

    def test_reregistered_model_serves_new_weights(
        self, service, serve_model, small_split
    ):
        """The scheduler pipeline must not stay bound to a stale session."""
        images = _test_images(small_split, 4)
        seeds = [100, 101, 102, 103]
        before = service.classify(
            images, model="tiny-mnist", mode="clean", seeds=seeds
        ).predictions
        # Re-register in place with visibly different weights (zero out the
        # crossbar: a silent network deterministically predicts class 0).
        silenced = dataclasses.replace(
            serve_model,
            weights=np.zeros_like(serve_model.weights),
            clean_max_weight=serve_model.clean_max_weight,
        )
        service.register_model(silenced, "tiny-mnist", workload="mnist")
        after = service.classify(
            images, model="tiny-mnist", mode="clean", seeds=seeds
        ).predictions
        assert after == [0, 0, 0, 0]
        assert after != before  # the stale session would have repeated these

    def test_dropped_in_snapshot_served_without_restart(
        self, service, serve_model, small_split
    ):
        """An unknown name triggers one re-scan before the request 404s."""
        serve_model.save(service.registry.root / "late-arrival")
        image = _test_images(small_split, 1)[0]
        response = service.classify([image], model="late-arrival", seeds=[5])
        assert response.model == "late-arrival"

    def test_in_place_rewrite_served_after_models_scan(
        self, service, serve_model, small_split
    ):
        """GET /models re-discovers a snapshot atomically re-trained in place."""
        images = _test_images(small_split, 2)
        seeds = [60, 61]
        before = service.classify(
            images, model="tiny-mnist", seeds=seeds
        ).predictions
        silenced = dataclasses.replace(
            serve_model, weights=np.zeros_like(serve_model.weights)
        )
        # Overwrite the snapshot files directly (atomic writers), leaving
        # the registration-time sidecar checksums stale.
        silenced.save(service.registry.root / "tiny-mnist")
        listing = service.models()  # the GET /models body; triggers refresh
        assert listing[0]["warm"] is False  # stale warm caches invalidated
        after = service.classify(
            images, model="tiny-mnist", seeds=seeds
        ).predictions
        assert after == [0, 0]  # a silent network always votes class 0
        assert after != before

    def test_pipeline_cache_is_bounded(self, registry, small_split):
        service = SoftSNNService(
            ServiceConfig(
                models_dir=registry.root, max_warm_sessions=2, max_delay_ms=1.0
            ),
            registry=registry,
        )
        try:
            image = _test_images(small_split, 1)[0]
            for fault_seed in range(4):
                service.classify(
                    [image],
                    model="tiny-mnist",
                    mode={"kind": "faulty", "fault_rate": 0.1, "fault_seed": fault_seed},
                    seeds=[1],
                )
            assert len(service._pipelines) <= 2
        finally:
            service.close()


# --------------------------------------------------------------------- #
# serve.classify span instrumentation
# --------------------------------------------------------------------- #
class TestServeTracing:
    def test_classify_span_emitted_and_predictions_identical(
        self, service, small_split, tmp_path
    ):
        """Tracing must observe the request without changing its answer."""
        import json

        from repro.obs import configure_trace

        images = _test_images(small_split, 4)
        seeds = [9000 + index for index in range(len(images))]
        baseline = service.classify(
            images, model="tiny-mnist", mode="clean", seeds=seeds
        ).predictions
        sink = tmp_path / "trace.jsonl"
        configure_trace(str(sink))
        try:
            traced = service.classify(
                images, model="tiny-mnist", mode="clean", seeds=seeds
            ).predictions
        finally:
            configure_trace(None)
        assert traced == baseline
        events = [json.loads(line) for line in sink.read_text().splitlines()]
        spans = [event for event in events if event["name"] == "serve.classify"]
        assert len(spans) == 1
        attributes = spans[0]["attributes"]
        assert attributes["model"] == "tiny-mnist"
        assert attributes["mode"] == "clean"
        assert attributes["n_images"] == len(images)
        assert spans[0]["duration_ns"] >= 0


# --------------------------------------------------------------------- #
# service + HTTP front end
# --------------------------------------------------------------------- #
class TestServiceHTTP:
    def test_endpoints_round_trip(self, service, small_split):
        images = _test_images(small_split, 3)
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["models"] == ["tiny-mnist"]

            models = client.models()
            assert models[0]["name"] == "tiny-mnist"
            assert models[0]["workload"] == "mnist"
            assert set(models[0]["checksums"]) == {"npz", "json"}

            response = client.classify(
                [image.tolist() for image in images],
                model="tiny-mnist",
                mode="clean",
                seeds=[1, 2, 3],
            )
            assert response["model"] == "tiny-mnist"
            assert len(response["predictions"]) == 3
            assert response["seeds"] == [1, 2, 3]

            metrics = client.metrics()
            assert metrics["requests_total"] == 3
            assert metrics["requests_by_mode"] == {"clean": 3}
            assert metrics["latency"]["count"] == 3
            assert metrics["latency"]["p99_ms"] >= metrics["latency"]["p50_ms"]
            assert sum(
                int(k) * v for k, v in metrics["batch_size_histogram"].items()
            ) == 3

    def test_http_errors_are_structured(self, service, small_split):
        image = _test_images(small_split, 1)[0]
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            with pytest.raises(RuntimeError, match="HTTP 404"):
                client.classify([image.tolist()], model="missing-model")
            with pytest.raises(RuntimeError, match="HTTP 400"):
                client.classify([[0.5, 0.5]], model="tiny-mnist")
            with pytest.raises(RuntimeError, match="HTTP 400"):
                client._request("/classify", {"model": "tiny-mnist"})
            with pytest.raises(RuntimeError, match="HTTP 404"):
                client._request("/nowhere")

    def test_workload_resolution_over_http(self, service, small_split):
        image = _test_images(small_split, 1)[0]
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            response = client.classify(
                [image.tolist()], workload="mnist", seeds=[9]
            )
            assert response["model"] == "tiny-mnist"

    def test_derived_seeds_are_returned(self, service, small_split):
        image = _test_images(small_split, 1)[0]
        response = service.classify([image], model="tiny-mnist")
        assert len(response.seeds) == 1
        # Replaying the returned seed reproduces the prediction.
        replay = service.classify(
            [image], model="tiny-mnist", seeds=response.seeds
        )
        assert replay.predictions == response.predictions

    def test_metrics_json_keys_are_pinned(self, service, small_split):
        """The JSON /metrics contract: dashboards parse these exact keys."""
        images = _test_images(small_split, 2)
        service.classify(images, model="tiny-mnist", seeds=[1, 2])
        snapshot = service.metrics_snapshot()
        assert set(snapshot) == {
            "requests_total",
            "requests_by_mode",
            "errors_total",
            "latency",
            "batch_size_histogram",
            "mean_batch_size",
            "queue_depth",
            "schedulers",
            "registry",
        }
        assert set(snapshot["latency"]) == {
            "count",
            "mean_ms",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "max_ms",
            "window_size",
            "samples",
        }
        assert snapshot["latency"]["window_size"] == service.config.latency_window
        assert snapshot["latency"]["samples"] == snapshot["latency"]["count"] == 2
        # The empty-reservoir branch carries the same keys.
        empty = dataclasses.replace(service.config)
        idle = SoftSNNService(empty, registry=service.registry)
        assert set(idle.metrics.latency_summary()) == set(snapshot["latency"])
        assert idle.metrics.latency_summary()["samples"] == 0

    @staticmethod
    def _prom_value(text: str, series: str) -> float:
        for line in text.splitlines():
            if line.startswith(series + " "):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    def test_prometheus_metrics_over_http(self, service, small_split):
        images = _test_images(small_split, 2)
        with ServiceServer(service, port=0) as server:
            client = ServiceClient(server.url)
            before = client.metrics_text()
            client.classify(
                [image.tolist() for image in images],
                model="tiny-mnist",
                seeds=[5, 6],
            )
            text = client.metrics_text()
        # Serving, scheduler, and registry metrics all appear.  The obs
        # registry is process-wide, so counters are compared as deltas.
        requests = 'softsnn_serve_requests_total{mode="clean"}'
        assert self._prom_value(text, requests) - self._prom_value(
            before, requests
        ) == 2
        count = "softsnn_serve_latency_ms_count"
        assert self._prom_value(text, count) - self._prom_value(
            before, count
        ) == 2
        assert "softsnn_serve_batches_total{" in text
        assert 'softsnn_serve_registry_entries{tier="models"} 1' in text
        assert "softsnn_serve_latency_ms_bucket{" in text


# --------------------------------------------------------------------- #
# load generator
# --------------------------------------------------------------------- #
class TestLoadGenerator:
    def test_closed_loop_report(self, service, small_split):
        images = _test_images(small_split, 4)
        seeds = list(range(300, 324))
        report = run_closed_loop(
            InProcessClient(service),
            images,
            seeds,
            model="tiny-mnist",
            mode="clean",
            concurrency=4,
            label="unit",
            metrics_source=service.metrics_snapshot,
        )
        assert report.errors == 0
        assert report.n_requests == len(seeds)
        assert len(report.latencies_ms) == len(seeds)
        assert all(pred is not None for pred in report.predictions)
        assert report.throughput_rps > 0
        assert report.mean_batch_size >= 1.0
        summary = report.to_dict()
        assert summary["latency_ms"]["p99"] >= summary["latency_ms"]["p50"]

    def test_deterministic_predictions_across_runs(self, service, small_split):
        images = _test_images(small_split, 4)
        seeds = list(range(400, 412))
        kwargs = dict(model="tiny-mnist", mode="clean", concurrency=3)
        first = run_closed_loop(InProcessClient(service), images, seeds, **kwargs)
        second = run_closed_loop(InProcessClient(service), images, seeds, **kwargs)
        assert first.predictions == second.predictions
