"""Tests for the soft-error fault models, fault maps and injection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.bitflip import WeightBitFlipModel
from repro.faults.fault_map import FaultMap, FaultMapGenerator
from repro.faults.injector import FaultInjector
from repro.faults.models import ComputeEngineFaultConfig, NeuronFaultType
from repro.faults.neuron_faults import NeuronFaultInjector
from repro.snn.quantization import WeightQuantizer


class TestComputeEngineFaultConfig:
    def test_constructors(self):
        synapses = ComputeEngineFaultConfig.synapses_only(0.01)
        assert synapses.inject_synapses and not synapses.inject_neurons
        neurons = ComputeEngineFaultConfig.neurons_only(
            0.01, fault_type=NeuronFaultType.VMEM_RESET
        )
        assert neurons.restrict_neuron_fault_type == NeuronFaultType.VMEM_RESET
        both = ComputeEngineFaultConfig.full_compute_engine(0.5)
        assert both.inject_synapses and both.inject_neurons

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            ComputeEngineFaultConfig(fault_rate=1.5)

    def test_nothing_to_inject_raises(self):
        with pytest.raises(ValueError):
            ComputeEngineFaultConfig(
                fault_rate=0.1, inject_synapses=False, inject_neurons=False
            )

    def test_bad_restrict_type_raises(self):
        with pytest.raises(TypeError):
            ComputeEngineFaultConfig(fault_rate=0.1, restrict_neuron_fault_type="reset")


class TestWeightBitFlipModel:
    def _model(self, per_bit=True):
        return WeightBitFlipModel(WeightQuantizer(bits=8, full_scale=1.0), per_bit=per_bit)

    def test_zero_rate_produces_no_faults(self):
        indices, bits = self._model().draw_fault_locations(100, 0.0, rng=0)
        assert indices.size == 0 and bits.size == 0

    def test_rate_one_per_register_hits_everything(self):
        indices, _ = self._model(per_bit=False).draw_fault_locations(50, 1.0, rng=0)
        assert sorted(indices.tolist()) == list(range(50))

    def test_per_bit_rate_one_hits_every_bit(self):
        indices, bits = self._model(per_bit=True).draw_fault_locations(10, 1.0, rng=0)
        assert indices.size == 80
        assert set(bits.tolist()) == set(range(8))

    def test_expected_fault_count_scales_with_rate(self):
        n_registers = 2000
        _, bits_low = self._model().draw_fault_locations(n_registers, 0.01, rng=1)
        _, bits_high = self._model().draw_fault_locations(n_registers, 0.1, rng=1)
        assert bits_high.size > bits_low.size

    def test_inject_flips_only_selected(self):
        model = self._model()
        registers = np.zeros((4, 4), dtype=np.uint8)
        outcome = model.inject(
            registers, 0.0, flat_indices=np.array([3]), bit_positions=np.array([2])
        )
        assert outcome.faulty_registers.ravel()[3] == 4
        assert outcome.n_faults == 1
        assert registers.sum() == 0  # original untouched

    def test_inject_requires_paired_replay_arguments(self):
        with pytest.raises(ValueError):
            self._model().inject(
                np.zeros(4, dtype=np.uint8), 0.1, flat_indices=np.array([0])
            )

    @pytest.mark.parametrize("bad_rate", [-0.1, 1.5])
    def test_inject_validates_rate_on_replay_path(self, bad_rate):
        # Regression: replaying explicit fault locations used to skip
        # check_probability entirely, so a nonsensical stored fault rate
        # round-tripped unvalidated.
        with pytest.raises(ValueError, match="fault_rate"):
            self._model().inject(
                np.zeros(4, dtype=np.uint8),
                bad_rate,
                flat_indices=np.array([0]),
                bit_positions=np.array([1]),
            )

    def test_inject_validates_rate_on_draw_path(self):
        with pytest.raises(ValueError, match="fault_rate"):
            self._model().inject(np.zeros(4, dtype=np.uint8), 2.0)

    def test_weight_change_summary(self):
        model = self._model()
        clean = np.array([[10, 20], [30, 40]], dtype=np.uint8)
        faulty = np.array([[138, 20], [14, 40]], dtype=np.uint8)
        summary = model.weight_change_summary(clean, faulty)
        assert summary["n_increased"] == 1
        assert summary["n_decreased"] == 1
        assert summary["n_unchanged"] == 2
        assert summary["n_above_clean_max"] == 1

    @given(rate=st.floats(min_value=0.0, max_value=0.3), seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_draw_locations_within_bounds_property(self, rate, seed):
        indices, bits = self._model().draw_fault_locations(64, rate, rng=seed)
        if indices.size:
            assert indices.min() >= 0 and indices.max() < 64
            assert bits.min() >= 0 and bits.max() < 8


class TestNeuronFaultInjector:
    def test_zero_rate_is_healthy(self):
        outcome = NeuronFaultInjector(10).inject(0.0, rng=0)
        assert not outcome.status.any_faulty
        assert outcome.n_faults == 0

    def test_rate_one_per_operation_breaks_every_operation(self):
        outcome = NeuronFaultInjector(5, per_operation=True).inject(1.0, rng=0)
        assert outcome.n_faults == 20
        assert not outcome.status.vmem_reset_ok.any()
        assert not outcome.status.spike_generation_ok.any()

    def test_restricted_type_only_affects_that_operation(self):
        outcome = NeuronFaultInjector(20).inject(
            1.0, rng=0, restrict_type=NeuronFaultType.VMEM_RESET
        )
        assert not outcome.status.vmem_reset_ok.any()
        assert outcome.status.vmem_increase_ok.all()
        assert outcome.status.spike_generation_ok.all()
        assert set(dict(outcome.count_by_type()).values()) == {0, 20}

    def test_outcome_from_faults_replay(self):
        injector = NeuronFaultInjector(4)
        outcome = injector.outcome_from_faults(
            [(1, NeuronFaultType.VMEM_LEAK), (3, NeuronFaultType.SPIKE_GENERATION)]
        )
        assert not outcome.status.vmem_leak_ok[1]
        assert not outcome.status.spike_generation_ok[3]
        assert outcome.faulty_neuron_indices().tolist() == [1, 3]

    def test_replay_validation(self):
        injector = NeuronFaultInjector(2)
        with pytest.raises(ValueError):
            injector.outcome_from_faults([(5, NeuronFaultType.VMEM_RESET)])
        with pytest.raises(TypeError):
            injector.outcome_from_faults([(0, "reset")])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            NeuronFaultInjector(0)


class TestFaultMap:
    def test_summary_counts(self):
        fault_map = FaultMap(
            crossbar_shape=(8, 4),
            synapse_flat_indices=np.array([0, 5]),
            synapse_bit_positions=np.array([1, 7]),
            neuron_faults=[(0, NeuronFaultType.VMEM_RESET)],
            fault_rate=0.1,
        )
        assert fault_map.n_synapse_faults == 2
        assert fault_map.n_neuron_faults == 1
        assert fault_map.n_faults == 3
        assert not fault_map.is_empty
        assert fault_map.neuron_fault_counts()[NeuronFaultType.VMEM_RESET] == 1
        assert fault_map.summary()["n_synapse_faults"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultMap(crossbar_shape=(0, 4))
        with pytest.raises(ValueError):
            FaultMap(
                crossbar_shape=(2, 2),
                synapse_flat_indices=np.array([10]),
                synapse_bit_positions=np.array([0]),
            )
        with pytest.raises(ValueError):
            FaultMap(
                crossbar_shape=(2, 2),
                neuron_faults=[(5, NeuronFaultType.VMEM_RESET)],
            )

    def test_negative_bit_positions_rejected(self):
        # Regression: negative positions used to pass FaultMap validation,
        # deferring the failure to replay time deep inside the injector.
        with pytest.raises(ValueError, match="non-negative"):
            FaultMap(
                crossbar_shape=(2, 2),
                synapse_flat_indices=np.array([0]),
                synapse_bit_positions=np.array([-1]),
            )

    def test_out_of_width_bit_positions_rejected(self):
        # Regression: a position at or beyond the drawn bit width used to
        # be accepted; replayed through a wider register format it would
        # silently flip bits the original quantizer cannot hold.
        with pytest.raises(ValueError, match="8-bit"):
            FaultMap(
                crossbar_shape=(2, 2),
                synapse_flat_indices=np.array([0]),
                synapse_bit_positions=np.array([8]),
                bit_width=8,
            )
        # In-range positions are fine, and the width is recorded.
        fault_map = FaultMap(
            crossbar_shape=(2, 2),
            synapse_flat_indices=np.array([0]),
            synapse_bit_positions=np.array([7]),
            bit_width=8,
        )
        assert fault_map.bit_width == 8

    def test_generated_maps_carry_bit_width(self):
        generator = FaultMapGenerator((8, 4), quantizer=WeightQuantizer(bits=8))
        fault_map = generator.generate(
            ComputeEngineFaultConfig.full_compute_engine(0.2), rng=0
        )
        assert fault_map.bit_width == 8


class TestFaultMapGenerator:
    def _generator(self):
        return FaultMapGenerator((16, 8), quantizer=WeightQuantizer(bits=8))

    def test_generate_respects_injection_switches(self):
        generator = self._generator()
        synapse_only = generator.generate(
            ComputeEngineFaultConfig.synapses_only(0.5), rng=0
        )
        assert synapse_only.n_synapse_faults > 0
        assert synapse_only.n_neuron_faults == 0
        neuron_only = generator.generate(
            ComputeEngineFaultConfig.neurons_only(0.5), rng=0
        )
        assert neuron_only.n_synapse_faults == 0
        assert neuron_only.n_neuron_faults > 0

    def test_same_seed_same_map(self):
        generator = self._generator()
        config = ComputeEngineFaultConfig.full_compute_engine(0.2)
        a = generator.generate(config, rng=42)
        b = generator.generate(config, rng=42)
        assert np.array_equal(a.synapse_flat_indices, b.synapse_flat_indices)
        assert a.neuron_faults == b.neuron_faults

    def test_different_seeds_usually_differ(self):
        generator = self._generator()
        config = ComputeEngineFaultConfig.full_compute_engine(0.2)
        a = generator.generate(config, rng=1)
        b = generator.generate(config, rng=2)
        assert (
            not np.array_equal(a.synapse_flat_indices, b.synapse_flat_indices)
            or a.neuron_faults != b.neuron_faults
        )

    def test_generate_many(self):
        maps = self._generator().generate_many(
            ComputeEngineFaultConfig.full_compute_engine(0.1), count=3, rng=0
        )
        assert len(maps) == 3

    def test_generate_many_invalid_count(self):
        with pytest.raises(ValueError):
            self._generator().generate_many(
                ComputeEngineFaultConfig.full_compute_engine(0.1), count=0
            )

    @pytest.mark.parametrize(
        "config",
        [
            ComputeEngineFaultConfig(0.05),
            ComputeEngineFaultConfig(0.2, inject_neurons=False),
            ComputeEngineFaultConfig(0.15, inject_synapses=False),
        ],
    )
    def test_generate_many_bulk_matches_sequential_streams(self, config):
        """The one-RNG-pass bulk draw replays the per-map loop bit for bit."""
        generator = self._generator()
        bulk = generator.generate_many(config, count=4, rng=np.random.default_rng(42))
        sequential_rng = np.random.default_rng(42)
        for fault_map in bulk:
            reference = generator.generate(config, rng=sequential_rng)
            assert np.array_equal(
                fault_map.synapse_flat_indices, reference.synapse_flat_indices
            )
            assert np.array_equal(
                fault_map.synapse_bit_positions, reference.synapse_bit_positions
            )
            assert fault_map.neuron_faults == reference.neuron_faults
            assert fault_map.bit_width == reference.bit_width

    def test_generate_many_falls_back_for_variable_draws(self):
        """Restricted fault types use data-dependent draws: loop fallback."""
        generator = self._generator()
        config = ComputeEngineFaultConfig(
            0.3, restrict_neuron_fault_type=NeuronFaultType.VMEM_RESET
        )
        bulk = generator.generate_many(config, count=2, rng=9)
        sequential_rng = np.random.default_rng(9)
        for fault_map in bulk:
            reference = generator.generate(config, rng=sequential_rng)
            assert fault_map.neuron_faults == reference.neuron_faults


class TestFaultInjector:
    def test_inject_corrupts_network_state(self, trained_model):
        network = trained_model.build_network(rng=0)
        clean_registers = network.synapses.registers
        injector = FaultInjector(network)
        report = injector.inject(
            ComputeEngineFaultConfig.full_compute_engine(0.05), rng=1
        )
        assert report.n_synapse_faults > 0
        assert not np.array_equal(network.synapses.registers, clean_registers)
        assert network.neurons.operation_status.any_faulty or report.n_neuron_faults == 0

    def test_replaying_map_is_deterministic(self, trained_model):
        network_a = trained_model.build_network(rng=0)
        network_b = trained_model.build_network(rng=0)
        injector_a = FaultInjector(network_a)
        fault_map = injector_a.draw_fault_map(
            ComputeEngineFaultConfig.full_compute_engine(0.05), rng=7
        )
        injector_a.apply_fault_map(fault_map)
        FaultInjector(network_b).apply_fault_map(fault_map)
        assert np.array_equal(network_a.synapses.registers, network_b.synapses.registers)

    def test_mismatched_fault_map_rejected(self, trained_model):
        network = trained_model.build_network(rng=0)
        foreign = FaultMap(crossbar_shape=(2, 2))
        with pytest.raises(ValueError):
            FaultInjector(network).apply_fault_map(foreign)

    def test_restore_registers(self, trained_model):
        network = trained_model.build_network(rng=0)
        clean = network.synapses.registers
        injector = FaultInjector(network)
        injector.inject(ComputeEngineFaultConfig.synapses_only(0.1), rng=3)
        injector.restore_registers(clean)
        assert np.array_equal(network.synapses.registers, clean)

    def test_weight_increase_statistics_match_fig9_story(self, trained_model):
        """Bit flips must be able to push weights above the clean maximum."""
        network = trained_model.build_network(rng=0)
        injector = FaultInjector(network)
        report = injector.inject(ComputeEngineFaultConfig.synapses_only(0.1), rng=5)
        summary = report.weight_change_summary
        assert summary["n_above_clean_max"] > 0
        assert summary["faulty_max_weight"] > summary["clean_max_weight"]
