"""Tests for the synthetic datasets and the Dataset container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import Dataset, load_workload, train_test_split
from repro.data.images import (
    blank_canvas,
    draw_ellipse,
    draw_line,
    draw_rectangle,
    gaussian_blur,
    normalize_image,
)
from repro.data.synthetic_fashion import SyntheticFashionMNIST
from repro.data.synthetic_mnist import SyntheticMNIST


class TestImagePrimitives:
    def test_blank_canvas_is_zero(self):
        assert blank_canvas(10).sum() == 0.0

    def test_draw_line_adds_intensity(self):
        canvas = draw_line(blank_canvas(16), (2, 2), (12, 12))
        assert canvas.max() > 0.9
        assert canvas.min() >= 0.0

    def test_draw_line_does_not_mutate_input(self):
        original = blank_canvas(16)
        draw_line(original, (0, 0), (5, 5))
        assert original.sum() == 0.0

    def test_draw_ellipse_outline_is_hollow(self):
        canvas = draw_ellipse(blank_canvas(28), (14, 14), (8, 8))
        assert canvas[14, 14] < 0.5          # centre stays dark
        assert canvas[14, 6] > 0.5           # boundary is bright

    def test_draw_ellipse_filled_covers_centre(self):
        canvas = draw_ellipse(blank_canvas(28), (14, 14), (8, 8), filled=True)
        assert canvas[14, 14] > 0.9

    def test_draw_rectangle_filled(self):
        canvas = draw_rectangle(blank_canvas(20), (5, 5), (10, 12))
        assert canvas[7, 8] == 1.0
        assert canvas[2, 2] == 0.0

    def test_draw_rectangle_invalid_corners(self):
        with pytest.raises(ValueError):
            draw_rectangle(blank_canvas(20), (10, 10), (5, 5))

    def test_gaussian_blur_preserves_shape_and_softens(self):
        canvas = draw_line(blank_canvas(20), (10, 2), (10, 18))
        blurred = gaussian_blur(canvas, sigma=1.0)
        assert blurred.shape == canvas.shape
        assert blurred.max() <= canvas.max() + 1e-9

    def test_normalize_image_peak_is_one(self):
        canvas = 0.25 * draw_line(blank_canvas(20), (0, 0), (19, 19))
        assert normalize_image(canvas).max() == pytest.approx(1.0)

    def test_normalize_all_zero(self):
        assert normalize_image(blank_canvas(8)).sum() == 0.0


class TestSyntheticMNIST:
    def test_generate_shapes_and_ranges(self):
        data = SyntheticMNIST().generate(n_samples=20, rng=0)
        assert data.images.shape == (20, 28, 28)
        assert data.labels.shape == (20,)
        assert 0.0 <= data.images.min() and data.images.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = SyntheticMNIST().generate(n_samples=10, rng=5)
        b = SyntheticMNIST().generate(n_samples=10, rng=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_class_balance(self):
        data = SyntheticMNIST().generate(n_samples=100, rng=1)
        counts = data.class_counts()
        assert set(counts) == set(range(10))
        assert all(count == 10 for count in counts.values())

    def test_class_restriction(self):
        data = SyntheticMNIST().generate(n_samples=12, rng=2, classes=[3, 7])
        assert set(np.unique(data.labels)) == {3, 7}

    def test_prototypes_are_distinct(self):
        generator = SyntheticMNIST()
        prototypes = np.stack([generator.prototype(d).ravel() for d in range(10)])
        # No two class prototypes should be (nearly) identical images.
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(prototypes[i] - prototypes[j]).mean() > 0.01

    def test_unknown_class_raises(self):
        with pytest.raises(ValueError):
            SyntheticMNIST().render(11)

    def test_invalid_sample_count_raises(self):
        with pytest.raises(ValueError):
            SyntheticMNIST().generate(n_samples=0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SyntheticMNIST(side=4)
        with pytest.raises(ValueError):
            SyntheticMNIST(noise_std=-1)
        with pytest.raises(ValueError):
            SyntheticMNIST(scale_jitter=0.9)


class TestSyntheticFashionMNIST:
    def test_generate_shapes(self):
        data = SyntheticFashionMNIST().generate(n_samples=20, rng=0)
        assert data.images.shape == (20, 28, 28)
        assert data.n_classes == 10

    def test_class_names(self):
        assert SyntheticFashionMNIST.class_name(0) == "t-shirt"
        assert SyntheticFashionMNIST.class_name(9) == "ankle-boot"
        with pytest.raises(ValueError):
            SyntheticFashionMNIST.class_name(10)

    def test_garments_have_more_ink_than_digits(self):
        fashion = SyntheticFashionMNIST().generate(n_samples=20, rng=3)
        digits = SyntheticMNIST().generate(n_samples=20, rng=3)
        assert fashion.images.sum() > digits.images.sum()

    def test_deterministic_given_seed(self):
        a = SyntheticFashionMNIST().generate(n_samples=8, rng=9)
        b = SyntheticFashionMNIST().generate(n_samples=8, rng=9)
        assert np.array_equal(a.images, b.images)


class TestDatasetContainer:
    def _make(self, n=10):
        rng = np.random.default_rng(0)
        images = rng.random((n, 4, 4))
        labels = np.arange(n) % 3
        return Dataset(images=images, labels=labels, name="toy")

    def test_len_and_getitem(self):
        data = self._make(6)
        assert len(data) == 6
        image, label = data[2]
        assert image.shape == (4, 4)
        assert label == 2

    def test_images_are_readonly(self):
        data = self._make()
        with pytest.raises(ValueError):
            data.images[0, 0, 0] = 0.5

    def test_n_pixels_and_classes(self):
        data = self._make()
        assert data.n_pixels == 16
        assert data.n_classes == 3

    def test_flattened_images(self):
        assert self._make(5).flattened_images().shape == (5, 16)

    def test_subset_and_take(self):
        data = self._make(10)
        subset = data.subset(np.array([0, 2, 4]))
        assert len(subset) == 3
        taken = data.take(4, rng=1)
        assert len(taken) == 4

    def test_take_too_many_raises(self):
        with pytest.raises(ValueError):
            self._make(3).take(10)

    def test_subset_out_of_range_raises(self):
        with pytest.raises(IndexError):
            self._make(3).subset(np.array([5]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(images=np.zeros((3, 2, 2)), labels=np.zeros(2, dtype=int))

    def test_out_of_range_values_raise(self):
        with pytest.raises(ValueError):
            Dataset(images=np.full((1, 2, 2), 2.0), labels=np.zeros(1, dtype=int))

    def test_shuffled_preserves_content(self):
        data = self._make(8)
        shuffled = data.shuffled(rng=3)
        assert sorted(shuffled.labels.tolist()) == sorted(data.labels.tolist())


class TestTrainTestSplit:
    def test_stratified_split_covers_all_classes(self):
        data = SyntheticMNIST().generate(n_samples=60, rng=4)
        train, test = train_test_split(data, test_fraction=0.25, rng=1)
        assert len(train) + len(test) == len(data)
        assert set(np.unique(test.labels)) == set(np.unique(data.labels))

    def test_disjoint(self):
        data = SyntheticMNIST().generate(n_samples=40, rng=4)
        train, test = train_test_split(data, test_fraction=0.3, rng=2)
        # No image should appear in both subsets.
        train_hashes = {hash(img.tobytes()) for img in train.images}
        test_hashes = {hash(img.tobytes()) for img in test.images}
        assert not train_hashes & test_hashes

    def test_invalid_fraction_raises(self):
        data = SyntheticMNIST().generate(n_samples=10, rng=0)
        with pytest.raises(ValueError):
            train_test_split(data, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(data, test_fraction=1.0)

    @given(fraction=st.floats(min_value=0.1, max_value=0.5))
    @settings(max_examples=10, deadline=None)
    def test_split_sizes_property(self, fraction):
        data = SyntheticMNIST().generate(n_samples=50, rng=11)
        train, test = train_test_split(data, test_fraction=fraction, rng=0)
        assert len(train) + len(test) == 50
        assert len(test) >= 1


class TestLoadWorkload:
    def test_mnist_aliases(self):
        data = load_workload("mnist", n_samples=10, rng=0)
        assert data.name == "synthetic-mnist"

    def test_fashion_aliases(self):
        data = load_workload("fashion-mnist", n_samples=10, rng=0)
        assert data.name == "synthetic-fashion-mnist"

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            load_workload("cifar10", n_samples=10)
