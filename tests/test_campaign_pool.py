"""Tests for the warm persistent campaign worker pool.

The pool's contract has three legs, each covered here:

* **Bit-identity** — store records produced through the pool equal the
  serial ones byte for byte (modulo the measured ``duration_seconds``),
  because the orchestrator consumes the per-cell random streams in the
  same order and ships the results of that consumption to the workers.
* **Robustness** — a worker that dies mid-unit is detected, the unit is
  named and re-executed serially once, and a half-finished pooled
  campaign resumes from its store exactly like a serial one.
* **Hygiene** — no shared-memory segments survive a normal run, a worker
  crash, or a ``KeyboardInterrupt`` in the orchestrator.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import _parse_workers
from repro.eval.campaign import (
    CampaignSpec,
    TechniqueSpec,
    execute_cell_group,
    group_cells,
    prepare_unit_inputs,
    resolve_worker_count,
    run_campaign,
)
from repro.eval.experiment import ExperimentConfig, ExperimentRunner
from repro.eval.pool import execute_units_pooled
from repro.hardware.enhancements import MitigationKind
from repro.utils.serialization import SharedArrayPublisher, SharedArrayView

TINY_CONFIG = ExperimentConfig(
    workload="mnist", n_neurons=10, n_train=24, n_test=8, timesteps=40, epochs=1
)
RATES = [1e-3, 1e-1]
CAMPAIGN_SEED = 5
RUNNER_SEED = 3

_SHM_DIR = Path("/dev/shm")


def tiny_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="tiny-pool",
        experiments=[TINY_CONFIG],
        fault_rates=list(RATES),
        techniques=[
            TechniqueSpec(MitigationKind.NO_MITIGATION),
            TechniqueSpec(MitigationKind.BNP3),
        ],
        n_trials=2,
        seed=CAMPAIGN_SEED,
        runner_seed=RUNNER_SEED,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def store_cells(path: Path) -> list:
    """Cell records of a store, duration-normalized and sorted by id."""
    records = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") != "cell":
            continue
        record["duration_seconds"] = 0.0
        records.append(record)
    records.sort(key=lambda record: record["cell_id"])
    return records


def pool_segments() -> list:
    """Shared-memory segments of ours currently present on the system.

    Orphans left by *other* (dead) processes — e.g. a previously
    SIGKILLed campaign on a shared box — are swept first so they cannot
    fail an unrelated hygiene assertion; anything this process leaked
    has a live owner pid and is still reported.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-POSIX-shm platform
        pytest.skip("no /dev/shm to inspect")
    from repro.utils.serialization import reap_stale_segments

    for prefix in ("softsnn-pool", "softsnn-test", "softsnn"):
        reap_stale_segments(prefix)
    return sorted(p.name for p in _SHM_DIR.iterdir() if "softsnn" in p.name)


def pooled_assets(tmp_path: Path):
    """Orchestrator-side assets + snapshot paths for direct pool calls."""
    spec = tiny_spec()
    runner = ExperimentRunner(root_seed=RUNNER_SEED)
    prepared = runner.prepare(TINY_CONFIG)
    key = TINY_CONFIG.label()
    techniques = [tspec.build() for tspec in spec.techniques]
    assets = {key: (prepared.model, prepared.test_set, techniques)}
    model_paths = {key: str(prepared.model.save(tmp_path / "model"))}
    units = group_cells(spec.expand())
    return spec, units, assets, model_paths


class TestWorkerCountResolution:
    def test_auto_resolves_to_cpu_count(self):
        assert resolve_worker_count(None) == max(1, os.cpu_count() or 1)

    def test_explicit_counts_pass_through(self):
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(7) == 7

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            resolve_worker_count(0)
        with pytest.raises(ValueError):
            resolve_worker_count(-2)

    def test_cli_workers_parser(self):
        import argparse

        assert _parse_workers("auto") is None
        assert _parse_workers("AUTO") is None
        assert _parse_workers("4") == 4
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_workers("0")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_workers("many")


class TestPreparedInputs:
    def test_prepared_inputs_reproduce_inline_execution(self):
        """execute_cell_group(inputs=...) equals the self-preparing path."""
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        techniques = [tspec.build() for tspec in tiny_spec().techniques]
        for unit in group_cells(tiny_spec().expand()):
            inline = execute_cell_group(
                unit, prepared.model, prepared.test_set, techniques
            )
            inputs = prepare_unit_inputs(unit, prepared.model, prepared.test_set)
            outer = execute_cell_group(
                unit, prepared.model, prepared.test_set, techniques, inputs=inputs
            )
            for a, b in zip(inline, outer):
                assert a.accuracies == b.accuracies
                assert a.n_faults == b.n_faults

    def test_shared_memory_raster_views_round_trip(self):
        """Rasters published and re-attached compare equal, zero-copy."""
        runner = ExperimentRunner(root_seed=RUNNER_SEED)
        prepared = runner.prepare(TINY_CONFIG)
        unit = group_cells(tiny_spec().expand())[1]
        inputs = prepare_unit_inputs(unit, prepared.model, prepared.test_set)
        with SharedArrayPublisher(prefix="softsnn-test") as publisher:
            handles = [publisher.publish(raster) for raster in inputs.rasters]
            views = [SharedArrayView(handle) for handle in handles]
            for raster, view in zip(inputs.rasters, views):
                assert view.array.dtype == raster.dtype
                assert np.array_equal(view.array, raster)
            for view in views:
                view.close()
        assert pool_segments() == []


class TestPoolBitIdentity:
    def test_store_records_byte_identical(self, tmp_path):
        """Serial and warm-pool stores hold the same records, byte for byte."""
        spec = tiny_spec()
        serial_store = tmp_path / "serial.jsonl"
        pool_store = tmp_path / "pool.jsonl"
        run_campaign(spec, store_path=serial_store, n_workers=1)
        run_campaign(spec, store_path=pool_store, n_workers=2)
        serial_records = store_cells(serial_store)
        pool_records = store_cells(pool_store)
        assert len(serial_records) == len(spec.expand())
        assert [
            json.dumps(record, sort_keys=True) for record in serial_records
        ] == [json.dumps(record, sort_keys=True) for record in pool_records]

    def test_multi_experiment_grid_matches_serial(self, tmp_path):
        """Affinity routing across two experiments changes nothing."""
        other = TINY_CONFIG.with_network_size(12)
        spec = tiny_spec(experiments=[TINY_CONFIG, other], n_trials=1)
        serial_store = tmp_path / "serial.jsonl"
        pool_store = tmp_path / "pool.jsonl"
        run_campaign(spec, store_path=serial_store, n_workers=1)
        run_campaign(spec, store_path=pool_store, n_workers=2)
        assert store_cells(serial_store) == store_cells(pool_store)


class TestPoolResume:
    def test_resume_after_kill_with_pool_workers(self, tmp_path):
        """Truncate a pooled store mid-campaign, resume with pool workers."""
        spec = tiny_spec()
        full_store = tmp_path / "full.jsonl"
        run_campaign(spec, store_path=full_store, n_workers=2)
        lines = full_store.read_text().splitlines()
        n_cells = len(lines) - 1  # minus meta record
        k = 2
        half_store = tmp_path / "half.jsonl"
        half_store.write_text("\n".join(lines[: 1 + k]) + "\n")

        resumed = run_campaign(spec, store_path=half_store, n_workers=2)
        assert resumed.n_skipped == k
        assert resumed.n_executed == n_cells - k
        records = store_cells(half_store)
        assert len(records) == n_cells
        assert len({record["cell_id"] for record in records}) == n_cells
        assert records == store_cells(full_store)


class TestCrashRecovery:
    def test_crashed_worker_unit_is_named_and_retried(
        self, tmp_path, monkeypatch, caplog
    ):
        """A worker dying mid-unit costs one serial retry, not the run."""
        monkeypatch.setenv("_SOFTSNN_POOL_CRASH_UNIT", "0")
        spec = tiny_spec()
        serial_store = tmp_path / "serial.jsonl"
        pool_store = tmp_path / "pool.jsonl"
        monkeypatch.delenv("_SOFTSNN_POOL_CRASH_UNIT", raising=False)
        run_campaign(spec, store_path=serial_store, n_workers=1)
        monkeypatch.setenv("_SOFTSNN_POOL_CRASH_UNIT", "0")
        # A CLI test earlier in the session may have called
        # configure_logging(), which stops repro.* records propagating to
        # the root logger caplog listens on; restore propagation here.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        with caplog.at_level(logging.WARNING, logger="repro.eval.pool"):
            run_campaign(spec, store_path=pool_store, n_workers=2)
        assert "died mid-unit" in caplog.text
        assert TINY_CONFIG.label() in caplog.text
        assert store_cells(serial_store) == store_cells(pool_store)
        assert pool_segments() == []


class TestSharedMemoryHygiene:
    def test_no_segments_after_normal_run(self, tmp_path):
        run_campaign(tiny_spec(), store_path=tmp_path / "s.jsonl", n_workers=2)
        assert pool_segments() == []

    def test_stale_segments_of_dead_owner_are_reaped(self, tmp_path):
        """Segments orphaned by a SIGKILLed run are swept by the next one.

        SIGKILL to the whole process group (OOM killer, ``timeout
        -sKILL``) takes down the publisher *and* the resource tracker, so
        only a later run can reclaim the segments — by noticing the pid
        baked into the name is dead.  On containers whose pid 1 does not
        reap orphans the killed owner lingers as a zombie, which must
        count as dead too (it can never run again).
        """
        import subprocess
        import sys
        import time

        from multiprocessing import resource_tracker, shared_memory

        from repro.utils.serialization import reap_stale_segments

        def stale_segment(pid: int, tag: str) -> str:
            name = f"softsnn-pool-{pid:x}-{tag}"
            segment = shared_memory.SharedMemory(name=name, create=True, size=16)
            segment.close()
            # The reaper will unlink behind the tracker's back; hand over
            # the lifetime so the tracker does not warn about a leak.
            resource_tracker.unregister(segment._name, "shared_memory")
            return name

        # A pid guaranteed dead: a subprocess we have already reaped.
        reaped_child = subprocess.Popen([sys.executable, "-c", ""])
        reaped_child.wait()
        dead_name = stale_segment(reaped_child.pid, "deadbeefdeadbeef")
        # A zombie: exited but deliberately not waited on yet.
        zombie = subprocess.Popen([sys.executable, "-c", ""])
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with open(f"/proc/{zombie.pid}/stat", "rb") as fh:
                if fh.read().rpartition(b")")[2].split()[0] == b"Z":
                    break
            time.sleep(0.05)
        zombie_name = stale_segment(zombie.pid, "0000000000zombie")
        live_name = f"softsnn-pool-{os.getpid():x}-feedfacefeedface"
        live = shared_memory.SharedMemory(name=live_name, create=True, size=16)
        try:
            reaped = reap_stale_segments("softsnn-pool")
            assert dead_name in reaped
            assert zombie_name in reaped
            assert live_name in pool_segments()  # live owner: untouched
        finally:
            zombie.wait()
            live.close()
            live.unlink()
        assert pool_segments() == []

    def test_no_segments_after_keyboard_interrupt(self, tmp_path):
        """Interrupting the orchestrator mid-campaign leaks nothing."""
        _, units, assets, model_paths = pooled_assets(tmp_path)
        received = []

        def interrupt(result):
            received.append(result)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_units_pooled(
                units,
                assets,
                model_paths,
                tiny_spec().techniques,
                n_workers=2,
                on_result=interrupt,
            )
        assert received  # the interrupt fired mid-stream, not before work
        assert pool_segments() == []


class TestPoolObservability:
    def test_worker_logs_relayed_with_worker_tag(self, monkeypatch):
        """Worker-side debug records reach the orchestrator's logger.

        ``SOFTSNN_LOG_LEVEL=DEBUG`` turns on worker-side debug logging;
        the queue relay must re-emit those records in the parent tagged
        with the worker id.  A handler is attached directly to the
        library root logger because ``configure_logging`` (run by any
        earlier CLI test) sets ``propagate = False``, which hides the
        records from pytest's root-logger capture.
        """
        from repro.utils.logging import get_logger

        monkeypatch.setenv("SOFTSNN_LOG_LEVEL", "DEBUG")
        records = []

        class _Capture(logging.Handler):
            def emit(self, record: logging.LogRecord) -> None:
                records.append(record.getMessage())

        root = get_logger()
        handler = _Capture(level=logging.DEBUG)
        old_level = root.level
        root.addHandler(handler)
        root.setLevel(logging.DEBUG)
        try:
            run_campaign(tiny_spec(), store_path=None, n_workers=2)
        finally:
            root.removeHandler(handler)
            root.setLevel(old_level)
        relayed = [text for text in records if text.startswith("[worker ")]
        assert relayed, "no worker-tagged records reached the orchestrator"
        assert any("executing unit" in text for text in relayed)

    def test_pool_stats_cover_workers_and_shm(self, tmp_path):
        """The returned run stats account workers, time, and shm bytes."""
        result = run_campaign(tiny_spec(), store_path=None, n_workers=2)
        stats = result.pool_stats
        assert stats is not None
        assert stats["n_workers"] == 2
        assert stats["crashes"] == 0 and stats["serial_retries"] == 0
        assert stats["wall_seconds"] > 0
        assert stats["shm_bytes_published"] > 0
        # Everything published is unlinked by the end of the run.
        assert stats["shm_bytes_unlinked"] == stats["shm_bytes_published"]
        assert len(stats["workers"]) == 2
        for worker in stats["workers"]:
            assert 0.0 <= worker["utilization"] <= 1.0
        assert sum(worker["units"] for worker in stats["workers"]) == len(
            group_cells(tiny_spec().expand())
        )
        assert stats["sched_decisions"]
        # Serial execution reports no pool stats.
        serial = run_campaign(tiny_spec(), store_path=None, n_workers=1)
        assert serial.pool_stats is None
