"""Tests for weight bounding, neuron protection and the fault-tolerance analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bound_and_protect import BnPVariant, NeuronProtection, WeightBounding
from repro.core.fault_analysis import FaultToleranceAnalyzer
from repro.faults.models import NeuronFaultType
from repro.hardware.enhancements import MitigationKind
from repro.snn.neuron import LIFNeuronGroup, LIFParameters, NeuronOperationStatus


class TestWeightBounding:
    def test_eq1_semantics(self):
        bounding = WeightBounding(threshold=1.0, substitute=0.25)
        weights = np.array([0.5, 1.0, 1.5, 0.99])
        bounded = bounding.apply(weights)
        assert bounded.tolist() == [0.5, 0.25, 0.25, 0.99]

    def test_threshold_is_inclusive(self):
        bounding = WeightBounding(threshold=1.0, substitute=0.0)
        assert bounding.apply(np.array([1.0]))[0] == 0.0

    def test_variant_constructors(self):
        assert WeightBounding.bnp1(0.8).substitute == 0.0
        assert WeightBounding.bnp2(0.8).substitute == pytest.approx(0.8)
        assert WeightBounding.bnp3(0.8, 0.1).substitute == pytest.approx(0.1)

    def test_for_variant_dispatch(self):
        assert (
            WeightBounding.for_variant(BnPVariant.BNP1, 0.5).substitute == 0.0
        )
        assert (
            WeightBounding.for_variant(BnPVariant.BNP2, 0.5).substitute == 0.5
        )
        assert (
            WeightBounding.for_variant(BnPVariant.BNP3, 0.5, 0.2).substitute == 0.2
        )

    def test_bnp3_without_whp_raises(self):
        with pytest.raises(ValueError):
            WeightBounding.for_variant(BnPVariant.BNP3, 0.5)

    def test_out_of_range_mask_and_count(self):
        bounding = WeightBounding(threshold=0.5, substitute=0.0)
        weights = np.array([[0.1, 0.6], [0.5, 0.4]])
        assert bounding.out_of_range_mask(weights).sum() == 2
        assert bounding.count_bounded(weights) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightBounding(threshold=0.0, substitute=0.0)
        with pytest.raises(ValueError):
            WeightBounding(threshold=0.5, substitute=0.6)
        with pytest.raises(ValueError):
            WeightBounding(threshold=-1.0, substitute=0.0)

    def test_mitigation_kind_mapping(self):
        assert BnPVariant.BNP1.mitigation_kind == MitigationKind.BNP1
        assert BnPVariant.BNP2.mitigation_kind == MitigationKind.BNP2
        assert BnPVariant.BNP3.mitigation_kind == MitigationKind.BNP3

    @given(
        threshold=st.floats(min_value=0.1, max_value=2.0),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded_weights_never_exceed_threshold_unless_clean_property(
        self, threshold, seed
    ):
        """After bounding, every weight is either below the threshold or equal
        to the substitute value — the safe-range invariant of Eq. 1."""
        rng = np.random.default_rng(seed)
        weights = rng.random(50) * 2 * threshold
        substitute = min(threshold, rng.random() * threshold)
        bounding = WeightBounding(threshold=threshold, substitute=substitute)
        bounded = bounding.apply(weights)
        assert ((bounded < threshold) | np.isclose(bounded, substitute)).all()


class TestNeuronProtection:
    def _stuck_group(self):
        """One neuron with a faulty reset, driven hard so it sticks above Vth."""
        status = NeuronOperationStatus.healthy(2)
        status.vmem_reset_ok[0] = False
        return LIFNeuronGroup(2, LIFParameters(inhibition_strength=0.0), status)

    def test_protection_silences_stuck_neuron(self):
        group = self._stuck_group()
        protection = NeuronProtection(trigger_cycles=2)
        spikes_after_protection = 0
        for step in range(30):
            spikes = group.step(np.array([2.0, 0.0]))
            protection(group)
            if step > 5:
                spikes_after_protection += int(spikes[0])
        assert protection.n_protected == 1
        assert 0 in protection.protected_neurons
        assert spikes_after_protection == 0

    def test_protection_leaves_healthy_neurons_alone(self):
        group = LIFNeuronGroup(3, LIFParameters(inhibition_strength=0.0))
        protection = NeuronProtection(trigger_cycles=2)
        total_spikes = 0
        for _ in range(40):
            total_spikes += group.step(np.full(3, 2.0)).sum()
            protection(group)
        assert protection.n_protected == 0
        assert total_spikes > 0

    def test_statistics_and_reset(self):
        group = self._stuck_group()
        protection = NeuronProtection()
        for _ in range(10):
            group.step(np.array([2.0, 0.0]))
            protection(group)
        stats = protection.statistics()
        assert stats["n_protected_neurons"] == 1
        assert stats["trigger_cycles"] == 2
        protection.reset_statistics()
        assert protection.n_protected == 0

    def test_invalid_trigger_raises(self):
        with pytest.raises(ValueError):
            NeuronProtection(trigger_cycles=0)


class TestFaultToleranceAnalyzer:
    def test_weight_distribution_analysis(self, trained_model):
        analyzer = FaultToleranceAnalyzer(trained_model)
        analysis = analyzer.weight_distribution(fault_rate=0.1, rng=0)
        assert analysis.clean_counts.sum() == analysis.faulty_counts.sum()
        assert analysis.n_weights_above_clean_max > 0
        assert analysis.n_increased > 0
        assert analysis.clean_max_weight == pytest.approx(
            trained_model.clean_max_weight, rel=0.05
        )
        assert "fault_rate" in analysis.summary()

    def test_derive_safe_range_matches_model_statistics(self, trained_model):
        safe_range = FaultToleranceAnalyzer(trained_model).derive_safe_range()
        assert safe_range.weight_threshold == trained_model.clean_max_weight
        assert safe_range.bnp1_substitute == 0.0
        assert safe_range.bnp2_substitute == trained_model.clean_max_weight
        assert safe_range.bnp3_substitute == trained_model.clean_most_probable_weight

    def test_neuron_fault_sensitivity_flags_reset_as_critical(
        self, trained_model, small_split
    ):
        _, test_set = small_split
        analyzer = FaultToleranceAnalyzer(trained_model)
        sensitivity = analyzer.neuron_fault_sensitivity(
            test_set, fault_rates=[1.0], rng=3
        )
        critical = sensitivity.critical_types(tolerance_percent=15.0)
        assert NeuronFaultType.VMEM_RESET in critical
        # Faulty reset at rate 1.0 must be far worse than faulty leak.
        reset_acc = sensitivity.accuracy_by_type[NeuronFaultType.VMEM_RESET][0]
        leak_acc = sensitivity.accuracy_by_type[NeuronFaultType.VMEM_LEAK][0]
        assert reset_acc < leak_acc
        assert "accuracy_by_type" in sensitivity.summary()

    def test_accuracy_under_faults_clean_equals_baseline(
        self, trained_model, small_split
    ):
        _, test_set = small_split
        analyzer = FaultToleranceAnalyzer(trained_model)
        accuracy = analyzer.accuracy_under_faults(test_set, None, rng=1)
        assert 0.0 <= accuracy <= 100.0
