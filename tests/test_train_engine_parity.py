"""Bit-exact parity of the vectorized training engine vs the sequential loop.

The contract (see :mod:`repro.snn.train_engine`) is *bitwise* equality of
everything a :class:`~repro.snn.training.TrainedModel` carries — weights,
neuron labels, theta, clean-weight statistics, training history — between
``TrainingRunner.train`` (vectorized default) and
``TrainingRunner.train_sequential`` (the per-timestep reference), for every
learning mode, label-assignment mode, seed, dataset size and
label-assignment batch shape (including odd tails).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import SyntheticMNIST
from repro.snn.network import NetworkConfig
from repro.snn.stdp import STDPConfig
from repro.snn.train_engine import VectorizedTrainingEngine
from repro.snn.training import STDPTrainer, TrainingConfig, TrainingRunner
from repro.utils.rng import resolve_rng


def _dataset(n_samples: int, seed: int = 41):
    return SyntheticMNIST().generate(n_samples=n_samples, rng=seed)


def _config(timesteps: int = 40, n_neurons: int = 16) -> NetworkConfig:
    return NetworkConfig(n_inputs=784, n_neurons=n_neurons, timesteps=timesteps)


def _assert_models_identical(sequential, vectorized) -> None:
    """Bitwise equality of every trained-model field."""
    assert np.array_equal(sequential.weights, vectorized.weights)
    assert sequential.weights.dtype == vectorized.weights.dtype
    assert np.array_equal(sequential.neuron_labels, vectorized.neuron_labels)
    assert np.array_equal(sequential.theta, vectorized.theta)
    assert sequential.clean_max_weight == vectorized.clean_max_weight
    assert (
        sequential.clean_most_probable_weight
        == vectorized.clean_most_probable_weight
    )
    assert sequential.training_history == vectorized.training_history


class TestTrainParity:
    @pytest.mark.parametrize(
        "learning_mode,label_mode",
        [
            ("pairwise_stdp", "spiking"),
            ("pairwise_stdp", "fast"),
            ("spiking_wta", "spiking"),
            ("spiking_wta", "fast"),
            ("fast_wta", "spiking"),
            ("fast_wta", "fast"),
        ],
    )
    def test_all_mode_combinations(self, learning_mode, label_mode):
        dataset = _dataset(18)
        runner = TrainingRunner(
            _config(),
            TrainingConfig(
                epochs=2,
                learning_mode=learning_mode,
                label_assignment_mode=label_mode,
            ),
        )
        _assert_models_identical(
            runner.train_sequential(dataset, rng=3), runner.train(dataset, rng=3)
        )

    @pytest.mark.parametrize("seed", [0, 1, 17, 2022])
    def test_pairwise_across_seeds(self, seed):
        dataset = _dataset(10, seed=seed + 100)
        runner = TrainingRunner(
            _config(timesteps=30),
            TrainingConfig(
                epochs=1,
                learning_mode="pairwise_stdp",
                label_assignment_mode="spiking",
            ),
        )
        _assert_models_identical(
            runner.train_sequential(dataset, rng=seed),
            runner.train(dataset, rng=seed),
        )

    def test_no_shuffle_and_multiple_epochs(self):
        dataset = _dataset(8)
        runner = TrainingRunner(
            _config(timesteps=25),
            TrainingConfig(
                epochs=3,
                learning_mode="pairwise_stdp",
                label_assignment_mode="spiking",
                shuffle=False,
            ),
        )
        _assert_models_identical(
            runner.train_sequential(dataset, rng=11), runner.train(dataset, rng=11)
        )

    def test_custom_stdp_rates(self):
        config = NetworkConfig(
            n_inputs=784,
            n_neurons=12,
            timesteps=30,
            stdp=STDPConfig(
                learning_rate_pre=0.01, learning_rate_post=0.05, tau_pre=8.0
            ),
        )
        runner = TrainingRunner(
            config,
            TrainingConfig(
                epochs=2,
                learning_mode="pairwise_stdp",
                label_assignment_mode="spiking",
            ),
        )
        dataset = _dataset(10)
        _assert_models_identical(
            runner.train_sequential(dataset, rng=5), runner.train(dataset, rng=5)
        )

    def test_consumes_rng_identically(self):
        """After training, both paths leave a shared seed stream in the
        same state — proof that every draw happened with the same shape."""
        dataset = _dataset(8)
        runner = TrainingRunner(
            _config(timesteps=20),
            TrainingConfig(
                epochs=1,
                learning_mode="pairwise_stdp",
                label_assignment_mode="spiking",
            ),
        )
        gen_a = resolve_rng(7)
        gen_b = resolve_rng(7)
        runner.train_sequential(dataset, rng=gen_a)
        runner.train(dataset, rng=gen_b)
        assert gen_a.integers(1 << 30) == gen_b.integers(1 << 30)


class TestLabelAssignmentBatching:
    @pytest.mark.parametrize("batch_size", [1, 3, 7, 64, 1000])
    def test_odd_batch_tails(self, batch_size):
        """Any chunking of spiking label assignment gives identical labels —
        including batch 1, tails shorter than the batch, and one big batch."""
        dataset = _dataset(13)
        network_config = _config(timesteps=25)
        training_config = TrainingConfig(
            epochs=1, learning_mode="fast_wta", label_assignment_mode="spiking"
        )
        runner = TrainingRunner(network_config, training_config)
        engine = VectorizedTrainingEngine(network_config, training_config)

        weights, _ = engine.train_wta(dataset, resolve_rng(9), spiking=False)
        reference = runner._assign_labels(weights, dataset, resolve_rng(1234))
        batched = engine.assign_labels_spiking(
            weights, dataset, resolve_rng(1234), batch_size=batch_size
        )
        assert np.array_equal(reference, batched)

    def test_rejects_nonpositive_batch(self):
        dataset = _dataset(4)
        engine = VectorizedTrainingEngine(
            _config(timesteps=10),
            TrainingConfig(learning_mode="fast_wta"),
        )
        weights, _ = engine.train_wta(dataset, resolve_rng(0), spiking=False)
        with pytest.raises(ValueError, match="batch_size"):
            engine.assign_labels_spiking(
                weights, dataset, resolve_rng(0), batch_size=0
            )


class TestFallbacksAndAliases:
    def test_w_min_gt_zero_falls_back_to_sequential(self):
        """A positive lower weight bound routes pairwise training to the
        sequential reference (the sparse clip would not be exact), and the
        result equals an explicit sequential run."""
        config = NetworkConfig(
            n_inputs=784,
            n_neurons=10,
            timesteps=20,
            stdp=STDPConfig(w_min=0.01, w_max=1.0),
        )
        assert VectorizedTrainingEngine.unsupported_reason(
            config, TrainingConfig(learning_mode="pairwise_stdp")
        ) is not None
        runner = TrainingRunner(
            config,
            TrainingConfig(
                epochs=1,
                learning_mode="pairwise_stdp",
                label_assignment_mode="fast",
            ),
        )
        dataset = _dataset(6)
        _assert_models_identical(
            runner.train_sequential(dataset, rng=2), runner.train(dataset, rng=2)
        )

    def test_wta_supported_regardless_of_w_min(self):
        config = NetworkConfig(
            n_inputs=784, n_neurons=10, stdp=STDPConfig(w_min=0.01, w_max=1.0)
        )
        assert VectorizedTrainingEngine.unsupported_reason(
            config, TrainingConfig(learning_mode="spiking_wta")
        ) is None

    def test_stdp_trainer_alias(self):
        """The historical export name keeps working and is the same class."""
        assert STDPTrainer is TrainingRunner
