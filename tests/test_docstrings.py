"""Docstring coverage of the public snn/ and serve/ API surfaces.

CI runs ``ruff check --select D`` over ``src/repro/snn`` and
``src/repro/serve`` (see ``.github/workflows/ci.yml`` and the
``[tool.ruff.lint]`` configuration in ``pyproject.toml``); this test is the
dependency-free local backstop for the part of that contract that matters
most — every public module, class, function and method in those packages
carries a docstring — so a missing docstring fails ``pytest`` on machines
without ruff installed.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path

import pytest

import repro.serve
import repro.snn

PACKAGES = [repro.snn, repro.serve]


def _module_paths():
    for package in PACKAGES:
        root = Path(inspect.getfile(package)).parent
        for path in sorted(root.glob("*.py")):
            yield pytest.param(path, id=f"{package.__name__}.{path.stem}")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: Path):
    """Yield dotted names of public definitions without a docstring."""
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield "<module>"

    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}{child.name}"
                if _is_public(child.name):
                    has_override = any(
                        isinstance(dec, ast.Name) and dec.id == "overload"
                        for dec in getattr(child, "decorator_list", [])
                    )
                    if ast.get_docstring(child) is None and not has_override:
                        yield name
                if isinstance(child, ast.ClassDef) and _is_public(child.name):
                    yield from walk(child, f"{name}.")

    yield from walk(tree, "")


@pytest.mark.parametrize("path", list(_module_paths()))
def test_public_api_is_documented(path: Path):
    missing = list(_missing_docstrings(path))
    assert not missing, (
        f"{path.name}: public definitions without docstrings: {missing} "
        "(the serving/training layers are documented API surface — "
        "see docs/ and the ruff D lint in CI)"
    )
